"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs use the pre-PEP-517 path (`pip install -e . --no-use-pep517`
or plain `pip install -e .` with this shim present)."""

from setuptools import setup

setup()
