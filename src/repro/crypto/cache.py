"""Deterministic memo caches for the crypto fast path.

The paper replaces per-packet cryptography with a calibrated cost model;
our ``real`` backend actually runs RSA, RST ring signatures, and
trapdoor opens.  Those operations are *pure functions of their inputs*:

* verifying a CA signature over a certificate,
* verifying an RST ring signature over ``(message, ring, signature)``,
* attempting to open a trapdoor with ``(private key, ciphertext)``.

A hello broadcast is verified by every neighbor that hears it and a
trapdoor is attempted by every node in the last-hop region, so the same
modular exponentiations are repeated ``k * degree`` and ``region-size``
times per packet.  This module collapses the redundancy with bounded,
deterministic LRU memo caches — **without changing a single simulated
outcome**: cached or not, the caller charges the same
:class:`~repro.crypto.timing.CryptoCostModel` virtual-time delay, and
the memoized value equals what recomputation would produce (keys cover
every input the computation reads).

Cache modes (``crypto_cache_mode`` in :class:`~repro.core.config.
AgfwConfig` / ``ScenarioConfig``):

``"on"``
    memoize (default).
``"off"``
    always recompute; the caches are never consulted or populated.
``"cross"``
    recompute *and* consult the cache, raising
    :class:`CacheCoherenceError` on any disagreement — the same
    per-query equivalence proof ``RadioMedium`` uses for grid-vs-brute.

Why the registry may live at module scope (audited DET-007 exception):
the stored values are pure functions of their keys, so state persisting
across :class:`~repro.sim.engine.Simulator` instances is *outcome
invisible* — a warm cache returns exactly what a cold recomputation
would, and the charged delays do not depend on hit/miss.  The
determinism equivalence suite (``tests/test_crypto_cache.py``) runs
on/off/cross back-to-back in one process and asserts byte-identical
traces, which would catch any violation.  Every other module is barred
from module-level mutable caches by lint rule DET-007.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Tuple, TypeVar

__all__ = [
    "CACHE_MODES",
    "CacheCoherenceError",
    "CacheStats",
    "LruMemo",
    "validate_cache_mode",
    "memo",
    "cache_counters",
    "reset_caches",
    "CERT_VERIFY",
    "RING_VERIFY",
    "TRAPDOOR_OPEN",
]

T = TypeVar("T")

#: The three switch positions of the crypto fast path.
CACHE_MODES: Tuple[str, ...] = ("on", "off", "cross")

#: Canonical cache names used by the wired call sites.
CERT_VERIFY = "cert_verify"
RING_VERIFY = "ring_verify"
TRAPDOOR_OPEN = "trapdoor_open"

#: Bound chosen so a paper-scale run (50 nodes, ring 5, 900 s) never
#: evicts on the hot path while a pathological workload stays O(1) memory.
DEFAULT_MAXSIZE = 4096


class CacheCoherenceError(AssertionError):
    """Cross-check mode found a memoized value differing from recomputation.

    This is the crypto-cache analogue of the medium's grid-vs-brute
    mismatch: it means a cache key fails to cover every input the
    computation actually reads — a correctness bug, never ignorable.
    """


def validate_cache_mode(mode: str) -> str:
    """Return ``mode`` or raise ``ValueError`` for an unknown switch."""
    if mode not in CACHE_MODES:
        raise ValueError(
            f"unknown crypto_cache_mode {mode!r}; expected one of {CACHE_MODES}"
        )
    return mode


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one memo cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cross_checks: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cross_checks": self.cross_checks,
        }


class LruMemo:
    """A bounded, deterministic memo table with LRU eviction.

    Determinism: the store is an :class:`~collections.OrderedDict`
    (insertion/recency order only — never hash order), keys are built
    from digests and fingerprints (bytes/tuples, no object identity),
    and eviction is purely a function of the access sequence.  Two
    processes replaying the same access sequence hold identical tables.
    """

    def __init__(self, name: str, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if needed."""
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = value
            return
        self._store[key] = value
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], T], mode: str = "on"
    ) -> T:
        """Return the memoized value for ``key`` under the given mode.

        ``compute`` must be a pure function of ``key``'s constituents;
        the caller is responsible for charging any virtual-time cost
        identically on hit and miss.
        """
        if mode == "off":
            return compute()
        if mode == "on":
            if key in self._store:
                self._store.move_to_end(key)
                self.stats.hits += 1
                return self._store[key]  # type: ignore[return-value]
            value = compute()
            self.put(key, value)
            self.stats.misses += 1
            return value
        if mode == "cross":
            fresh = compute()
            if key in self._store:
                self._store.move_to_end(key)
                cached = self._store[key]
                self.stats.hits += 1
                self.stats.cross_checks += 1
                if cached != fresh:
                    raise CacheCoherenceError(
                        f"crypto cache {self.name!r}: memoized value differs "
                        f"from recomputation for key {key!r} "
                        f"(cached={cached!r}, fresh={fresh!r})"
                    )
            else:
                self.put(key, fresh)
                self.stats.misses += 1
            return fresh
        raise ValueError(
            f"unknown crypto_cache_mode {mode!r}; expected one of {CACHE_MODES}"
        )

    def clear(self) -> None:
        """Drop all entries (counters are kept; they are cumulative)."""
        self._store.clear()


# Audited module-level registry — see the module docstring for the
# outcome-invisibility argument; DET-007 exempts exactly this file.
_REGISTRY: Dict[str, LruMemo] = {}


def memo(name: str, maxsize: int = DEFAULT_MAXSIZE) -> LruMemo:
    """The process-wide memo cache registered under ``name`` (created lazily).

    ``maxsize`` only applies on first creation; later callers share the
    existing instance regardless of the value they pass.
    """
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = LruMemo(name, maxsize)
        _REGISTRY[name] = cache
    return cache


def cache_counters() -> Dict[str, Dict[str, int]]:
    """Snapshot of hit/miss/eviction counters for every registered cache.

    Sorted by cache name so formatted output is deterministic; surfaced
    to experiments through :func:`repro.metrics.crypto_cache_counters`.
    """
    return {
        name: dict(_REGISTRY[name].stats.snapshot(), size=len(_REGISTRY[name]))
        for name in sorted(_REGISTRY)
    }


def reset_caches() -> None:
    """Forget every registered cache (tests and benchmarks only).

    Simulation code never needs this: persistence across runs is
    outcome-invisible by construction.
    """
    _REGISTRY.clear()
