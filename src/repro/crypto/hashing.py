"""Hash utilities: digests, integer hashing, and MGF1 mask generation.

Everything cryptographic in this reproduction bottoms out in SHA-256 from
the standard library (``hashlib``), which the paper permits: "the hash
function could be any collision-resistant hash algorithm".
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

__all__ = ["sha256", "hash_to_int", "mgf1", "hmac_sha256", "truncated_digest"]


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def truncated_digest(data: bytes, size: int) -> bytes:
    """First ``size`` bytes of an expandable SHA-256 digest chain.

    For ``size`` beyond 32 bytes the digest is extended by hashing a
    counter (effectively MGF1), so any output length is available.
    """
    if size <= 32:
        return sha256(data)[:size]
    return mgf1(data, size)


def hash_to_int(data: bytes, bits: int) -> int:
    """Hash ``data`` to a uniform integer in ``[0, 2**bits)``."""
    nbytes = (bits + 7) // 8
    digest = mgf1(data, nbytes)
    value = int.from_bytes(digest, "big")
    excess = nbytes * 8 - bits
    return value >> excess


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation function (PKCS#1) with SHA-256."""
    if length < 0:
        raise ValueError("length must be non-negative")
    output = bytearray()
    counter = 0
    while len(output) < length:
        output += sha256(seed, counter.to_bytes(4, "big"))
        counter += 1
    return bytes(output[:length])


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 (used as a PRF for pseudonym generation)."""
    return _hmac.new(key, data, hashlib.sha256).digest()
