"""Rivest–Shamir–Tauman ring signatures ("How to Leak a Secret", 2001).

The authenticated anonymous neighbor table (AANT, paper Section 3.1.2)
ring-signs every hello message over the signer's key plus ``k`` decoy
certificates, achieving *(k+1)-anonymity with authentication*: any
verifier is convinced the sender holds one of the ring's private keys,
but cannot tell which.

Construction (as in the original paper):

* Each ring member i has an RSA trapdoor permutation f_i over Z_{n_i};
  it is extended to a permutation g_i over a common domain Z_b
  (b = 2**(8*width), width > max key size) by applying f_i block-wise and
  leaving the top partial block fixed.
* A keyed symmetric permutation E_k over Z_b (here a Feistel network,
  :class:`~repro.crypto.symmetric.FeistelPermutation`) with k = H(message)
  combines the ring: starting from a random glue value v,
  ``z_i = E_k(z_{i-1} XOR y_i)`` must return to v after all members.
* The signer picks random x_i for everyone else, solves the ring equation
  for its own y_s, and inverts g_s with its private key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.crypto.hashing import sha256
from repro.crypto.rsa import CryptoError, RsaPrivateKey, RsaPublicKey
from repro.crypto.symmetric import FeistelPermutation

__all__ = ["RingSignature", "ring_sign", "ring_verify", "ring_domain_width"]

_DOMAIN_MARGIN_BYTES = 20  # domain exceeds the largest modulus by >=160 bits


@dataclass(frozen=True)
class RingSignature:
    """A ring signature: the glue value and one x_i per ring member.

    The ring member order is significant and must be presented identically
    to the verifier (the paper attaches the certificates in order).
    """

    glue: int
    xs: Tuple[int, ...]
    width: int  # common-domain width in bytes

    @property
    def ring_size(self) -> int:
        return len(self.xs)

    def byte_size(self) -> int:
        """Wire size: glue + one domain element per member."""
        return self.width * (len(self.xs) + 1)

    def to_bytes(self) -> bytes:
        parts = [
            len(self.xs).to_bytes(2, "big"),
            self.width.to_bytes(2, "big"),
            self.glue.to_bytes(self.width, "big"),
        ]
        parts.extend(x.to_bytes(self.width, "big") for x in self.xs)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RingSignature":
        if len(data) < 4:
            raise CryptoError("ring signature truncated")
        count = int.from_bytes(data[0:2], "big")
        width = int.from_bytes(data[2:4], "big")
        expected = 4 + width * (count + 1)
        if len(data) != expected:
            raise CryptoError("ring signature length mismatch")
        glue = int.from_bytes(data[4 : 4 + width], "big")
        xs = tuple(
            int.from_bytes(data[4 + width * (i + 1) : 4 + width * (i + 2)], "big")
            for i in range(count)
        )
        return cls(glue=glue, xs=xs, width=width)


def ring_domain_width(keys: Sequence[RsaPublicKey]) -> int:
    """The common-domain width (bytes, even) for a ring of public keys."""
    if not keys:
        raise ValueError("ring must not be empty")
    width = max(k.byte_size for k in keys) + _DOMAIN_MARGIN_BYTES
    if width % 2:
        width += 1
    return width


def _extended_apply(key: RsaPublicKey, x: int, b: int) -> int:
    """The extended trapdoor permutation g_i over [0, b)."""
    quotient, remainder = divmod(x, key.n)
    if (quotient + 1) * key.n <= b:
        return quotient * key.n + key.apply(remainder)
    return x  # top partial block: identity


def _extended_invert(key: RsaPrivateKey, y: int, b: int) -> Optional[int]:
    """Invert g_s; returns None when y lies in the identity zone.

    The identity zone has density < 2**-160 in the domain, so a retry with
    a fresh glue value virtually never recurs.
    """
    quotient, remainder = divmod(y, key.n)
    if (quotient + 1) * key.n <= b:
        return quotient * key.n + key.apply(remainder)
    return None


def ring_sign(
    message: bytes,
    ring: Sequence[RsaPublicKey],
    signer_index: int,
    signer_key: RsaPrivateKey,
    rng: Optional[random.Random] = None,
) -> RingSignature:
    """Sign ``message`` so any member of ``ring`` could have been the signer.

    ``ring[signer_index]`` must equal ``signer_key.public()``.  A ring of
    size 1 degenerates to an ordinary (verifiable, non-anonymous) signature.
    """
    if not ring:
        raise ValueError("ring must not be empty")
    if not 0 <= signer_index < len(ring):
        raise ValueError("signer_index outside ring")
    if ring[signer_index] != signer_key.public():
        raise ValueError("signer's public key not at signer_index")
    if rng is None:
        raise ValueError(
            "ring_sign requires an explicit rng (derive one via RngRegistry) "
            "so glue values are reproducible from the master seed"
        )

    width = ring_domain_width(ring)
    b = 1 << (8 * width)
    cipher = FeistelPermutation(sha256(message), width)
    n = len(ring)

    while True:
        glue = rng.randrange(b)
        xs: list[Optional[int]] = [None] * n
        ys: list[Optional[int]] = [None] * n
        for i in range(n):
            if i == signer_index:
                continue
            xs[i] = rng.randrange(b)
            ys[i] = _extended_apply(ring[i], xs[i], b)

        # Forward pass: z_0 = v up to the slot before the signer.
        z = glue
        for i in range(signer_index):
            z = cipher.encrypt_int(z ^ ys[i])
        z_before = z

        # Backward pass: from z_n = v down to the signer's output slot.
        z = glue
        for i in range(n - 1, signer_index, -1):
            z = cipher.decrypt_int(z) ^ ys[i]
        z_target = z

        y_signer = cipher.decrypt_int(z_target) ^ z_before
        x_signer = _extended_invert(signer_key, y_signer, b)
        if x_signer is None:
            continue  # y landed in the (tiny) identity zone; re-glue
        xs[signer_index] = x_signer
        return RingSignature(glue=glue, xs=tuple(xs), width=width)  # type: ignore[arg-type]


def ring_verify(
    message: bytes, ring: Sequence[RsaPublicKey], signature: RingSignature
) -> bool:
    """Check that some member of ``ring`` signed ``message``.

    Returns False (never raises) for malformed or mismatched signatures;
    a verifier on the hot path treats any failure as "drop the hello".
    """
    if len(ring) != signature.ring_size or not ring:
        return False
    if signature.width != ring_domain_width(ring):
        return False
    b = 1 << (8 * signature.width)
    if not 0 <= signature.glue < b:
        return False
    if any(not 0 <= x < b for x in signature.xs):
        return False
    cipher = FeistelPermutation(sha256(message), signature.width)
    z = signature.glue
    for key, x in zip(ring, signature.xs):
        z = cipher.encrypt_int(z ^ _extended_apply(key, x, b))
    return z == signature.glue
