"""Symmetric primitives built from SHA-256.

Two constructions:

* :class:`StreamCipher` — a CTR-mode keystream cipher used for the hybrid
  (KEM/DEM) encryption path when a payload exceeds one RSA block, and as
  the "lower cost symmetric encryption" the paper suggests for trapdoors
  when a key exchange is in place.
* :class:`FeistelPermutation` — a keyed, length-preserving *permutation*
  over fixed-width integers.  The RST ring-signature combining function
  requires an invertible symmetric cipher E_k over Z_b; a balanced Feistel
  network with SHA-256 round functions provides exactly that.
"""

from __future__ import annotations

from repro.crypto.hashing import mgf1, sha256

__all__ = ["StreamCipher", "FeistelPermutation"]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings via one big-int op.

    Replaces the per-byte ``bytes(x ^ y for ...)`` generator: CPython
    evaluates that loop one byte at a time, while ``int.from_bytes`` /
    ``int.to_bytes`` run in C.  Byte-for-byte identical output — pinned
    by the regression vectors in ``tests/test_crypto_symmetric.py``.
    """
    if len(a) != len(b):
        raise ValueError("xor operands must have equal length")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(len(a), "big")


class StreamCipher:
    """CTR-mode stream cipher: keystream blocks are SHA-256(key || nonce || ctr).

    Encryption and decryption are the same XOR operation.  A fresh nonce
    must be used per message (callers pass one explicitly so tests can be
    deterministic).
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = bytes(key)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            out += sha256(self._key, nonce, counter.to_bytes(8, "big"))
            counter += 1
        return bytes(out[:length])

    def encrypt(self, nonce: bytes, plaintext: bytes) -> bytes:
        ks = self.keystream(nonce, len(plaintext))
        return _xor_bytes(plaintext, ks)

    def decrypt(self, nonce: bytes, ciphertext: bytes) -> bytes:
        return self.encrypt(nonce, ciphertext)


class FeistelPermutation:
    """A keyed permutation over ``[0, 2**(8*width))`` via a balanced Feistel net.

    ``width`` (bytes) must be even.  With >= 4 rounds and a PRF round
    function the construction is a strong pseudorandom permutation
    (Luby–Rackoff); we use 8 rounds for margin.  This serves as E_k in the
    Rivest–Shamir–Tauman ring-signature combining function.
    """

    ROUNDS = 8

    def __init__(self, key: bytes, width: int) -> None:
        if width <= 0 or width % 2 != 0:
            raise ValueError("width must be a positive even number of bytes")
        if not key:
            raise ValueError("key must be non-empty")
        self.width = width
        self._half = width // 2
        # Independent round keys derived once.
        self._round_keys = [sha256(key, bytes([r])) for r in range(self.ROUNDS)]

    @property
    def modulus(self) -> int:
        """The permutation domain size b = 2**(8*width)."""
        return 1 << (8 * self.width)

    def _round(self, rk: bytes, half: bytes) -> bytes:
        return mgf1(rk + half, self._half)

    def encrypt_int(self, value: int) -> int:
        return int.from_bytes(
            self.encrypt(value.to_bytes(self.width, "big")), "big"
        )

    def decrypt_int(self, value: int) -> int:
        return int.from_bytes(
            self.decrypt(value.to_bytes(self.width, "big")), "big"
        )

    def encrypt(self, block: bytes) -> bytes:
        left, right = self._split(block)
        for rk in self._round_keys:
            left, right = right, self._xor(left, self._round(rk, right))
        return left + right

    def decrypt(self, block: bytes) -> bytes:
        left, right = self._split(block)
        for rk in reversed(self._round_keys):
            left, right = self._xor(right, self._round(rk, left)), left
        return left + right

    def _split(self, block: bytes) -> tuple[bytes, bytes]:
        if len(block) != self.width:
            raise ValueError(f"block must be exactly {self.width} bytes")
        return block[: self._half], block[self._half :]

    @staticmethod
    def _xor(a: bytes, b: bytes) -> bytes:
        return _xor_bytes(a, b)
