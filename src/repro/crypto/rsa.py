"""RSA from first principles: key generation, encryption, and signatures.

The paper evaluates with 512-bit RSA ("the size of *trapdoor* does not
exceed 64-byte since it is obtained from the RSA encryption with a 512-bit
public key").  This module implements:

* key generation (Miller–Rabin primes, e = 65537),
* PKCS#1 v1.5-style block encryption (type-2 padding) — one 64-byte block
  for a 512-bit key, matching the paper's trapdoor size,
* hybrid (KEM/DEM) encryption for payloads beyond one block,
* full-domain-hash style signatures (type-1 padding over SHA-256),

No constant-time guarantees are attempted: this is a protocol
reproduction, not a hardened TLS stack; the adversary model is the
simulated network, not a co-resident timing attacker.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import sha256
from repro.crypto.primes import generate_prime
from repro.crypto.symmetric import StreamCipher

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_keypair",
    "CryptoError",
    "MessageTooLong",
    "DecryptionError",
]

_MIN_PAD = 8  # PKCS#1: at least 8 bytes of random padding
_SESSION_KEY_BYTES = 16


def _require_rng(rng: Optional[random.Random], where: str) -> random.Random:
    """Reject implicit randomness: every caller must pass a seeded stream.

    Falling back to the global ``random`` stream (or an unseeded
    ``random.Random()``) made keygen and padding differ between runs with
    the same master seed — the determinism contract of
    :mod:`repro.sim.rng` forbids exactly that (lint rules DET-001/002).
    """
    if rng is None:
        raise ValueError(
            f"{where} requires an explicit rng (derive one via RngRegistry) "
            "so results are reproducible from the master seed"
        )
    return rng


class CryptoError(Exception):
    """Base class for crypto failures."""


class MessageTooLong(CryptoError):
    """Plaintext does not fit in one RSA block (use the hybrid API)."""


class DecryptionError(CryptoError):
    """Ciphertext is malformed or was produced for a different key."""


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int
    #: Lazily cached :meth:`fingerprint` (excluded from eq/hash/repr);
    #: fingerprints key the crypto memo caches, so recomputing the
    #: serialization + SHA-256 on every lookup would tax the fast path.
    _fp: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_size(self) -> int:
        """Size of one RSA block in bytes (e.g. 64 for a 512-bit key)."""
        return (self.bits + 7) // 8

    @property
    def max_plaintext(self) -> int:
        """Largest plaintext (bytes) a single padded block can carry."""
        return self.byte_size - _MIN_PAD - 3

    def fingerprint(self) -> bytes:
        """A stable 8-byte identifier for the key (used in certificates).

        Computed once per instance and cached: the value is a pure
        function of the frozen ``(n, e)`` fields.
        """
        if self._fp is None:
            object.__setattr__(self, "_fp", sha256(self.to_bytes())[:8])
        return self._fp  # type: ignore[return-value]

    def to_bytes(self) -> bytes:
        """Canonical serialization (length-prefixed n and e)."""
        nb = self.n.to_bytes(self.byte_size, "big")
        eb = self.e.to_bytes(4, "big")
        return len(nb).to_bytes(2, "big") + nb + eb

    # --------------------------------------------------------------- raw op
    def apply(self, value: int) -> int:
        """The raw RSA permutation value^e mod n."""
        if not 0 <= value < self.n:
            raise CryptoError("value outside RSA modulus range")
        return pow(value, self.e, self.n)

    # ----------------------------------------------------------- encryption
    def encrypt(self, plaintext: bytes, rng: Optional[random.Random] = None) -> bytes:
        """Encrypt one block with PKCS#1 v1.5 type-2 padding.

        ``rng`` is required (padding randomness must come from a seeded
        :class:`~repro.sim.rng.RngRegistry` stream for reproducible runs).
        Raises :class:`MessageTooLong` when the plaintext exceeds
        :attr:`max_plaintext`; use :meth:`encrypt_hybrid` in that case.
        """
        k = self.byte_size
        if len(plaintext) > self.max_plaintext:
            raise MessageTooLong(
                f"{len(plaintext)} bytes > {self.max_plaintext}-byte block capacity"
            )
        rng = _require_rng(rng, "RsaPublicKey.encrypt")
        pad_len = k - 3 - len(plaintext)
        padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
        block = b"\x00\x02" + padding + b"\x00" + plaintext
        cipher_int = self.apply(int.from_bytes(block, "big"))
        return cipher_int.to_bytes(k, "big")

    def encrypt_hybrid(self, plaintext: bytes, rng: Optional[random.Random] = None) -> bytes:
        """KEM/DEM encryption for arbitrary-length plaintexts.

        A fresh session key is RSA-encrypted, the payload is stream-
        encrypted under it.  Output: one RSA block followed by the
        same-length ciphertext.  ``rng`` is required, as in :meth:`encrypt`.
        """
        rng = _require_rng(rng, "RsaPublicKey.encrypt_hybrid")
        session_key = bytes(rng.randrange(256) for _ in range(_SESSION_KEY_BYTES))
        wrapped = self.encrypt(session_key, rng=rng)
        body = StreamCipher(session_key).encrypt(b"kem", plaintext)
        return wrapped + body

    # ------------------------------------------------------------ signature
    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a full-domain-hash signature produced by ``sign``."""
        if len(signature) != self.byte_size:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = self.apply(sig_int).to_bytes(self.byte_size, "big")
        return recovered == _signature_block(message, self.byte_size)


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; carries the factorization for completeness.

    The CRT parameters (``dp``, ``dq``, ``q_inv``) and the public-key
    fingerprint are derived once at construction: they are pure
    functions of the key material, and recomputing the modular inverse
    ``pow(q, -1, p)`` inside every :meth:`apply` call wasted a
    meaningful slice of each private-key operation (the per-op win is
    pinned by ``benchmarks/bench_crypto_costs.py``).
    """

    n: int
    e: int
    d: int
    p: int
    q: int
    # One-time precomputation (excluded from eq/hash/repr; set in
    # __post_init__ via object.__setattr__ because the class is frozen).
    _dp: int = field(init=False, repr=False, compare=False)
    _dq: int = field(init=False, repr=False, compare=False)
    _q_inv: int = field(init=False, repr=False, compare=False)
    _pub_fp: bytes = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_dp", self.d % (self.p - 1))
        object.__setattr__(self, "_dq", self.d % (self.q - 1))
        object.__setattr__(self, "_q_inv", pow(self.q, -1, self.p))
        object.__setattr__(self, "_pub_fp", RsaPublicKey(self.n, self.e).fingerprint())

    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def public_fingerprint(self) -> bytes:
        """The matching public key's fingerprint (precomputed; used as a
        memo-cache key component for trapdoor opens)."""
        return self._pub_fp

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    # --------------------------------------------------------------- raw op
    def apply(self, value: int) -> int:
        """The raw RSA inverse permutation value^d mod n (CRT-accelerated)."""
        if not 0 <= value < self.n:
            raise CryptoError("value outside RSA modulus range")
        # Chinese remainder theorem speedup (~4x over plain pow); the
        # CRT parameters are precomputed once in __post_init__.
        m1 = pow(value % self.p, self._dp, self.p)
        m2 = pow(value % self.q, self._dq, self.q)
        h = (self._q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    # ----------------------------------------------------------- decryption
    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt one PKCS#1 v1.5 type-2 block."""
        if len(ciphertext) != self.byte_size:
            raise DecryptionError("ciphertext length does not match key size")
        cipher_int = int.from_bytes(ciphertext, "big")
        if cipher_int >= self.n:
            # Produced under a different (larger) modulus: not ours.
            raise DecryptionError("ciphertext outside modulus range")
        block = self.apply(cipher_int).to_bytes(self.byte_size, "big")
        if block[:2] != b"\x00\x02":
            raise DecryptionError("bad padding header")
        try:
            separator = block.index(b"\x00", 2)
        except ValueError as exc:
            raise DecryptionError("missing padding separator") from exc
        if separator - 2 < _MIN_PAD:
            raise DecryptionError("padding too short")
        return block[separator + 1 :]

    def decrypt_hybrid(self, ciphertext: bytes) -> bytes:
        """Inverse of :meth:`RsaPublicKey.encrypt_hybrid`."""
        k = self.byte_size
        if len(ciphertext) < k:
            raise DecryptionError("hybrid ciphertext shorter than one RSA block")
        session_key = self.decrypt(ciphertext[:k])
        if len(session_key) != _SESSION_KEY_BYTES:
            raise DecryptionError("unexpected session key length")
        return StreamCipher(session_key).decrypt(b"kem", ciphertext[k:])

    # ------------------------------------------------------------ signature
    def sign(self, message: bytes) -> bytes:
        """Full-domain-hash signature (PKCS#1 type-1 padding over SHA-256)."""
        block = _signature_block(message, self.byte_size)
        sig_int = self.apply(int.from_bytes(block, "big"))
        return sig_int.to_bytes(self.byte_size, "big")


def _signature_block(message: bytes, size: int) -> bytes:
    """The deterministic padded block that is exponentiated when signing."""
    digest = sha256(message)
    pad_len = size - 3 - len(digest)
    if pad_len < 0:
        raise CryptoError("key too small to carry a SHA-256 digest")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest


def generate_keypair(bits: int = 512, rng: Optional[random.Random] = None) -> RsaPrivateKey:
    """Generate an RSA key pair with modulus of exactly ``bits`` bits.

    ``bits`` must be even and at least 384 (a SHA-256 signature block must
    fit).  ``rng`` is required: key generation must be reproducible from
    the scenario's master seed, so derive the stream via
    :class:`~repro.sim.rng.RngRegistry` (e.g. ``rngs.stream("keygen")``).
    """
    if bits % 2 != 0:
        raise ValueError("key size must be even")
    if bits < 384:
        raise ValueError("key size must be at least 384 bits")
    rng = _require_rng(rng, "generate_keypair")
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) != 1:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(e, -1, phi)
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
