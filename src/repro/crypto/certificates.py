"""Certificates and a certification authority.

The paper assumes "each node has a valid certificate signed by a trusted
third party like a certification authority (CA)" and that nodes retrieve
enough other certificates beforehand for ring-signature use.  This module
provides that PKI substrate:

* :class:`CertificateAuthority` — issues and verifies certificates,
* :class:`Certificate` — binds a node identity to an RSA public key,
* :class:`KeyStore` — a node's local collection of certificates, with the
  random decoy selection the AANT needs ("the sender should randomly
  select k public keys among all valid users").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.crypto.cache import CERT_VERIFY, memo, validate_cache_mode
from repro.crypto.hashing import sha256
from repro.crypto.rsa import (
    CryptoError,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)

__all__ = ["Certificate", "CertificateAuthority", "KeyStore", "CertificateError"]


class CertificateError(CryptoError):
    """Certificate validation failure."""


@dataclass(frozen=True)
class Certificate:
    """A signed binding of ``subject`` (node identity) to ``public_key``.

    ``serial`` is unique per CA; the paper suggests transmitting serials
    instead of full certificates once neighbors have warmed their caches.
    """

    subject: str
    public_key: RsaPublicKey
    issuer: str
    serial: int
    not_before: float
    not_after: float
    signature: bytes
    #: Lazily cached :meth:`fingerprint` (excluded from eq/hash/repr).
    _fp: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def fingerprint(self) -> bytes:
        """A stable digest over the full certificate (TBS body + signature).

        Keys the CA-verification memo cache: two certificates with equal
        fingerprints are byte-identical, so a cached verification verdict
        transfers exactly.  Computed once per instance.
        """
        if self._fp is None:
            object.__setattr__(self, "_fp", sha256(self.tbs_bytes(), self.signature))
        return self._fp  # type: ignore[return-value]

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical serialization."""
        return _tbs_bytes(
            self.subject,
            self.public_key,
            self.issuer,
            self.serial,
            self.not_before,
            self.not_after,
        )

    def byte_size(self) -> int:
        """Approximate wire size: TBS body plus the CA signature."""
        return len(self.tbs_bytes()) + len(self.signature)

    def is_valid_at(self, time: float) -> bool:
        return self.not_before <= time <= self.not_after


def _tbs_bytes(
    subject: str,
    public_key: RsaPublicKey,
    issuer: str,
    serial: int,
    not_before: float,
    not_after: float,
) -> bytes:
    subject_b = subject.encode("utf-8")
    issuer_b = issuer.encode("utf-8")
    return b"".join(
        [
            len(subject_b).to_bytes(2, "big"),
            subject_b,
            public_key.to_bytes(),
            len(issuer_b).to_bytes(2, "big"),
            issuer_b,
            serial.to_bytes(8, "big"),
            int(not_before * 1000).to_bytes(8, "big", signed=True),
            int(not_after * 1000).to_bytes(8, "big", signed=True),
        ]
    )


class CertificateAuthority:
    """A trusted third party issuing node certificates.

    The CA is an *offline* entity in the paper's model: nodes obtain
    certificates before entering the network.  Simulations therefore run
    the CA once at scenario setup.
    """

    def __init__(
        self,
        name: str = "repro-ca",
        key_bits: int = 768,
        rng: Optional[random.Random] = None,
        cache_mode: str = "on",
    ) -> None:
        if rng is None:
            raise ValueError(
                "CertificateAuthority requires an explicit rng (e.g. "
                "rngs.stream('ca')) so CA and node keys are reproducible "
                "from the master seed"
            )
        self.name = name
        self.cache_mode = validate_cache_mode(cache_mode)
        self._rng = rng
        self._key = generate_keypair(key_bits, self._rng)
        self._public_key = self._key.public()  # one instance, cached fingerprint
        self._next_serial = 1
        self._issued: Dict[int, Certificate] = {}
        self._revoked: set[int] = set()

    @property
    def public_key(self) -> RsaPublicKey:
        return self._public_key

    def issue(
        self,
        subject: str,
        public_key: RsaPublicKey,
        not_before: float = 0.0,
        not_after: float = float("inf"),
    ) -> Certificate:
        """Issue a certificate for ``subject``'s public key."""
        if not_after <= not_before:
            raise ValueError("certificate validity window is empty")
        serial = self._next_serial
        self._next_serial += 1
        # Encode an unbounded validity as a large sentinel for serialization.
        bounded_after = min(not_after, 2**40)
        tbs = _tbs_bytes(subject, public_key, self.name, serial, not_before, bounded_after)
        cert = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=serial,
            not_before=not_before,
            not_after=bounded_after,
            signature=self._key.sign(tbs),
        )
        self._issued[serial] = cert
        return cert

    def enroll(self, subject: str, key_bits: int = 512) -> tuple[RsaPrivateKey, Certificate]:
        """Generate a key pair for ``subject`` and certify it in one step."""
        key = generate_keypair(key_bits, self._rng)
        return key, self.issue(subject, key.public())

    def revoke(self, serial: int) -> None:
        if serial not in self._issued:
            raise CertificateError(f"unknown serial {serial}")
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    def verify(self, cert: Certificate, at_time: Optional[float] = None) -> bool:
        """Check signature, issuer, validity window, and revocation.

        Only the expensive, *pure* part — the RSA signature check over
        the certificate bytes — is memoized (keyed by the CA key's
        fingerprint and the certificate's digest).  Revocation and
        validity-window checks are stateful/time-dependent and always
        run fresh, so revoking a certificate takes effect immediately
        even with a warm cache.
        """
        if cert.issuer != self.name:
            return False
        if cert.serial in self._revoked:
            return False
        if at_time is not None and not cert.is_valid_at(at_time):
            return False
        key = (self.public_key.fingerprint(), cert.fingerprint())
        return memo(CERT_VERIFY).get_or_compute(
            key,
            lambda: self.public_key.verify(cert.tbs_bytes(), cert.signature),
            self.cache_mode,
        )


class KeyStore:
    """A node's local certificate cache plus its own key material.

    Supports the AANT decoy-selection step and the optimization of
    referring to cached certificates by serial number.
    """

    def __init__(
        self,
        identity: str,
        private_key: RsaPrivateKey,
        certificate: Certificate,
    ) -> None:
        if certificate.subject != identity:
            raise CertificateError("certificate subject does not match identity")
        if certificate.public_key != private_key.public():
            raise CertificateError("certificate key does not match private key")
        self.identity = identity
        self.private_key = private_key
        self.certificate = certificate
        self._certs: Dict[str, Certificate] = {identity: certificate}
        self._by_serial: Dict[int, Certificate] = {certificate.serial: certificate}

    # ----------------------------------------------------------------- cache
    def add(self, cert: Certificate) -> None:
        self._certs[cert.subject] = cert
        self._by_serial[cert.serial] = cert

    def add_all(self, certs: Iterable[Certificate]) -> None:
        for cert in certs:
            self.add(cert)

    def get(self, subject: str) -> Optional[Certificate]:
        return self._certs.get(subject)

    def get_by_serial(self, serial: int) -> Optional[Certificate]:
        return self._by_serial.get(serial)

    def subjects(self) -> List[str]:
        return sorted(self._certs)

    def __len__(self) -> int:
        return len(self._certs)

    def __contains__(self, subject: str) -> bool:
        return subject in self._certs

    # ----------------------------------------------------------- ring decoys
    def pick_ring(self, k: int, rng: random.Random) -> List[Certificate]:
        """Pick the signer's cert plus ``k`` random decoys, in random order.

        Random order matters: a fixed signer position would leak the
        signer.  Raises when fewer than ``k`` other certificates are cached
        — the paper assumes nodes pre-fetch enough certificates.
        """
        others = [c for s, c in self._certs.items() if s != self.identity]
        if k < 0:
            raise ValueError("k must be non-negative")
        if len(others) < k:
            raise CertificateError(
                f"need {k} decoy certificates, only {len(others)} cached"
            )
        ring = rng.sample(others, k) + [self.certificate]
        rng.shuffle(ring)
        return ring

    def ring_index_of_self(self, ring: Sequence[Certificate]) -> int:
        """The signer's position inside a ring produced by :meth:`pick_ring`."""
        for index, cert in enumerate(ring):
            if cert.subject == self.identity:
                return index
        raise CertificateError("own certificate not present in ring")
