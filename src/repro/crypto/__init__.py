"""Cryptographic substrate: RSA, ring signatures, certificates, cost model.

Everything is implemented from first principles (Miller-Rabin primes, raw
modular exponentiation, SHA-256-based symmetric constructions) so the
protocol's cryptographic code paths are genuinely exercised, while the
simulator may substitute a calibrated cost model per the paper.
"""

from repro.crypto.cache import (
    CACHE_MODES,
    CacheCoherenceError,
    LruMemo,
    cache_counters,
    memo,
    reset_caches,
    validate_cache_mode,
)
from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    KeyStore,
)
from repro.crypto.hashing import hash_to_int, hmac_sha256, mgf1, sha256, truncated_digest
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.ring_signature import (
    RingSignature,
    ring_domain_width,
    ring_sign,
    ring_verify,
)
from repro.crypto.rsa import (
    CryptoError,
    DecryptionError,
    MessageTooLong,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)
from repro.crypto.symmetric import FeistelPermutation, StreamCipher
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel

__all__ = [
    "CACHE_MODES",
    "CacheCoherenceError",
    "LruMemo",
    "cache_counters",
    "memo",
    "reset_caches",
    "validate_cache_mode",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "KeyStore",
    "hash_to_int",
    "hmac_sha256",
    "mgf1",
    "sha256",
    "truncated_digest",
    "generate_prime",
    "is_probable_prime",
    "RingSignature",
    "ring_domain_width",
    "ring_sign",
    "ring_verify",
    "CryptoError",
    "DecryptionError",
    "MessageTooLong",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "FeistelPermutation",
    "StreamCipher",
    "DEFAULT_COST_MODEL",
    "CryptoCostModel",
]
