"""Prime generation via Miller–Rabin.

The paper's trapdoor and certificates are RSA-based (512-bit keys in the
evaluation).  No external crypto library is assumed: primality testing and
prime generation are implemented here from first principles.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["is_probable_prime", "generate_prime"]

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

# Deterministic witness sets: testing against these bases is *proven*
# sufficient for all n below the associated bound (Jaeschke; Sorenson &
# Webster), so unit-range primality checks are exact, not probabilistic.
_DETERMINISTIC_WITNESSES = (
    (3_215_031_751, (2, 3, 5, 7)),
    (3_474_749_660_383, (2, 3, 5, 7, 11, 13)),
    (341_550_071_728_321, (2, 3, 5, 7, 11, 13, 17)),
    (3_825_123_056_546_413_051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """True if ``a`` witnesses that ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) for n below ~3.8e18 via fixed witness sets;
    otherwise probabilistic with error probability at most 4**-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for bound, witnesses in _DETERMINISTIC_WITNESSES:
        if n < bound:
            return not any(_miller_rabin_witness(n, a) for a in witnesses)
    if rng is None:
        # Witness choice only affects the error bound, never the verdict
        # distribution a caller observes, so a candidate-derived stream is
        # safe — and unlike the global ``random`` stream it keeps the run
        # reproducible and leaves caller streams unperturbed.
        rng = random.Random(n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits — required for predictable RSA key sizes.
    """
    if bits < 8:
        raise ValueError("refusing to generate primes under 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2))  # exact size
        candidate |= 1  # odd
        if is_probable_prime(candidate, rng=rng):
            return candidate
