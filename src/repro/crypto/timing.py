"""Cryptographic cost model.

The paper charges the simulation a *processing delay* for public-key
operations rather than running real crypto per packet:

    "A typical public-key encryption needs 0.5ms while the decryption
     needs 8.5ms for a portable computer processor.  Our simulations
     include a proper processing delay for where it applies."

This module centralizes those constants together with wire-size models
(trapdoor <= 64 bytes for RSA-512; certificate and ring-signature sizes
as functions of the ring size), so protocol code asks one object "how
long does opening a trapdoor take?" and "how many bytes does an AANT
hello carry?".  Simulations may instead run the real primitives by
swapping the crypto provider (see :mod:`repro.core.config`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CryptoCostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CryptoCostModel:
    """Latency and size constants for modeled cryptography.

    All times in seconds, sizes in bytes.  Defaults follow the paper's
    evaluation (RSA-512 on a 2005-era portable processor).
    """

    pk_encrypt_s: float = 0.5e-3
    pk_decrypt_s: float = 8.5e-3
    pk_sign_s: float = 8.5e-3  # same private-key exponentiation as decrypt
    pk_verify_s: float = 0.5e-3  # same public-key exponentiation as encrypt
    sym_encrypt_s: float = 5e-6
    hash_s: float = 1e-6

    rsa_block_bytes: int = 64  # one RSA-512 block; the paper's trapdoor bound
    trapdoor_bytes: int = 64
    certificate_bytes: int = 128  # 64-byte key material + identity + CA signature
    cert_serial_bytes: int = 8  # the "transmit serials instead" optimization
    ring_element_bytes: int = 84  # RSA-512 block + 160-bit domain margin

    def ring_sign_cost(self, ring_size: int) -> float:
        """Signer cost: one private-key op plus ring_size public-key ops."""
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        return self.pk_sign_s + ring_size * self.pk_verify_s

    def ring_verify_cost(self, ring_size: int) -> float:
        """Verifier cost: one public-key op per ring member."""
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        return ring_size * self.pk_verify_s

    def ring_signature_bytes(self, ring_size: int) -> int:
        """Wire size of an RST ring signature: glue + one x per member."""
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        return self.ring_element_bytes * (ring_size + 1)

    def aant_hello_extra_bytes(self, ring_size: int, attach_certificates: bool) -> int:
        """Byte overhead an AANT hello adds on top of a plain ANT hello.

        With ``attach_certificates`` the full certificates ride along
        (bootstrap); otherwise only serial numbers are listed (warm cache).
        """
        per_member = (
            self.certificate_bytes if attach_certificates else self.cert_serial_bytes
        )
        return self.ring_signature_bytes(ring_size) + ring_size * per_member


DEFAULT_COST_MODEL = CryptoCostModel()
