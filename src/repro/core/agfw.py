"""Anonymous Greedy Forwarding — the paper's main protocol (Section 3.2).

The data header is ``<DATA, loc_d, n, trapdoor>``: destination *location*
in cleartext (greedy forwarding needs it), a next-hop *pseudonym* from
the ANT in place of any address, and a *trapdoor* in place of the
destination identity.  Every transmission is a MAC **broadcast** so no
real MAC address ever appears on the air.

Forwarding (paper Algorithm 3.2):

* a node owning the header pseudonym is the committed forwarder;
* outside the destination's radio range ("last hop region") it forwards
  greedily without touching the trapdoor — the crypto cost stays off the
  multi-hop path;
* inside the last hop region it first *tries opening the trapdoor*
  (8.5 ms private-key operation); success = it is the destination;
* a committed forwarder that can neither open nor find a closer neighbor
  performs the **last forwarding attempt**: a local broadcast with
  ``n = 0`` telling all receivers to try the trapdoor, then forwarding
  stops;
* reliability comes from network-layer ACKs (:mod:`repro.core.ack`),
  since broadcasts get no 802.11 ACK — the paper's Fig 1(a) ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.aant import AantAttachment, AantAuthenticator, CertReply, CertRequest
from repro.core.ack import AckManager
from repro.core.ant import AnonymousNeighborTable
from repro.core.config import AgfwConfig
from repro.core.freshness import STRATEGIES
from repro.core.pseudonym import LAST_ATTEMPT, PseudonymManager
from repro.core.trapdoor import Trapdoor, TrapdoorContents, TrapdoorFactory
from repro.geo.vec import Position
from repro.location.geocast import LocationAddressed
from repro.net.addresses import BROADCAST
from repro.net.mac.frames import MacFrame
from repro.net.packet import Packet
from repro.routing.base import BaseRouter
from repro.sim.engine import PURE_ACTOR

__all__ = ["AntHello", "AgfwData", "AgfwAck", "AgfwRouter"]

_IP_HEADER = 20
_LOC_BYTES = 8
_PSEUDONYM_BYTES = 6
_ACK_REF_BYTES = 8


@dataclass
class AntHello(Packet):
    """``<HELLO, n, loc, ts>`` — no identity anywhere (Section 3.1.1)."""

    KIND = "agfw.hello"

    pseudonym: bytes = b""
    position: Position = field(default_factory=lambda: Position(0.0, 0.0))
    timestamp: float = 0.0
    velocity: Tuple[float, float] = (0.0, 0.0)
    auth: Optional[AantAttachment] = None

    def header_bytes(self) -> int:
        base = _IP_HEADER + _PSEUDONYM_BYTES + _LOC_BYTES + 4 + 8  # ts + velocity
        if self.auth is not None:
            base += self.auth.extra_bytes
        return base

    def wire_view(self) -> dict:
        """Sniffer view: a pseudonym-location pair, *no identity*."""
        view = {
            "pseudonym": self.pseudonym.hex(),
            "location": self.position.as_tuple(),
            "timestamp": self.timestamp,
        }
        if self.auth is not None:
            view["auth"] = self.auth.wire_view()
        return view


@dataclass
class AgfwData(Packet):
    """``<DATA, loc_d, n, trapdoor>`` (+ optional piggybacked ACK refs).

    The perimeter-mode fields (the paper's future-work extension) carry
    only *locations* — the entry point Lp, the best face crossing, and
    the previous transmitter position the right-hand rule sweeps from —
    never identities, so recovery does not weaken the anonymity argument.
    """

    KIND = "agfw.data"

    dest_location: Position = field(default_factory=lambda: Position(0.0, 0.0))
    next_pseudonym: bytes = LAST_ATTEMPT
    trapdoor: Optional[Trapdoor] = None
    ttl: int = 64
    ack_refs: Tuple[bytes, ...] = ()
    mode: str = "greedy"  # or "perimeter"
    entry_location: Optional[Position] = None
    face_point: Optional[Position] = None
    last_hop_position: Optional[Position] = None

    def header_bytes(self) -> int:
        trapdoor = self.trapdoor.size_bytes if self.trapdoor is not None else 0
        acks = (1 + _ACK_REF_BYTES * len(self.ack_refs)) if self.ack_refs else 0
        perimeter = 3 * _LOC_BYTES if self.mode == "perimeter" else 0
        return _IP_HEADER + _LOC_BYTES + _PSEUDONYM_BYTES + 1 + trapdoor + acks + perimeter

    def wire_view(self) -> dict:
        """Sniffer view: where the packet is going, nothing about *who*."""
        view = {
            "dest_location": self.dest_location.as_tuple(),
            "next_pseudonym": self.next_pseudonym.hex(),
            "trapdoor": self.trapdoor.wire_view() if self.trapdoor else None,
        }
        if self.mode == "perimeter":
            view["mode"] = "perimeter"
        return view


@dataclass
class AgfwAck(Packet):
    """A locally broadcast network-layer ACK carrying packet references."""

    KIND = "agfw.ack"

    refs: Tuple[bytes, ...] = ()

    def header_bytes(self) -> int:
        return _IP_HEADER + 1 + _ACK_REF_BYTES * len(self.refs)

    def wire_view(self) -> dict:
        return {"refs": [r.hex() for r in self.refs]}


class AgfwRouter(BaseRouter):
    """One node's anonymous geographic routing agent."""

    def __init__(
        self,
        node,
        location_service,
        config: Optional[AgfwConfig] = None,
        tracer=None,
        authenticator: Optional[AantAuthenticator] = None,
        trapdoor_factory: Optional[TrapdoorFactory] = None,
    ) -> None:
        config = config or AgfwConfig()
        super().__init__(node, location_service, config, tracer)
        self.config: AgfwConfig = config
        self.ant = AnonymousNeighborTable(config.neighbor_timeout)
        self.pseudonyms = PseudonymManager(
            node.identity, node.rng("pseudonym"), memory=config.pseudonym_memory
        )
        self.strategy = STRATEGIES[config.next_hop_strategy]
        self.authenticator = authenticator
        self.trapdoors = trapdoor_factory or TrapdoorFactory(
            config.crypto_mode,
            config.cost_model,
            node.rng("trapdoor"),
            cache_mode=config.crypto_cache_mode,
        )
        self.acks = AckManager(
            self.sim,
            config,
            retransmit=self._retransmit,
            give_up=self._on_ack_give_up,
            send_ack=self._send_standalone_ack,
        )
        self._handled_uids: set[int] = set()
        self._accepted_uids: set[int] = set()
        self._last_attempt_uids: set[int] = set()
        self._reroutes: Dict[int, int] = {}
        self._hellos_awaiting_certs: list[AntHello] = []
        self.cert_requests_sent = 0
        self.cert_replies_sent = 0
        self._purge_tick()

    def _purge_tick(self) -> None:
        self.ant.purge(self.sim.now)
        # PURE: ANT expiry drops table entries and can never lead to a
        # transmission, so the sharded promise scan skips the tick chain.
        self.sim.schedule(
            self.config.beacon_interval, self._purge_tick, name="agfw.purge",
            actor=PURE_ACTOR,
        )

    # ------------------------------------------------------ lifecycle faults
    def on_fault_down(self) -> None:
        """Crash: ANT entries, pending NL-ACK watches, buffered ACK refs,
        reroute counters, and hellos parked for certificates are all
        volatile — none of it survives a power cycle.  The duplicate-uid
        sets are kept (they stand in for an on-flash duplicate cache;
        clearing them would double-count deliveries on re-reception)."""
        super().on_fault_down()
        self.ant.clear()
        self.acks.reset()
        self._hellos_awaiting_certs.clear()
        self._reroutes.clear()

    # ============================================================= beaconing
    def send_beacon(self) -> None:
        pseudonym = self.pseudonyms.new_pseudonym()
        now = self.sim.now
        position = self.position
        velocity = self.node.mobility.velocity_at(now)
        if self.authenticator is None:
            hello = AntHello(
                pseudonym=pseudonym, position=position, timestamp=now, velocity=velocity
            )
            self.node.mac.send(hello, BROADCAST)
            return
        attachment, delay = self.authenticator.sign_hello(pseudonym, position, now)
        hello = AntHello(
            pseudonym=pseudonym,
            position=position,
            timestamp=now,
            velocity=velocity,
            auth=attachment,
        )
        # Ring signing is CPU work; the hello leaves after it completes.
        # A crash during the signing window discards the half-signed hello
        # (the epoch check), matching the volatile-state contract.
        epoch = self._fault_epoch

        def _transmit_signed() -> None:
            if self._fault_epoch == epoch:
                self.node.mac.send(hello, BROADCAST)

        self.sim.schedule(delay, _transmit_signed, name="aant.sign")

    # ============================================================== receive
    def on_packet(self, packet: Packet, frame: MacFrame) -> None:
        handler = self.packet_handlers.get(type(packet))
        if handler is not None:
            if isinstance(packet, LocationAddressed) and not self._location_packet_for_me(packet):
                return
            handler(packet, frame)
            return
        if isinstance(packet, AntHello):
            self._on_hello(packet)
        elif isinstance(packet, AgfwData):
            self._on_data(packet)
        elif isinstance(packet, AgfwAck):
            self.acks.on_ack_refs(packet.refs)
        elif isinstance(packet, CertRequest):
            self._on_cert_request(packet)
        elif isinstance(packet, CertReply):
            self._on_cert_reply(packet)

    def _location_packet_for_me(self, packet: LocationAddressed) -> bool:
        return (
            packet.next_pseudonym == LAST_ATTEMPT
            or self.pseudonyms.owns(packet.next_pseudonym)
        )

    # --------------------------------------------------------------- hellos
    def _on_hello(self, hello: AntHello) -> None:
        if self.authenticator is None:
            self.ant.update(hello.pseudonym, hello.position, self.sim.now, hello.velocity)
            return
        missing = self.authenticator.missing_subjects(hello.auth)
        if missing:
            # Paper Sec 4: fetch unknown decoy certificates and retry the
            # hello instead of silently rejecting an honest neighbor.
            self._hellos_awaiting_certs.append(hello)
            if len(self._hellos_awaiting_certs) > 32:
                self._hellos_awaiting_certs.pop(0)
            self.cert_requests_sent += 1
            self._trace("aant.cert_request", subjects=list(missing))
            # Ring subjects are decoy identities wire-visible *by design*:
            # the anonymous-authentication ring (paper Sec. 4) trades their
            # exposure for k-anonymity of the actual signer.
            self.node.mac.send(CertRequest(subjects=missing), BROADCAST)  # repro: noqa[ANON-001] ring decoys
            return
        valid, delay = self.authenticator.verify_hello(
            hello.auth, hello.pseudonym, hello.position, hello.timestamp
        )
        epoch = self._fault_epoch

        def _apply() -> None:
            if self._fault_epoch != epoch:
                return  # crashed mid-verify: pre-crash state must not leak
            if valid:
                self.ant.update(
                    hello.pseudonym, hello.position, hello.timestamp, hello.velocity
                )
            else:
                self.stats.drops_auth += 1
                self._trace("aant.reject", pseudonym=hello.pseudonym.hex())

        self.sim.schedule(delay, _apply, name="aant.verify")

    def _on_cert_request(self, request: CertRequest) -> None:
        if self.authenticator is None:
            return
        certificates = self.authenticator.certificates_for(request.subjects)
        if not certificates:
            return
        # Small random delay desynchronizes the (many) potential repliers.
        jitter = self._rng.uniform(0.001, 0.010)
        reply = CertReply(certificates=tuple(certificates))
        self.cert_replies_sent += 1
        self.sim.schedule(
            jitter, lambda: self.node.mac.send(reply, BROADCAST), name="aant.cert_reply"
        )

    def _on_cert_reply(self, reply: CertReply) -> None:
        if self.authenticator is None:
            return
        added = self.authenticator.accept_certificates(reply.certificates)
        if added == 0 or not self._hellos_awaiting_certs:
            return
        # Retry the buffered hellos whose rings are now resolvable.  Stale
        # entries (still missing certs) stay buffered for the next reply.
        retry, keep = [], []
        for hello in self._hellos_awaiting_certs:
            if self.authenticator.missing_subjects(hello.auth):
                keep.append(hello)
            else:
                retry.append(hello)
        self._hellos_awaiting_certs = keep
        for hello in retry:
            self._on_hello(hello)

    # ----------------------------------------------------------------- data
    def _on_data(self, packet: AgfwData) -> None:
        if packet.ack_refs:
            self.acks.on_ack_refs(packet.ack_refs)
        pseudonym = packet.next_pseudonym

        if self.pseudonyms.owns(pseudonym):
            if self.config.enable_ack:
                self._queue_ack(packet)
            if packet.uid in self._handled_uids:
                return  # duplicate: our earlier ACK was lost; it was re-queued above
            self._handled_uids.add(packet.uid)
            self._process_as_committed_forwarder(packet)
        elif pseudonym == LAST_ATTEMPT:
            if packet.uid in self._last_attempt_uids:
                return
            self._last_attempt_uids.add(packet.uid)
            self._try_open_then(
                packet,
                on_opened=self._accept,
                on_failed=lambda p: self._trace("agfw.discard", packet_uid=p.uid),
            )
        # else: not addressed to us — discard silently (Algorithm 3.2).

    def _process_as_committed_forwarder(self, packet: AgfwData) -> None:
        if self.in_last_hop_region(packet.dest_location):
            self._try_open_then(
                packet,
                on_opened=self._accept,
                on_failed=self._forward_or_last_attempt,
            )
        else:
            if not self._dispatch_forward(packet):
                # "Forwarding stops; recovery mode could be further
                # considered" — unless perimeter recovery is enabled above.
                self.stats.drops_deadend += 1
                self._trace("route.drop", reason="deadend", packet_uid=packet.uid)

    def _forward_or_last_attempt(self, packet: AgfwData) -> None:
        if not self._dispatch_forward(packet):
            self._last_forwarding_attempt(packet)

    def _dispatch_forward(self, packet: AgfwData) -> bool:
        """Greedy forwarding with optional perimeter recovery.

        Returns False only when the packet could not be handed to anyone
        (true dead end, perimeter included).
        """
        if packet.mode == "perimeter" and self.config.enable_perimeter:
            own = self.position
            assert packet.entry_location is not None
            if own.distance2_to(packet.dest_location) < packet.entry_location.distance2_to(
                packet.dest_location
            ):
                # Closer than where perimeter mode began: back to greedy.
                packet = packet.clone_for_forwarding(
                    mode="greedy",
                    entry_location=None,
                    face_point=None,
                    last_hop_position=None,
                )
            else:
                return self._perimeter_forward(packet)
        if self._try_forward(packet):
            return True
        if self.config.enable_perimeter:
            perimeter = packet.clone_for_forwarding(
                mode="perimeter",
                entry_location=self.position,
                face_point=None,
                last_hop_position=None,
            )
            return self._perimeter_forward(perimeter)
        return False

    def _perimeter_forward(self, packet: AgfwData) -> bool:
        """One face-routing hop on the Gabriel-planarized ANT.

        Identical to GPSR's perimeter mode except the next hop is named
        by pseudonym and the frame is a local broadcast — the recovery
        inherits AGFW's anonymity properties wholesale.
        """
        from repro.routing.planar import (
            crossing_point,
            gabriel_neighbors,
            right_hand_neighbor,
        )

        if packet.ttl <= 0:
            self.stats.drops_ttl += 1
            self._trace("route.drop", reason="ttl", packet_uid=packet.uid)
            return True  # consumed
        own = self.position
        neighbors = [
            (e.pseudonym, e.position) for e in self.ant.entries(self.sim.now)
        ]
        planar = gabriel_neighbors(own, neighbors)
        if not planar:
            return False
        reference = packet.last_hop_position or packet.dest_location
        pseudonym, next_pos = right_hand_neighbor(own, reference, planar)

        assert packet.entry_location is not None
        cross = crossing_point(own, next_pos, packet.entry_location, packet.dest_location)
        if cross is not None:
            previous = packet.face_point
            if previous is None or cross.distance2_to(packet.dest_location) < previous.distance2_to(
                packet.dest_location
            ):
                packet = packet.clone_for_forwarding(face_point=cross)
                pseudonym, next_pos = right_hand_neighbor(
                    own, packet.dest_location, planar
                )

        outgoing = packet.clone_for_forwarding(
            next_pseudonym=pseudonym,
            ttl=packet.ttl - 1,
            last_hop_position=own,
            ack_refs=self.acks.take_piggyback_refs(),
        )
        self._trace(
            "route.forward",
            packet_uid=packet.uid,
            next_pseudonym=pseudonym.hex(),
            mode="perimeter",
        )
        self.node.mac.send(outgoing, BROADCAST)
        self.stats.forwarded += 1
        if self.config.enable_ack:
            assert outgoing.trapdoor is not None
            self.acks.watch(outgoing, outgoing.trapdoor.ref_bytes())
        return True

    # ------------------------------------------------------------ trapdoors
    def _try_open_then(self, packet: AgfwData, on_opened, on_failed) -> None:
        """Charge the private-key delay, then branch on the outcome."""
        private_key = (
            self.node.keystore.private_key if self.node.keystore is not None else None
        )
        assert packet.trapdoor is not None
        contents, delay = self.trapdoors.try_open(
            packet.trapdoor, self.node.identity, private_key
        )
        epoch = self._fault_epoch

        def _done() -> None:
            if self._fault_epoch != epoch:
                return  # crashed while the private-key op was in flight
            if contents is not None:
                on_opened(packet, contents)
            else:
                on_failed(packet)

        self.sim.schedule(delay, _done, name="agfw.open")

    def _accept(self, packet: AgfwData, contents: TrapdoorContents) -> None:
        if packet.uid in self._accepted_uids:
            self.stats.duplicates += 1
            return
        self._accepted_uids.add(packet.uid)
        self._trace_app_recv(packet.uid)
        self._trace(
            "agfw.accept",
            packet_uid=packet.uid,
            src_identity=contents.src_identity,
        )

    # ----------------------------------------------------------- forwarding
    def _try_forward(self, packet: AgfwData) -> bool:
        """Greedy step over the ANT; returns False at a local maximum."""
        if packet.ttl <= 0:
            self.stats.drops_ttl += 1
            self._trace("route.drop", reason="ttl", packet_uid=packet.uid)
            return True  # consumed (dropped), no last-attempt escalation
        now = self.sim.now
        own = self.position
        candidates = self.ant.candidates_towards(packet.dest_location, own, now)
        entry = self.strategy(
            own, packet.dest_location, candidates, now, self.config.neighbor_timeout
        )
        if entry is None:
            return False
        outgoing = packet.clone_for_forwarding(
            next_pseudonym=entry.pseudonym,
            ttl=packet.ttl - 1,
            ack_refs=self.acks.take_piggyback_refs(),
        )
        self._trace(
            "route.forward",
            packet_uid=packet.uid,
            next_pseudonym=entry.pseudonym.hex(),
        )
        self.node.mac.send(outgoing, BROADCAST)
        self.stats.forwarded += 1
        if self.config.enable_ack:
            assert outgoing.trapdoor is not None
            self.acks.watch(outgoing, outgoing.trapdoor.ref_bytes())
        return True

    def _last_forwarding_attempt(self, packet: AgfwData) -> None:
        """Local broadcast with n = 0: everyone tries the trapdoor, then stop."""
        outgoing = packet.clone_for_forwarding(
            next_pseudonym=LAST_ATTEMPT, ttl=max(packet.ttl - 1, 0), ack_refs=()
        )
        self._trace("agfw.last_attempt", packet_uid=packet.uid)
        self.node.mac.send(outgoing, BROADCAST)

    # -------------------------------------------------------- reliability
    def _queue_ack(self, packet: AgfwData) -> None:
        assert packet.trapdoor is not None
        self.acks.queue_ack(packet.trapdoor.ref_bytes())

    def _send_standalone_ack(self, refs: Tuple[bytes, ...]) -> None:
        self.node.mac.send(AgfwAck(refs=refs), BROADCAST)

    def _retransmit(self, packet: AgfwData) -> None:
        self._trace("agfw.retransmit", packet_uid=packet.uid)
        self.node.mac.send(packet, BROADCAST)

    def _on_ack_give_up(self, packet: AgfwData, ref: bytes) -> None:
        """The committed forwarder never confirmed: evict its pseudonym and
        try once or twice through someone else (mirrors GPSR's reaction to
        MAC-level failures)."""
        self.ant.remove(packet.next_pseudonym)
        attempts = self._reroutes.get(packet.uid, 0)
        if attempts < 2:
            self._reroutes[packet.uid] = attempts + 1
            if self._dispatch_forward(packet):
                return
            if self.in_last_hop_region(packet.dest_location):
                self._last_forwarding_attempt(packet)
                return
        self.stats.drops_mac += 1
        self._trace("route.drop", reason="nl_ack", packet_uid=packet.uid)

    # ------------------------------------------------------------ originate
    def _originate(
        self, dest_identity: str, dest_location: Position, payload_bytes: int
    ) -> Optional[int]:
        dest_public_key = None
        if self.trapdoors.mode == "real":
            if self.node.keystore is None:
                raise RuntimeError("real crypto mode requires node keystores")
            cert = self.node.keystore.get(dest_identity)
            if cert is None:
                self.stats.drops_no_location += 1
                self._trace("route.drop", reason="no_certificate", dest=dest_identity)
                return None
            dest_public_key = cert.public_key
        contents = TrapdoorContents(
            src_identity=self.node.identity,
            src_location=self.position,
            timestamp=self.sim.now,
        )
        trapdoor, seal_delay = self.trapdoors.seal(
            dest_identity, dest_public_key, contents
        )
        packet = AgfwData(
            payload_bytes=payload_bytes,
            dest_location=dest_location,
            trapdoor=trapdoor,
            ttl=self.config.data_ttl,
        )
        self._trace_app_send(packet.uid, dest_identity, payload_bytes)
        self._handled_uids.add(packet.uid)
        epoch = self._fault_epoch

        def _launch() -> None:
            if self._fault_epoch != epoch:
                return  # crashed while sealing the trapdoor
            if dest_identity == self.node.identity:  # degenerate loopback
                self._accept(packet, contents)
                return
            if not self._dispatch_forward(packet):
                if self.in_last_hop_region(dest_location):
                    self._last_forwarding_attempt(packet)
                else:
                    self.stats.drops_deadend += 1
                    self._trace("route.drop", reason="deadend", packet_uid=packet.uid)

        self.sim.schedule(seal_delay, _launch, name="agfw.seal")
        return packet.uid

    # ------------------------------------------------------------- geocast
    def forward_location_packet(self, packet: LocationAddressed, deliver_local) -> None:
        """Route a service packet toward its target location (ALS transport).

        ``deliver_local`` fires when this node is the local maximum — the
        service agent decides whether the packet has "arrived".
        """
        if packet.ttl <= 0:
            self.stats.drops_ttl += 1
            return
        now = self.sim.now
        own = self.position
        candidates = self.ant.candidates_towards(packet.target_location, own, now)
        entry = self.strategy(
            own, packet.target_location, candidates, now, self.config.neighbor_timeout
        )
        if entry is None:
            deliver_local(packet)
            return
        outgoing = packet.clone_for_forwarding(
            next_pseudonym=entry.pseudonym, ttl=packet.ttl - 1
        )
        self.node.mac.send(outgoing, BROADCAST)
