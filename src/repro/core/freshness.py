"""Next-hop selection strategies over the ANT (paper Section 3.1.1).

Because the ANT holds multiple unlinkable entries per physical neighbor,
"not only the position but the freshness should also be considered in
the forwarding decision."  Two strategies are provided:

* ``best_position`` — the classic greedy rule: minimum distance to the
  destination, freshness ignored (the paper's strawman).
* ``freshest_progress`` — exponentially discount an entry's progress by
  its age, so a fresh entry with slightly less progress beats a stale
  "best" entry (the paper's recommendation).  When a velocity was
  advertised, the dead-reckoned position is used.

The ablation benchmark (`benchmarks/bench_freshness_ablation.py`)
quantifies the difference.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.ant import AntEntry
from repro.geo.vec import Position

__all__ = ["NextHopStrategy", "best_position", "freshest_progress", "STRATEGIES"]

NextHopStrategy = Callable[[Position, Position, Sequence[AntEntry], float, float], Optional[AntEntry]]
"""(own_pos, target, candidates, now, timeout) -> chosen entry or None."""


def best_position(
    own_position: Position,
    target: Position,
    candidates: Sequence[AntEntry],
    now: float,
    timeout: float,
) -> Optional[AntEntry]:
    """Pure greedy: the candidate whose advertised position is closest to
    the target, regardless of how stale the advertisement is."""
    if not candidates:
        return None
    return min(candidates, key=lambda e: e.position.distance2_to(target))


def freshest_progress(
    own_position: Position,
    target: Position,
    candidates: Sequence[AntEntry],
    now: float,
    timeout: float,
) -> Optional[AntEntry]:
    """Freshness-discounted progress.

    Score = (progress toward target) * exp(-age / tau), tau = timeout/3.
    Uses the dead-reckoned position when the entry advertised velocity.
    Entries whose *predicted* position no longer makes progress are
    skipped, falling back to advertised positions if that empties the set.
    """
    if not candidates:
        return None
    tau = max(timeout / 3.0, 1e-9)
    own_d = math.sqrt(own_position.distance2_to(target))

    def score(entry: AntEntry) -> float:
        predicted = entry.predicted_position(now)
        progress = own_d - math.sqrt(predicted.distance2_to(target))
        return progress * math.exp(-entry.age(now) / tau)

    best = max(candidates, key=score)
    if score(best) > 0:
        return best
    # Prediction says nobody makes progress; trust advertised positions.
    return best_position(own_position, target, candidates, now, timeout)


STRATEGIES: Dict[str, NextHopStrategy] = {
    "best_position": best_position,
    "freshest_progress": freshest_progress,
}
"""Registry used by :class:`~repro.core.agfw.AgfwRouter` via config string."""
