"""ALS — the Anonymous Location Service (paper Section 3.3, Algorithm 3.3).

ALS keeps DLM's grid/server-selection machinery but removes every
cleartext doublet:

* **RLU**   ``A -> S: <RLU, ssa(A), E_KB(A,B), E_KB(A, loc_A, ts)>`` —
  the updater's location travels encrypted under each *potential
  requester's* public key; the server stores ciphertext it cannot read,
  filed under the encrypted index ``E_KB(A,B)``.
* **LREQ**  ``B -> S: <LREQ, ssa(A), E_KB(A,B), loc_B>`` — the requester
  never reveals its identity, only the index (which it can compute with
  its own key pair) and a reply location.
* **LREP**  ``S -> B: <LREP, loc_B, E_KB(A, loc_A, ts)>`` — routed to a
  location; only B can decrypt the payload, which is also how B
  recognizes replies meant for it.

The paper's stated limitation is implemented honestly: an updater must
enumerate ``potential_senders`` and push one entry per sender.  The
paper's *alternative* scheme (requester omits the index; server returns
every stored ciphertext, trading bandwidth for index privacy) is the
``include_index=False`` mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.trapdoor import Trapdoor, TrapdoorContents, TrapdoorFactory
from repro.crypto.hashing import hash_to_int, sha256
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel
from repro.geo.grid import Grid
from repro.geo.vec import Position
from repro.location.dlm import DlmConfig, DlmReply, DlmRequest, DlmUpdate, StoredLocation
from repro.location.geocast import LocationAddressed
from repro.net.addresses import BROADCAST, LAST_ATTEMPT
from repro.net.mac.frames import MacFrame
from repro.net.node import Node
from repro.sim.engine import Event

__all__ = [
    "AlsConfig",
    "AlsUpdate",
    "AlsRequest",
    "AlsReply",
    "AlsAgent",
    "make_index",
]

_MODELED_INDEX_BYTES = 16


def make_index(
    updater: str,
    requester: str,
    requester_public_key: Optional[RsaPublicKey],
    mode: str = "modeled",
) -> bytes:
    """The deterministic index ``E_KB(A, B)``.

    Both A and B must derive the *same* bytes independently, so the
    encryption is deterministic: real mode applies the raw RSA
    permutation to a full-domain hash of ``(A, B)`` under B's public key.
    The paper itself notes the consequence — "a sophisticated attacker
    may find a matching identity with a certain probability ... by
    computing it exhaustively" — which ``include_index=False`` avoids.
    """
    material = f"als-index|{updater}|{requester}".encode("utf-8")
    if mode == "modeled" or requester_public_key is None:
        return sha256(material)[:_MODELED_INDEX_BYTES]
    value = hash_to_int(material, requester_public_key.bits - 1)
    encrypted = requester_public_key.apply(value)
    return encrypted.to_bytes(requester_public_key.byte_size, "big")


@dataclass
class AlsConfig(DlmConfig):
    """DLM parameters plus the ALS-specific switches."""

    include_index: bool = True
    """False = the paper's alternative: request without the index, server
    returns all stored ciphertexts (anonymity/overhead trade)."""

    max_reply_blobs: int = 8
    """Cap on ciphertexts per reply in the no-index mode."""


@dataclass
class AlsUpdate(LocationAddressed):
    """RLU: an (index, ciphertext) pair — nothing legible to the server."""

    KIND = "als.update"

    index: bytes = b""
    blob: Optional[Trapdoor] = None
    final_broadcast: bool = False

    def header_bytes(self) -> int:
        blob = self.blob.size_bytes if self.blob is not None else 0
        return super().header_bytes() + len(self.index) + blob

    def wire_view(self) -> dict:
        return {
            "index": self.index.hex(),
            "blob": self.blob.wire_view() if self.blob else None,
            "target_cell_hint": self.target_location.as_tuple(),
        }


@dataclass
class AlsRequest(LocationAddressed):
    """LREQ: the index (optional) and a bare reply location."""

    KIND = "als.request"

    index: Optional[bytes] = None
    reply_location: Position = field(default_factory=lambda: Position(0.0, 0.0))
    final_broadcast: bool = False

    def header_bytes(self) -> int:
        index = len(self.index) if self.index is not None else 0
        return super().header_bytes() + index + 8

    def wire_view(self) -> dict:
        return {
            "index": self.index.hex() if self.index is not None else None,
            "reply_location": self.reply_location.as_tuple(),
        }


@dataclass
class AlsReply(LocationAddressed):
    """LREP: ciphertexts routed to a location; only the requester can read."""

    KIND = "als.reply"

    blobs: Tuple[Trapdoor, ...] = ()
    final_broadcast: bool = False

    def header_bytes(self) -> int:
        return super().header_bytes() + sum(b.size_bytes for b in self.blobs)

    def wire_view(self) -> dict:
        return {"blobs": [b.wire_view() for b in self.blobs]}


@dataclass
class _StoredBlob:
    blob: Trapdoor
    stored_at: float


@dataclass
class _PendingLookup:
    target_identity: str
    callback: Callable[[Optional[Position]], None]
    retries_left: int
    timer: Optional[Event] = None
    tried_plain: bool = False


class AlsAgent:
    """The anonymous location-service role of one node."""

    def __init__(
        self,
        node: Node,
        router,
        grid: Grid,
        config: Optional[AlsConfig] = None,
        mode: str = "modeled",
        cost_model: CryptoCostModel = DEFAULT_COST_MODEL,
        trapdoor_factory: Optional[TrapdoorFactory] = None,
        install: bool = True,
        cache_mode: str = "on",
    ) -> None:
        if mode not in ("modeled", "real"):
            raise ValueError(f"unknown ALS mode {mode!r}")
        self.node = node
        self.sim = node.sim
        self.router = router
        self.grid = grid
        self.config = config or AlsConfig()
        self.mode = mode
        self.cost = cost_model
        self.sealer = trapdoor_factory or TrapdoorFactory(
            mode, cost_model, node.rng("als"), cache_mode=cache_mode
        )
        self._rng: random.Random = node.rng("als.proto")
        self.potential_senders: List[str] = []
        self.store: Dict[bytes, _StoredBlob] = {}
        self.plain_store: Dict[str, StoredLocation] = {}
        self._pending: Dict[str, _PendingLookup] = {}
        self._seen_uids: set[int] = set()
        #: The paper's heterogeneous update strategy: "once the node does
        #: not need a strict privacy protection any more, it can switch to
        #: a normal location service in order to reduce the effort needed
        #: to be accessed by potential senders."
        self.privacy_enabled: bool = True
        self._started = False
        # Accounting for the overhead benchmark (paper Sec 5: ALS expected
        # to "elegantly degrade a bit" vs the plain location service).
        self.messages_sent = 0
        self.bytes_sent = 0
        self.crypto_ops = 0
        self.crypto_time_charged = 0.0
        self.updates_stored = 0
        self.requests_served = 0
        self.lookups_failed = 0
        if install:
            self.install()

    def install(self) -> None:
        packet_types = (AlsUpdate, AlsRequest, AlsReply, DlmUpdate, DlmRequest, DlmReply)
        for packet_type in packet_types:
            self.router.register_handler(packet_type, self._on_packet)
        self.router.location_service = self

    def set_privacy(self, enabled: bool) -> None:
        """Switch between anonymous (ALS) and plain (DLM-style) updates."""
        self.privacy_enabled = enabled

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        first = self._rng.uniform(0.0, self.config.update_interval)
        self.sim.schedule(first, self._update_tick, name="als.update")

    def _update_tick(self) -> None:
        self.send_updates()
        jitter = self.config.update_jitter
        interval = self.config.update_interval * self._rng.uniform(1 - jitter, 1 + jitter)
        self.sim.schedule(interval, self._update_tick, name="als.update")

    # -------------------------------------------------------------- updates
    def send_updates(self) -> None:
        """One encrypted entry per anticipated requester, per server grid.

        This is the limitation the paper concedes: "the updating node has
        to identify all its possible senders and has to update the
        location server accordingly."  With ``privacy_enabled`` off the
        node falls back to plain DLM-style updates: one cleartext entry
        per server grid, readable by anyone.
        """
        now = self.sim.now
        position = self.node.position
        cells = self.grid.home_cells(self.node.identity, self.config.servers_per_node)
        if not self.privacy_enabled:
            for cell in cells:
                update = DlmUpdate(
                    target_location=self.grid.center_of(cell),
                    ttl=self.config.service_ttl,
                    # Heterogeneous mode with privacy switched *off*: the
                    # node has opted out (paper Sec. 4.3), so it falls back
                    # to the plain DLM update and knowingly leaks.
                    identity=self.node.identity,  # repro: noqa[ANON-001] privacy opted out
                    position=position,
                    timestamp=now,
                )
                self._route(update)
            return
        for sender in self.potential_senders:
            index = self._index_for(sender)
            contents = TrapdoorContents(self.node.identity, position, now)
            blob, delay = self.sealer.seal(sender, self._public_key_of(sender), contents)
            self._charge(delay)
            for cell in cells:
                update = AlsUpdate(
                    target_location=self.grid.center_of(cell),
                    ttl=self.config.service_ttl,
                    index=index,
                    blob=blob,
                )
                self._route(update)

    # -------------------------------------------------------------- lookups
    def lookup(
        self, requester: Node, identity: str, callback: Callable[[Optional[Position]], None]
    ) -> None:
        """Resolve ``identity`` anonymously; we are "B", the target is "A"."""
        pending = _PendingLookup(identity, callback, self.config.request_retries)
        self._pending[identity] = pending
        self._send_request(identity, pending)

    def _send_request(self, identity: str, pending: _PendingLookup) -> None:
        cell = self.grid.home_cells(identity, self.config.servers_per_node)[0]
        index = None
        if self.config.include_index:
            index = make_index(identity, self.node.identity, self._own_public_key(), self.mode)
        request = AlsRequest(
            target_location=self.grid.center_of(cell),
            ttl=self.config.service_ttl,
            index=index,
            reply_location=self.node.position,
        )
        self._route(request)
        pending.timer = self.sim.schedule(
            self.config.request_timeout,
            lambda: self._on_lookup_timeout(identity),
            name="als.req_to",
        )

    def _on_lookup_timeout(self, identity: str) -> None:
        pending = self._pending.get(identity)
        if pending is None:
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            self._send_request(identity, pending)
            return
        if not pending.tried_plain:
            # Heterogeneous fallback: the target may have opted out of
            # privacy; ask the plain way before giving up.
            pending.tried_plain = True
            self._send_plain_request(identity, pending)
            return
        del self._pending[identity]
        self.lookups_failed += 1
        pending.callback(None)

    def _send_plain_request(self, identity: str, pending: _PendingLookup) -> None:
        cell = self.grid.home_cells(identity, self.config.servers_per_node)[0]
        request = DlmRequest(
            target_location=self.grid.center_of(cell),
            ttl=self.config.service_ttl,
            # Heterogeneous fallback (paper Sec. 4.3): the anonymous lookup
            # timed out, so the target may have opted out of privacy — ask
            # the plain way, accepting the deliberate identity exposure.
            requester_identity=self.node.identity,  # repro: noqa[ANON-001] plain fallback
            requester_location=self.node.position,
            target_identity=identity,  # repro: noqa[ANON-001] plain fallback
        )
        self._route(request)
        pending.timer = self.sim.schedule(
            self.config.request_timeout,
            lambda: self._on_lookup_timeout(identity),
            name="als.plain_req_to",
        )

    # ------------------------------------------------------------ transport
    def _route(self, packet: LocationAddressed) -> None:
        self.messages_sent += 1
        self.bytes_sent += packet.size_bytes()
        if self._arrived(packet):
            self._consume(packet)
        else:
            self.router.forward_location_packet(packet, self._on_local_max)

    def _arrived(self, packet: LocationAddressed) -> bool:
        if isinstance(packet, AlsReply):
            # Anonymity cuts both ways: the only way to know a reply is
            # ours is holding a pending lookup whose blob we can open.
            return bool(self._pending) and self._match_reply(packet) is not None
        if isinstance(packet, DlmReply):
            return packet.requester_identity == self.node.identity
        own_cell = self.grid.cell_of(self.node.position)
        return own_cell == self.grid.cell_of(packet.target_location)

    def _on_packet(self, packet: LocationAddressed, frame: MacFrame) -> None:
        if packet.uid in self._seen_uids:
            # MAC retransmissions with lost ACKs deliver duplicates; without
            # suppression each copy would re-forward (a broadcast storm).
            return
        self._seen_uids.add(packet.uid)
        if self._arrived(packet):
            self._consume(packet)
            return
        if getattr(packet, "final_broadcast", False):
            return
        self.router.forward_location_packet(packet, self._on_local_max)

    def _on_local_max(self, packet: LocationAddressed) -> None:
        if self._arrived(packet):
            self._consume(packet)
            return
        if getattr(packet, "final_broadcast", False):
            return
        outgoing = packet.clone_for_forwarding(
            final_broadcast=True,
            ttl=max(packet.ttl - 1, 0),
            next_pseudonym=LAST_ATTEMPT,
        )
        self.node.mac.send(outgoing, BROADCAST)

    # ----------------------------------------------------------- server role
    def _consume(self, packet: LocationAddressed) -> None:
        if isinstance(packet, AlsUpdate):
            self._store_update(packet)
        elif isinstance(packet, AlsRequest):
            self._serve_request(packet)
        elif isinstance(packet, AlsReply):
            self._finish_lookup(packet)
        elif isinstance(packet, DlmUpdate):
            self._store_plain_update(packet)
        elif isinstance(packet, DlmRequest):
            self._serve_plain_request(packet)
        elif isinstance(packet, DlmReply):
            self._finish_plain_lookup(packet)

    # ---------------------------------------------- heterogeneous (plain) path
    def _store_plain_update(self, update: DlmUpdate) -> None:
        self.plain_store[update.identity] = StoredLocation(
            identity=update.identity,
            position=update.position,
            timestamp=update.timestamp,
            stored_at=self.sim.now,
        )
        self.updates_stored += 1
        if self.config.replicate_in_cell and not update.final_broadcast:
            clone = update.clone_for_forwarding(
                final_broadcast=True, next_pseudonym=LAST_ATTEMPT
            )
            self.node.mac.send(clone, BROADCAST)

    def _serve_plain_request(self, request: DlmRequest) -> None:
        if request.requester_identity == self.node.identity:
            return
        entry = self.plain_store.get(request.target_identity)
        if entry is None or (self.sim.now - entry.stored_at) > self.config.entry_ttl:
            return
        self.requests_served += 1
        reply = DlmReply(
            target_location=request.requester_location,
            ttl=self.config.service_ttl,
            # Serving a *plain* request for a node that opted out of
            # privacy: the reply mirrors the DLM baseline leak.
            requester_identity=request.requester_identity,  # repro: noqa[ANON-001] opted out
            target_identity=entry.identity,  # repro: noqa[ANON-001] opted out
            target_position=entry.position,  # repro: noqa[ANON-001] opted out
            timestamp=entry.timestamp,
        )
        self._route(reply)

    def _finish_plain_lookup(self, reply: DlmReply) -> None:
        pending = self._pending.pop(reply.target_identity, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        pending.callback(reply.target_position)

    def _store_update(self, update: AlsUpdate) -> None:
        assert update.blob is not None
        self.store[update.index] = _StoredBlob(update.blob, self.sim.now)
        self.updates_stored += 1
        if self.config.replicate_in_cell and not update.final_broadcast:
            # Seed cell-mates so any current inhabitant can serve requests
            # (grid nodes collectively act as "the location server").
            clone = update.clone_for_forwarding(
                final_broadcast=True, next_pseudonym=LAST_ATTEMPT
            )
            self.node.mac.send(clone, BROADCAST)

    def _serve_request(self, request: AlsRequest) -> None:
        blobs: List[Trapdoor] = []
        if request.index is not None:
            entry = self.store.get(request.index)
            if entry is not None and self._fresh(entry):
                blobs = [entry.blob]
        else:
            # Alternative scheme: hand back everything fresh we hold; the
            # requester decrypts what it can.  Overhead grows accordingly.
            blobs = [
                e.blob for e in self.store.values() if self._fresh(e)
            ][: self.config.max_reply_blobs]
        if not blobs:
            return
        self.requests_served += 1
        reply = AlsReply(
            target_location=request.reply_location,
            ttl=self.config.service_ttl,
            blobs=tuple(blobs),
        )
        self._route(reply)

    def _match_reply(self, reply: AlsReply) -> Optional[tuple[str, Position]]:
        """Try opening each ciphertext; return (target identity, location)."""
        private_key = (
            self.node.keystore.private_key if self.node.keystore is not None else None
        )
        for blob in reply.blobs:
            contents, delay = self.sealer.try_open(blob, self.node.identity, private_key)
            self._charge(delay)
            if contents is not None and contents.src_identity in self._pending:
                return contents.src_identity, contents.src_location
        return None

    def _finish_lookup(self, reply: AlsReply) -> None:
        match = self._match_reply(reply)
        if match is None:
            return
        identity, position = match
        pending = self._pending.pop(identity, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        pending.callback(position)

    # --------------------------------------------------------------- helpers
    def _index_for(self, sender: str) -> bytes:
        return make_index(self.node.identity, sender, self._public_key_of(sender), self.mode)

    def _public_key_of(self, identity: str) -> Optional[RsaPublicKey]:
        if self.node.keystore is None:
            return None
        cert = self.node.keystore.get(identity)
        return cert.public_key if cert is not None else None

    def _own_public_key(self) -> Optional[RsaPublicKey]:
        if self.node.keystore is None:
            return None
        return self.node.keystore.private_key.public()

    def _charge(self, delay: float) -> None:
        """Account crypto CPU time (kept out of the event timeline: ALS is
        evaluated for message overhead, not latency — paper Sec 5)."""
        self.crypto_ops += 1
        self.crypto_time_charged += delay

    def _fresh(self, entry: _StoredBlob) -> bool:
        return (self.sim.now - entry.stored_at) <= self.config.entry_ttl
