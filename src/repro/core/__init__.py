"""The paper's contribution: ANT, AANT, AGFW, and ALS.

Public API of the anonymous geographic routing scheme:

* :class:`~repro.core.agfw.AgfwRouter` — the routing agent (attach to a
  :class:`~repro.net.node.Node`).
* :class:`~repro.core.config.AgfwConfig` / :class:`~repro.core.config.AantConfig`
  — all protocol knobs.
* :class:`~repro.core.als.AlsAgent` — the anonymous location service.
* Building blocks: :class:`~repro.core.ant.AnonymousNeighborTable`,
  :class:`~repro.core.pseudonym.PseudonymManager`,
  :class:`~repro.core.trapdoor.TrapdoorFactory`,
  :class:`~repro.core.aant.AantAuthenticator`.
"""

from repro.core.aant import AantAttachment, AantAuthenticator, hello_signing_bytes
from repro.core.ack import AckManager, PendingSend
from repro.core.agfw import AgfwAck, AgfwData, AgfwRouter, AntHello
from repro.core.als import AlsAgent, AlsConfig, AlsReply, AlsRequest, AlsUpdate, make_index
from repro.core.ant import AnonymousNeighborTable, AntEntry
from repro.core.config import AantConfig, AgfwConfig
from repro.core.freshness import STRATEGIES, best_position, freshest_progress
from repro.core.pseudonym import (
    LAST_ATTEMPT,
    PSEUDONYM_BYTES,
    PseudonymManager,
    derive_pseudonym,
)
from repro.core.trapdoor import Trapdoor, TrapdoorContents, TrapdoorFactory

__all__ = [
    "AantAttachment",
    "AantAuthenticator",
    "hello_signing_bytes",
    "AckManager",
    "PendingSend",
    "AgfwAck",
    "AgfwData",
    "AgfwRouter",
    "AntHello",
    "AlsAgent",
    "AlsConfig",
    "AlsReply",
    "AlsRequest",
    "AlsUpdate",
    "make_index",
    "AnonymousNeighborTable",
    "AntEntry",
    "AantConfig",
    "AgfwConfig",
    "STRATEGIES",
    "best_position",
    "freshest_progress",
    "LAST_ATTEMPT",
    "PSEUDONYM_BYTES",
    "PseudonymManager",
    "derive_pseudonym",
    "Trapdoor",
    "TrapdoorContents",
    "TrapdoorFactory",
]
