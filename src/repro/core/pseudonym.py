"""Pseudonym generation and ownership (paper Section 3.1.1).

Every hello message carries a *fresh* pseudonym ``n = hash(pr, id)``
where ``pr`` is a locally generated pseudorandom value.  Pseudonyms are
6 bytes — "equal to that of a typical MAC address" — so they add no
packet-size overhead relative to plain 802.11 addressing.

A sender must keep honouring packets addressed to recently used
pseudonyms ("it does not need to memorize too many but two latest
ones"), because a relay may hold an older ANT entry.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from repro.crypto.hashing import hmac_sha256
from repro.net.addresses import LAST_ATTEMPT, PSEUDONYM_BYTES

__all__ = [
    "PSEUDONYM_BYTES",
    "LAST_ATTEMPT",
    "PseudonymManager",
    "derive_pseudonym",
]


def derive_pseudonym(pr: bytes, identity: str) -> bytes:
    """``n = hash(pr, id)`` truncated to 6 bytes.

    Any collision-resistant hash works; HMAC-SHA256 keyed by ``pr`` keeps
    pseudonyms unlinkable without knowledge of ``pr``.  The all-zero
    pseudonym is reserved, so a (astronomically unlikely) zero output is
    remapped.
    """
    digest = hmac_sha256(pr, identity.encode("utf-8"))[:PSEUDONYM_BYTES]
    if digest == LAST_ATTEMPT:  # pragma: no cover - 2**-48 event
        digest = b"\x00" * (PSEUDONYM_BYTES - 1) + b"\x01"
    return digest


class PseudonymManager:
    """Generates fresh pseudonyms and answers ownership queries."""

    def __init__(self, identity: str, rng: random.Random, memory: int = 2) -> None:
        if memory < 1:
            raise ValueError("memory must be >= 1")
        self.identity = identity
        self._rng = rng
        self._recent: Deque[bytes] = deque(maxlen=memory)

    def new_pseudonym(self) -> bytes:
        """Mint the pseudonym for the next hello; older ones age out."""
        pr = self._rng.getrandbits(128).to_bytes(16, "big")
        pseudonym = derive_pseudonym(pr, self.identity)
        self._recent.append(pseudonym)
        return pseudonym

    def owns(self, pseudonym: bytes) -> bool:
        """True when ``pseudonym`` is one of our recent ones.

        The reserved last-attempt pseudonym is *never* owned: it addresses
        everyone (handled separately by the forwarding logic).
        """
        if pseudonym == LAST_ATTEMPT:
            return False
        return pseudonym in self._recent

    @property
    def current(self) -> Optional[bytes]:
        """The most recently minted pseudonym (None before the first hello)."""
        return self._recent[-1] if self._recent else None

    @property
    def recent(self) -> tuple[bytes, ...]:
        """The remembered pseudonyms, oldest first."""
        return tuple(self._recent)
