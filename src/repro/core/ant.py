"""The Anonymous Neighbor Table (paper Section 3.1).

Entries are keyed by **pseudonym**, not identity: a receiver of two
hello messages from the same physical neighbor *cannot correlate them*
(a feature — that is the anonymity), so one neighbor legitimately
occupies multiple entries, each a ``<n, loc, ts, timeout>`` tuple.

The multiple-entry effect is what motivates the paper's freshness-aware
forwarding (Section 3.1.1): "the previous hop selects n1 just because n1
is in best position, but it didn't notice that n2, indicating a fresher
position of the same neighbor, is in a better position."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.geo.vec import Position

__all__ = ["AntEntry", "AnonymousNeighborTable"]


@dataclass
class AntEntry:
    """One ``<n, loc, ts, t_o>`` row of the ANT."""

    pseudonym: bytes
    position: Position
    timestamp: float
    velocity: Tuple[float, float] = (0.0, 0.0)

    def age(self, now: float) -> float:
        return now - self.timestamp

    def predicted_position(self, now: float) -> Position:
        """Dead-reckoned position when velocity was advertised.

        The paper: "forwarding could be better if the node movement is
        predictable, for example, velocity and direction are available
        with position."
        """
        dt = now - self.timestamp
        vx, vy = self.velocity
        return self.position.translated(vx * dt, vy * dt)


class AnonymousNeighborTable:
    """Pseudonym-keyed neighbor table with per-entry expiry."""

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self._entries: Dict[bytes, AntEntry] = {}

    # --------------------------------------------------------------- updates
    def update(
        self,
        pseudonym: bytes,
        position: Position,
        now: float,
        velocity: Tuple[float, float] = (0.0, 0.0),
    ) -> None:
        """Insert a hello observation.  A repeated pseudonym refreshes in
        place (the sender re-announced before rotating); a new pseudonym
        creates a fresh row even if it belongs to a known neighbor —
        by design, the receiver cannot tell."""
        self._entries[pseudonym] = AntEntry(pseudonym, position, now, velocity)

    def remove(self, pseudonym: bytes) -> None:
        """Evict a pseudonym (e.g. after repeated NL-ACK failures)."""
        self._entries.pop(pseudonym, None)

    def purge(self, now: float) -> int:
        """Drop expired rows; returns the count removed."""
        dead = [n for n, e in self._entries.items() if e.age(now) > self.timeout]
        for pseudonym in dead:
            del self._entries[pseudonym]
        return len(dead)

    def clear(self) -> None:
        """Drop every entry (node crash: the ANT is volatile state)."""
        self._entries.clear()

    # --------------------------------------------------------------- queries
    def get(self, pseudonym: bytes) -> Optional[AntEntry]:
        return self._entries.get(pseudonym)

    def entries(self, now: Optional[float] = None) -> List[AntEntry]:
        if now is None:
            return list(self._entries.values())
        return [e for e in self._entries.values() if e.age(now) <= self.timeout]

    def candidates_towards(
        self, target: Position, own_position: Position, now: float
    ) -> List[AntEntry]:
        """Live entries whose position is strictly closer to ``target``
        than we are — the greedy candidate set a strategy chooses from."""
        own_d2 = own_position.distance2_to(target)
        return [
            e
            for e in self.entries(now)
            if e.position.distance2_to(target) < own_d2
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pseudonym: bytes) -> bool:
        return pseudonym in self._entries
