"""Trapdoor construction and opening (paper Section 3.2).

The AGFW data header replaces the destination identity with a
*trapdoor*: ``trapdoor = KU_d(src, loc_s, tag_d)`` — data encrypted
under the destination's public key whose successful decryption tells a
node "you are the destination" (the tag) and hands it the source's
identity and location for replying.

Two backends, selected by ``AgfwConfig.crypto_mode``:

* ``real`` — actual RSA encryption from :mod:`repro.crypto.rsa`; opening
  genuinely attempts decryption and checks the tag.
* ``modeled`` — no math; the trapdoor records the intended recipient in
  a sealed, sim-only field and charges the paper's calibrated delays
  (0.5 ms seal, 8.5 ms open attempt).  Wire size is the paper's 64-byte
  bound either way.

Both backends expose identical semantics so protocol code is oblivious.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.cache import TRAPDOOR_OPEN, memo, validate_cache_mode
from repro.crypto.hashing import sha256 as _sha256
from repro.crypto.rsa import DecryptionError, RsaPrivateKey, RsaPublicKey
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel
from repro.geo.vec import Position

__all__ = ["TrapdoorContents", "Trapdoor", "TrapdoorFactory"]

_TAG = b"DST!"  # the paper's tag_d: "Hey! You are the destination!"


@dataclass(frozen=True)
class TrapdoorContents:
    """What the destination learns by opening: the source and its location."""

    src_identity: str
    src_location: Position
    timestamp: float


@dataclass
class Trapdoor:
    """The opaque value riding in every AGFW data header.

    ``ciphertext`` is the real RSA block(s) in ``real`` mode, None in
    ``modeled`` mode.  ``_sealed_for`` / ``_contents`` are sim-only
    bookkeeping for the modeled backend — they are NOT part of the wire
    image and the adversary modules never read them (see
    :meth:`wire_view`).
    """

    size_bytes: int
    ciphertext: Optional[bytes] = None
    _sealed_for: Optional[str] = field(default=None, repr=False)
    _contents: Optional[TrapdoorContents] = field(default=None, repr=False)
    _ref: Optional[bytes] = field(default=None, repr=False)

    def wire_view(self) -> dict:
        """The sniffer's view: an opaque blob of a known size."""
        return {"opaque_bytes": self.size_bytes}

    def ref_bytes(self) -> bytes:
        """A short reference 'uniquely determining the packet' for NL-ACKs.

        Factory-sealed trapdoors carry a precomputed ``_ref``: a hash of
        the sealed tuple plus a per-factory sequence number, so refs are
        globally unique (only the originator seals, and ``(originator,
        seq)`` never repeats) and — critically — **deterministic**.

        The previous implementation used ``id(self)`` in modeled mode.
        Memory addresses are recycled: once a delivered packet's trapdoor
        was garbage-collected, a *new* trapdoor could be allocated at the
        same address while some node still held a pending ACK watch on
        the old ref — a cross-packet ACK collision whose occurrence
        depended on allocator state (and therefore on ``PYTHONHASHSEED``
        and process history, not on the simulation seed).  Loss-heavy
        runs, which churn trapdoors through retransmissions and
        give-ups, made runs visibly hash-seed dependent.

        Hand-built trapdoors (unit tests; every factory product carries
        ``_ref``) fall back to a hash of the stable sealed fields.  The
        historical ``id(self)`` fallback was the same bug in miniature —
        an interpreter heap address leaking into wire-visible ACK refs —
        and is exactly what DET-010 now rejects tree-wide.
        """
        if self._ref is not None:
            return self._ref
        if self.ciphertext is not None:
            return _sha256(self.ciphertext)[:8]
        payload = repr((self.size_bytes, self._sealed_for, self._contents))
        return _sha256(payload.encode("utf-8"))[:8]


class TrapdoorFactory:
    """Seals and opens trapdoors under the configured backend."""

    def __init__(
        self,
        mode: str = "modeled",
        cost_model: CryptoCostModel = DEFAULT_COST_MODEL,
        rng: Optional[random.Random] = None,
        cache_mode: str = "on",
    ) -> None:
        if mode not in ("modeled", "real"):
            raise ValueError(f"unknown trapdoor mode {mode!r}")
        self.mode = mode
        self.cost = cost_model
        #: Crypto fast path switch ("on" | "off" | "cross").  Opening a
        #: trapdoor is a pure function of (private key, ciphertext), so
        #: memoized opens — including *negative* ones, the common case
        #: for every non-destination node in the last-hop region — are
        #: outcome-identical; the pk_decrypt delay is charged either way.
        self.cache_mode = validate_cache_mode(cache_mode)
        #: Only ``real`` mode draws randomness (PKCS#1 padding); the rng
        #: stays optional so modeled factories need no stream, but real
        #: sealing without one is rejected at use (see :meth:`seal`).
        self.rng = rng
        #: Per-factory seal counter feeding :meth:`Trapdoor.ref_bytes`:
        #: factories are per-originator, so ``(src_identity, seq)`` is
        #: globally unique and refs never collide — deterministically,
        #: unlike the recycled memory addresses they replace.
        self._seal_seq = 0

    # ------------------------------------------------------------------ seal
    def seal(
        self,
        dest_identity: str,
        dest_public_key: Optional[RsaPublicKey],
        contents: TrapdoorContents,
    ) -> tuple[Trapdoor, float]:
        """Create a trapdoor for ``dest_identity``.

        Returns ``(trapdoor, processing_delay_seconds)``.  ``real`` mode
        requires the destination's public key (the paper assumes the
        source holds the destination's certificate beforehand).
        """
        if self.mode == "real":
            if dest_public_key is None:
                raise ValueError("real trapdoors need the destination public key")
            if self.rng is None:
                raise ValueError(
                    "real-mode TrapdoorFactory requires an explicit rng "
                    "(e.g. node.rng('trapdoor')) for reproducible padding"
                )
            plaintext = self._pack(contents)
            ciphertext = dest_public_key.encrypt(plaintext, rng=self.rng)
            trapdoor = Trapdoor(
                size_bytes=len(ciphertext),
                ciphertext=ciphertext,
                _ref=_sha256(ciphertext)[:8],
            )
        else:
            self._seal_seq += 1
            token = (
                f"{contents.src_identity}|{dest_identity}|{self._seal_seq}".encode()
                + struct.pack(
                    "<ddd",
                    contents.src_location.x,
                    contents.src_location.y,
                    contents.timestamp,
                )
            )
            trapdoor = Trapdoor(
                size_bytes=self.cost.trapdoor_bytes,
                _sealed_for=dest_identity,
                _contents=contents,
                _ref=_sha256(token)[:8],
            )
        return trapdoor, self.cost.pk_encrypt_s

    # ------------------------------------------------------------------ open
    def try_open(
        self,
        trapdoor: Trapdoor,
        own_identity: str,
        private_key: Optional[RsaPrivateKey],
    ) -> tuple[Optional[TrapdoorContents], float]:
        """Attempt to open; returns ``(contents_or_None, delay_seconds)``.

        The delay is charged whether or not opening succeeds — a node
        cannot know it is not the destination without paying the
        private-key operation (this asymmetry is why AGFW restricts
        opening to the last-hop region).
        """
        delay = self.cost.pk_decrypt_s
        if self.mode == "real":
            if private_key is None or trapdoor.ciphertext is None:
                return None, delay
            ciphertext = trapdoor.ciphertext
            key = (private_key.public_fingerprint, _sha256(ciphertext))
            contents = memo(TRAPDOOR_OPEN).get_or_compute(
                key,
                lambda: self._open_real(ciphertext, private_key),
                self.cache_mode,
            )
            return contents, delay
        if trapdoor._sealed_for == own_identity:
            return trapdoor._contents, delay
        return None, delay

    @classmethod
    def _open_real(
        cls, ciphertext: bytes, private_key: RsaPrivateKey
    ) -> Optional[TrapdoorContents]:
        """The uncached open attempt: decrypt, check the tag, unpack.

        Pure in ``(private_key, ciphertext)`` — exactly what the memo key
        covers — and returns ``None`` both for "not for us" and for
        malformed plaintexts, so negative results memoize too.
        """
        try:
            plaintext = private_key.decrypt(ciphertext)
        except DecryptionError:
            return None
        return cls._unpack(plaintext)

    # ------------------------------------------------------------- packing
    @staticmethod
    def _pack(contents: TrapdoorContents) -> bytes:
        identity = contents.src_identity.encode("utf-8")
        if len(identity) > 24:
            raise ValueError("source identity too long for a 512-bit trapdoor")
        return (
            _TAG
            + struct.pack(
                "!ffdB",
                contents.src_location.x,
                contents.src_location.y,
                contents.timestamp,
                len(identity),
            )
            + identity
        )

    @staticmethod
    def _unpack(plaintext: bytes) -> Optional[TrapdoorContents]:
        if not plaintext.startswith(_TAG):
            return None
        try:
            x, y, ts, id_len = struct.unpack_from("!ffdB", plaintext, len(_TAG))
            offset = len(_TAG) + struct.calcsize("!ffdB")
            identity = plaintext[offset : offset + id_len].decode("utf-8")
        except (struct.error, UnicodeDecodeError):
            return None
        return TrapdoorContents(identity, Position(x, y), ts)
