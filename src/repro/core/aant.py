"""Authenticated ANT via ring signatures (paper Section 3.1.2).

A hello message is ring-signed over the sender's certificate plus ``k``
randomly chosen decoys, so a verifier learns "an authorized user sent
this" — banning the spoofing attacker who "could forge a lot of hello
messages with arbitrary pseudonyms" — while the sender stays
indistinguishable within a set of k+1 legitimate users.

Backends match the trapdoor factory: ``real`` runs RST ring signatures
over the node's :class:`~repro.crypto.certificates.KeyStore`; ``modeled``
carries a validity flag plus calibrated sizes/delays (the flag is what a
forger cannot produce).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.cache import RING_VERIFY, memo, validate_cache_mode
from repro.crypto.certificates import Certificate, CertificateAuthority, KeyStore
from repro.crypto.hashing import sha256
from repro.crypto.ring_signature import RingSignature, ring_sign, ring_verify
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel
from repro.core.config import AantConfig
from repro.geo.vec import Position

__all__ = [
    "AantAttachment",
    "AantAuthenticator",
    "hello_signing_bytes",
    "CertRequest",
    "CertReply",
]


# Certificate-fetch sub-protocol (paper Sec 4): "a sender may only specify
# identities or serial numbers of those certificates, and allow explicit
# request for required certificates in case the verifier does not have
# them.  The number of explicit requests are expected to decline
# significantly after the network boots up."
from dataclasses import field as _dc_field

from repro.net.packet import Packet as _Packet


@dataclass
class CertRequest(_Packet):
    """A one-hop broadcast asking neighbors for missing certificates."""

    KIND = "aant.cert_request"

    subjects: Tuple[str, ...] = ()

    def header_bytes(self) -> int:
        return 20 + 1 + sum(len(s.encode("utf-8")) + 1 for s in self.subjects)

    def wire_view(self) -> dict:
        # Certificate subjects are public directory data; requesting them
        # reveals interest, not presence — same exposure as the ring list.
        return {"subjects": list(self.subjects)}


@dataclass
class CertReply(_Packet):
    """A one-hop broadcast carrying the requested certificates."""

    KIND = "aant.cert_reply"

    certificates: Tuple[Certificate, ...] = ()

    def header_bytes(self) -> int:
        return 20 + 1 + sum(c.byte_size() for c in self.certificates)

    def wire_view(self) -> dict:
        return {"subjects": [c.subject for c in self.certificates]}


def hello_signing_bytes(pseudonym: bytes, position: Position, timestamp: float) -> bytes:
    """Canonical byte image of a hello's signed fields.

    Position is quantized to centimetres so float representation cannot
    desynchronize signer and verifier.
    """
    return pseudonym + struct.pack(
        "!qqd", round(position.x * 100), round(position.y * 100), timestamp
    )


@dataclass
class AantAttachment:
    """What an authenticated hello carries besides the plain fields."""

    ring_size: int  # total members (k decoys + signer)
    extra_bytes: int  # wire overhead vs an unauthenticated hello
    signature: Optional[RingSignature] = None  # real mode
    ring_subjects: Tuple[str, ...] = ()  # certificate subjects, in ring order
    modeled_valid: bool = True  # modeled mode: forgeries carry False

    def wire_view(self) -> dict:
        """Sniffer view: the ring membership is public (it must be, for
        verification) — that is exactly why anonymity is k+1, not perfect."""
        return {
            "ring_size": self.ring_size,
            "ring_subjects": list(self.ring_subjects),
        }


class AantAuthenticator:
    """Signs and verifies hello messages for one node."""

    def __init__(
        self,
        config: AantConfig,
        mode: str = "modeled",
        cost_model: CryptoCostModel = DEFAULT_COST_MODEL,
        keystore: Optional[KeyStore] = None,
        ca: Optional[CertificateAuthority] = None,
        rng: Optional[random.Random] = None,
        cache_mode: str = "on",
    ) -> None:
        if mode not in ("modeled", "real"):
            raise ValueError(f"unknown AANT mode {mode!r}")
        if mode == "real" and (keystore is None or ca is None):
            raise ValueError("real AANT needs a keystore and the CA")
        self.config = config
        self.mode = mode
        self.cost = cost_model
        self.keystore = keystore
        self.ca = ca
        #: Crypto fast path switch ("on" | "off" | "cross"); hits and
        #: misses charge identical CryptoCostModel delays, so the mode
        #: never changes simulated outcomes (see repro.crypto.cache).
        self.cache_mode = validate_cache_mode(cache_mode)
        #: Only real-mode *signing* draws randomness (decoy picking, ring
        #: glue); verification is deterministic, so the rng stays optional
        #: and :meth:`sign_hello` rejects a missing one at use.
        self.rng = rng

    # ------------------------------------------------------------------ sign
    def sign_hello(
        self, pseudonym: bytes, position: Position, timestamp: float
    ) -> tuple[AantAttachment, float]:
        """Produce the attachment for an outgoing hello.

        Returns ``(attachment, processing_delay_seconds)``.
        """
        k = self.config.ring_size
        extra = self.cost.aant_hello_extra_bytes(k + 1, self.config.attach_certificates)
        delay = self.cost.ring_sign_cost(k + 1)
        if self.mode == "modeled":
            return AantAttachment(ring_size=k + 1, extra_bytes=extra), delay

        assert self.keystore is not None
        if self.rng is None:
            raise ValueError(
                "real AANT signing requires an explicit rng (e.g. "
                "node.rng('aant')) so ring selection is reproducible "
                "from the master seed"
            )
        ring_certs = self.keystore.pick_ring(k, self.rng)
        signer_index = self.keystore.ring_index_of_self(ring_certs)
        message = hello_signing_bytes(pseudonym, position, timestamp)
        signature = ring_sign(
            message,
            [c.public_key for c in ring_certs],
            signer_index,
            self.keystore.private_key,
            rng=self.rng,
        )
        return (
            AantAttachment(
                ring_size=k + 1,
                extra_bytes=extra,
                signature=signature,
                ring_subjects=tuple(c.subject for c in ring_certs),
            ),
            delay,
        )

    # ---------------------------------------------------------------- verify
    def verify_hello(
        self,
        attachment: Optional[AantAttachment],
        pseudonym: bytes,
        position: Position,
        timestamp: float,
        cert_lookup: Optional[Sequence[Certificate]] = None,
    ) -> tuple[bool, float]:
        """Check an incoming hello's attachment.

        ``cert_lookup`` (real mode) supplies the ring certificates in
        order; when omitted, the verifier resolves subjects through its
        own keystore cache (paper: serials suffice once caches are warm).
        Returns ``(valid, processing_delay_seconds)``.

        Delay accounting: the full ``ring_verify_cost`` is charged only
        once every ring member's certificate is resolvable — a verifier
        that bails out before touching any modular arithmetic (missing
        attachment/signature, unknown decoy, truncated ring) has done no
        cryptographic work and charges nothing.  The earlier behaviour
        (charging up front, then returning early) overstated the CPU
        price of cold-cache hellos.
        """
        if attachment is None:
            return False, 0.0
        if self.mode == "modeled":
            return attachment.modeled_valid, self.cost.ring_verify_cost(
                max(attachment.ring_size, 1)
            )

        assert self.keystore is not None and self.ca is not None
        if attachment.signature is None:
            return False, 0.0
        certs: List[Certificate] = []
        if cert_lookup is not None:
            certs = list(cert_lookup)
        else:
            for subject in attachment.ring_subjects:
                cached = self.keystore.get(subject)
                if cached is None:
                    return False, 0.0  # unknown decoy: request-and-retry omitted
                certs.append(cached)
        if len(certs) != attachment.ring_size:
            return False, 0.0
        # All members resolvable: the cryptographic work happens (or is
        # memoized — either way the same virtual time is charged).
        delay = self.cost.ring_verify_cost(max(attachment.ring_size, 1))
        if not all(self.ca.verify(cert) for cert in certs):
            return False, delay
        message = hello_signing_bytes(pseudonym, position, timestamp)
        valid = self._ring_verify_cached(
            message, [c.public_key for c in certs], attachment.signature
        )
        return valid, delay

    def _ring_verify_cached(
        self, message: bytes, keys: List, signature: RingSignature
    ) -> bool:
        """RST ring verification through the deterministic memo cache.

        The key covers every input ``ring_verify`` reads: the message
        digest, the ring's public-key fingerprints *in order* (order is
        significant for RST), and the signature bytes.
        """
        key = (
            sha256(message),
            tuple(k.fingerprint() for k in keys),
            sha256(signature.to_bytes()),
        )
        return memo(RING_VERIFY).get_or_compute(
            key,
            lambda: ring_verify(message, keys, signature),
            self.cache_mode,
        )

    # ---------------------------------------------------------- cert fetch
    def missing_subjects(self, attachment: Optional[AantAttachment]) -> Tuple[str, ...]:
        """Ring subjects whose certificates we lack (real mode only).

        A non-empty result means verification cannot proceed yet; the
        router should fetch them via :class:`CertRequest` and retry.
        """
        if self.mode != "real" or attachment is None or self.keystore is None:
            return ()
        return tuple(
            subject
            for subject in attachment.ring_subjects
            if subject not in self.keystore
        )

    def certificates_for(self, subjects: Sequence[str]) -> List[Certificate]:
        """Certificates from our cache matching ``subjects`` (reply side)."""
        if self.keystore is None:
            return []
        found = []
        for subject in subjects:
            cert = self.keystore.get(subject)
            if cert is not None:
                found.append(cert)
        return found

    def accept_certificates(self, certificates: Sequence[Certificate]) -> int:
        """Validate against the CA and cache; returns how many were added."""
        if self.keystore is None or self.ca is None:
            return 0
        added = 0
        for cert in certificates:
            if cert.subject in self.keystore:
                continue
            if self.ca.verify(cert):
                self.keystore.add(cert)
                added += 1
        return added

    # ------------------------------------------------------------- anonymity
    def anonymity_set_size(self) -> int:
        """The (k+1)-anonymity guarantee of this configuration."""
        return self.config.ring_size + 1
