"""Configuration for the anonymous geographic routing scheme.

One dataclass per concern so experiments can ablate independently:
``AgfwConfig`` extends the shared routing parameters with the paper's
protocol knobs (network-layer ACK on/off — the Figure 1(a) ablation —
retransmission policy, next-hop strategy) and selects the crypto
*backend*: ``"modeled"`` charges the paper's calibrated delays/sizes
without running math; ``"real"`` runs the actual RSA/ring-signature
implementations from :mod:`repro.crypto`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.cache import validate_cache_mode
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel
from repro.routing.base import RoutingConfig

__all__ = ["AantConfig", "AgfwConfig", "CryptoMode"]

CryptoMode = str  # "modeled" | "real"


@dataclass
class AantConfig:
    """Authenticated-ANT (ring signature) settings — paper Section 3.1.2."""

    ring_size: int = 4
    """Number of decoy signers k; anonymity set is k+1."""

    attach_certificates: bool = True
    """Attach full certificates (bootstrap) vs serial numbers only (warm cache)."""

    drop_unverified: bool = True
    """Reject hellos whose ring signature fails to verify (spoofing defense)."""


@dataclass
class AgfwConfig(RoutingConfig):
    """All knobs of the anonymous routing scheme."""

    neighbor_timeout_factor: float = 2.0
    """ANT entries expire after ~2 beacon intervals — this must stay in
    step with ``pseudonym_memory``: the paper keys the two-pseudonym
    memory to "the continuous timeout of table entries", i.e. no live ANT
    entry should reference a pseudonym its owner has already forgotten."""

    enable_ack: bool = True
    """Network-layer ACK + retransmissions (AGFW vs AGFW-noACK in Fig 1a)."""

    ack_timeout: float = 0.030
    """Seconds a forwarder waits for the NL-ACK before retransmitting.

    Must exceed the committed forwarder's worst-case trapdoor-opening
    delay (8.5 ms) plus queueing."""

    max_retransmissions: int = 3
    """Retransmissions per hop before giving up on the committed forwarder."""

    piggyback_acks: bool = False
    """Let ACK references ride on outgoing data packets when one is queued."""

    pseudonym_memory: int = 2
    """How many of its own latest pseudonyms a node honours (paper: two)."""

    next_hop_strategy: str = "freshest_progress"
    """ANT candidate selection: 'best_position' | 'freshest_progress'
    (Sec 3.1.1: 'preferable to choose a fresher position rather than the
    best one')."""

    enable_perimeter: bool = False
    """Perimeter-mode recovery at greedy dead ends — the paper's stated
    future work ("recovery strategies like perimeter forwarding could be
    applied ... it should not be difficult to extend the scheme").
    Face routing runs on the Gabriel-planarized ANT, addressing next hops
    by pseudonym exactly like greedy mode, so anonymity is preserved."""

    crypto_mode: CryptoMode = "modeled"
    """'modeled' = charge calibrated costs; 'real' = run actual crypto."""

    crypto_cache_mode: str = "on"
    """Crypto fast path (real mode): 'on' memoizes deterministic
    verify/open results, 'off' always recomputes, 'cross' runs both and
    asserts identical results per call (see repro.crypto.cache).
    Outcome-invariant by construction: hits charge the same cost-model
    delays as misses."""

    cost_model: CryptoCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    aant: Optional[AantConfig] = None
    """None = first-attempt ANT (unauthenticated); set to enable ring
    signatures.  The paper's Figure 1 runs 'the first version of ANT'."""

    def __post_init__(self) -> None:
        if self.crypto_mode not in ("modeled", "real"):
            raise ValueError(f"unknown crypto_mode {self.crypto_mode!r}")
        validate_cache_mode(self.crypto_cache_mode)
        if self.pseudonym_memory < 1:
            raise ValueError("pseudonym_memory must be >= 1")
        if self.max_retransmissions < 0:
            raise ValueError("max_retransmissions must be >= 0")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
