"""Network-layer acknowledgments for AGFW (paper Sections 3.2 & 5).

AGFW sends everything as MAC broadcasts, which 802.11 delivers without
RTS/CTS or link-layer ACKs — so reliability moves up a layer: "once the
current forwarding node receives the data, it initiates an
acknowledgment for the packet.  The ACK packet is also locally
broadcasted for anonymity ... it can be piggybacked on a data packet to
be sent, and it does not necessarily acknowledge only one received
packet at a time."

:class:`AckManager` implements both directions for one node:

* **sender side** — every forwarded data packet is *watched*; if no ACK
  carrying its reference arrives within ``ack_timeout`` the packet is
  retransmitted, up to ``max_retransmissions`` times, then handed to the
  give-up callback (which may re-route through a different neighbor).
* **receiver side** — references to be acknowledged are buffered briefly
  so several can share one ACK packet, and (optionally) ride piggyback
  on the next outgoing data packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import AgfwConfig
from repro.sim.engine import Event, Simulator

__all__ = ["AckManager", "PendingSend"]

RetransmitFn = Callable[[object], None]
GiveUpFn = Callable[[object, bytes], None]
SendAckFn = Callable[[Tuple[bytes, ...]], None]

_ACK_BATCH_DELAY = 0.002  # seconds refs wait for batching / piggyback chances


@dataclass
class PendingSend:
    """A forwarded packet awaiting its network-layer ACK."""

    packet: object
    ref: bytes
    attempts: int = 0
    timer: Optional[Event] = None


class AckManager:
    """Reliability bookkeeping for one AGFW router."""

    def __init__(
        self,
        sim: Simulator,
        config: AgfwConfig,
        retransmit: RetransmitFn,
        give_up: GiveUpFn,
        send_ack: SendAckFn,
    ) -> None:
        self.sim = sim
        self.config = config
        self._retransmit = retransmit
        self._give_up = give_up
        self._send_ack = send_ack
        self._pending: Dict[bytes, PendingSend] = {}
        self._ack_buffer: List[bytes] = []
        #: Mirror of ``_ack_buffer`` for O(1) membership — the dedupe set
        #: for the current flush window (see :meth:`queue_ack`).
        self._buffered_refs: set[bytes] = set()
        #: Single source of truth for the flush state machine: ``not None``
        #: iff a live flush timer is armed.  Both drain paths go through
        #: :meth:`_disarm_flush`, so the stale-``cancelled``-handle check
        #: that used to guard re-arming is gone.
        self._flush_timer: Optional[Event] = None
        self.retransmissions = 0
        self.give_ups = 0
        self.acks_matched = 0
        self.acks_piggybacked = 0
        self.acks_deduped = 0

    # ============================================================ sender side
    def watch(self, packet: object, ref: bytes) -> None:
        """Start (or restart, on re-forward) the retransmission clock.

        Every ``watch`` is a *fresh forwarding decision* — after a
        give-up→re-route the packet goes to a different neighbor, so the
        attempt counter resets and the first transmission to the new
        forwarder waits the base ``ack_timeout``, not the exponentially
        backed-off timeout the previous (evicted) neighbor earned.
        """
        existing = self._pending.get(ref)
        if existing is not None and existing.timer is not None:
            existing.timer.cancel()
        pending = existing or PendingSend(packet=packet, ref=ref)
        pending.packet = packet
        pending.attempts = 0
        pending.timer = self.sim.schedule(
            self._timeout_for(pending), lambda: self._on_timeout(ref), name="agfw.ack_to"
        )
        self._pending[ref] = pending

    def _timeout_for(self, pending: PendingSend) -> float:
        """Exponential backoff: under congestion the queueing delay easily
        exceeds the base timeout, and retransmitting into the backlog only
        deepens it (a classic retransmission-storm collapse)."""
        return self.config.ack_timeout * (2 ** pending.attempts)

    def _on_timeout(self, ref: bytes) -> None:
        pending = self._pending.get(ref)
        if pending is None:
            return
        pending.attempts += 1
        if pending.attempts > self.config.max_retransmissions:
            del self._pending[ref]
            self.give_ups += 1
            self._give_up(pending.packet, ref)
            return
        self.retransmissions += 1
        self._retransmit(pending.packet)
        pending.timer = self.sim.schedule(
            self._timeout_for(pending), lambda: self._on_timeout(ref), name="agfw.ack_to"
        )

    def on_ack_refs(self, refs: Tuple[bytes, ...]) -> int:
        """Process references from a received ACK (or piggybacked on data)."""
        matched = 0
        for ref in refs:
            pending = self._pending.pop(ref, None)
            if pending is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                matched += 1
        self.acks_matched += matched
        return matched

    def drop_pending(self, ref: bytes) -> None:
        """Forget a watched packet without retransmitting (e.g. shutdown)."""
        pending = self._pending.pop(ref, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def reset(self) -> None:
        """Forget everything (node crash: the manager is volatile state).

        Cancels every retransmission timer and the flush timer, and
        empties the pending map and the ACK buffer.  Cumulative counters
        survive — they are observability, not protocol state.
        """
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()
        self._ack_buffer.clear()
        self._buffered_refs.clear()
        self._disarm_flush()

    # ========================================================== receiver side
    def queue_ack(self, ref: bytes) -> None:
        """Buffer a reference; it will be flushed (or piggybacked) shortly.

        References are **deduplicated per flush window**: a retransmitted
        data packet re-requests the same ref, and before the dedupe an
        ACK frame could carry the ref several times — inflating the ACK
        frame on the air and the ``acks_piggybacked`` / ``acks_matched``
        accounting at both ends.  A ref queues again as soon as the
        buffer drains (flush or piggyback), so a *lost* ACK still gets a
        fresh copy on the next retransmission.
        """
        if ref in self._buffered_refs:
            self.acks_deduped += 1
            return
        self._ack_buffer.append(ref)
        self._buffered_refs.add(ref)
        if self._flush_timer is None:
            self._flush_timer = self.sim.schedule(
                _ACK_BATCH_DELAY, self._flush, name="agfw.ack_flush"
            )

    def take_piggyback_refs(self) -> Tuple[bytes, ...]:
        """Drain buffered refs onto an outgoing data packet (piggyback mode)."""
        if not self.config.piggyback_acks or not self._ack_buffer:
            return ()
        refs = self._drain_buffer()
        self.acks_piggybacked += len(refs)
        return refs

    def _drain_buffer(self) -> Tuple[bytes, ...]:
        """Empty the buffer + dedupe set and disarm the flush timer.

        The single drain primitive both exits (flush and piggyback) go
        through, so the invariant *flush timer armed iff a drain is
        scheduled for a non-empty buffer* holds everywhere.
        """
        refs = tuple(self._ack_buffer)
        self._ack_buffer.clear()
        self._buffered_refs.clear()
        self._disarm_flush()
        return refs

    def _disarm_flush(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None

    def _flush(self) -> None:
        # The engine marks a consumed event cancelled before the callback
        # runs, so cancel() inside _disarm_flush is a no-op here — but the
        # state machine no longer *relies* on that: _flush_timer is nulled
        # through the same primitive as every other transition.
        refs = self._drain_buffer()
        if refs:
            self._send_ack(refs)
