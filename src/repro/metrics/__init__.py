"""Metrics: online collectors, summary statistics, crypto-cache,
substrate (scheduler/tracer), and fault-injection counters."""

from repro.metrics.collectors import DeliveryCollector, OverheadCollector
from repro.metrics.crypto import (
    crypto_cache_counters,
    crypto_cache_hit_rates,
    format_crypto_cache_report,
)
from repro.metrics.engine import (
    format_engine_report,
    scheduler_counters,
    tracer_counters,
)
from repro.metrics.faults import FaultMetrics, format_faults_report
from repro.metrics.stats import Summary, mean_confidence_interval, percentile, summarize

__all__ = [
    "DeliveryCollector",
    "OverheadCollector",
    "Summary",
    "FaultMetrics",
    "format_faults_report",
    "crypto_cache_counters",
    "crypto_cache_hit_rates",
    "format_crypto_cache_report",
    "format_engine_report",
    "scheduler_counters",
    "tracer_counters",
    "mean_confidence_interval",
    "percentile",
    "summarize",
]
