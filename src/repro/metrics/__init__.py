"""Metrics: online collectors, summary statistics, crypto-cache and
substrate (scheduler/tracer) counters."""

from repro.metrics.collectors import DeliveryCollector, OverheadCollector
from repro.metrics.crypto import (
    crypto_cache_counters,
    crypto_cache_hit_rates,
    format_crypto_cache_report,
)
from repro.metrics.engine import (
    format_engine_report,
    scheduler_counters,
    tracer_counters,
)
from repro.metrics.stats import Summary, mean_confidence_interval, percentile, summarize

__all__ = [
    "DeliveryCollector",
    "OverheadCollector",
    "Summary",
    "crypto_cache_counters",
    "crypto_cache_hit_rates",
    "format_crypto_cache_report",
    "format_engine_report",
    "scheduler_counters",
    "tracer_counters",
    "mean_confidence_interval",
    "percentile",
    "summarize",
]
