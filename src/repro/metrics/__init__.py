"""Metrics: online collectors and summary statistics."""

from repro.metrics.collectors import DeliveryCollector, OverheadCollector
from repro.metrics.stats import Summary, mean_confidence_interval, percentile, summarize

__all__ = [
    "DeliveryCollector",
    "OverheadCollector",
    "Summary",
    "mean_confidence_interval",
    "percentile",
    "summarize",
]
