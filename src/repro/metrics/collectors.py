"""Online metric collectors.

Collectors subscribe to the :class:`~repro.sim.trace.Tracer` and
accumulate incrementally, so long runs can disable trace retention
(``Tracer(keep=False)``) and still produce full metrics.

* :class:`DeliveryCollector` — the paper's two metrics: packet delivery
  fraction and end-to-end latency, matched on packet uid between
  ``app.send`` and ``app.recv`` records.
* :class:`OverheadCollector` — bytes/frames on the air by kind, MAC
  retries and drops: the byte-cost side of the anonymity trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.stats import Summary, summarize
from repro.sim.trace import TraceRecord, Tracer

__all__ = ["DeliveryCollector", "OverheadCollector"]


class DeliveryCollector:
    """Packet delivery fraction and end-to-end latency."""

    def __init__(self, tracer: Tracer) -> None:
        self._send_times: Dict[int, float] = {}
        self._latencies: List[float] = []
        self._seen_delivered: set[int] = set()
        self.duplicate_recv = 0
        self.unmatched_recv = 0
        tracer.subscribe("app.send", self._on_send)
        tracer.subscribe("app.recv", self._on_recv)

    def _on_send(self, record: TraceRecord) -> None:
        self._send_times[record.data["packet_uid"]] = record.time

    def _on_recv(self, record: TraceRecord) -> None:
        uid = record.data["packet_uid"]
        sent_at = self._send_times.pop(uid, None)
        if sent_at is None:
            if uid in self._seen_delivered:
                self.duplicate_recv += 1
            else:
                self.unmatched_recv += 1
            return
        self._seen_delivered.add(uid)
        self._latencies.append(record.time - sent_at)

    # ---------------------------------------------------------------- stats
    @property
    def sent(self) -> int:
        return len(self._send_times) + len(self._latencies)

    @property
    def delivered(self) -> int:
        return len(self._latencies)

    @property
    def delivery_fraction(self) -> float:
        """The paper's 'packet delivery fraction' (0 when nothing was sent)."""
        total = self.sent
        return self.delivered / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end delay over delivered packets (0 when none)."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def latency_summary(self) -> Optional[Summary]:
        return summarize(self._latencies) if self._latencies else None

    @property
    def latencies(self) -> List[float]:
        return list(self._latencies)


@dataclass
class _KindCounter:
    frames: int = 0
    bytes: int = 0


class OverheadCollector:
    """Airtime accounting by packet kind from ``phy.tx`` records."""

    def __init__(self, tracer: Tracer) -> None:
        self.by_kind: Dict[str, _KindCounter] = {}
        self.control_frames = 0  # RTS/CTS/ACK
        self.total_frames = 0
        tracer.subscribe("phy.tx", self._on_tx)

    def _on_tx(self, record: TraceRecord) -> None:
        self.total_frames += 1
        packet = record.data.get("packet_obj")
        if packet is None:
            self.control_frames += 1
            return
        counter = self.by_kind.setdefault(packet.kind, _KindCounter())
        counter.frames += 1
        counter.bytes += packet.size_bytes()

    def frames_of(self, kind: str) -> int:
        counter = self.by_kind.get(kind)
        return counter.frames if counter else 0

    def bytes_of(self, kind: str) -> int:
        counter = self.by_kind.get(kind)
        return counter.bytes if counter else 0

    @property
    def total_payload_bytes(self) -> int:
        return sum(c.bytes for c in self.by_kind.values())
