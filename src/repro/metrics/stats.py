"""Summary statistics without heavyweight dependencies.

The harness reports the paper's two metrics (delivery fraction, mean
end-to-end latency) plus dispersion measures for honest error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["Summary", "summarize", "percentile", "mean_confidence_interval"]


def _require_finite(values: Sequence[float], what: str) -> None:
    """Reject NaN/inf samples up front.

    ``sorted()`` over NaNs is order-dependent garbage (NaN compares
    false with everything, so its final position depends on the input
    permutation) and a single inf poisons every mean/stdev — both would
    silently corrupt percentile ranks rather than fail.
    """
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"{what} requires finite values, got {v!r}")


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    _require_finite(values, "percentile")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean_confidence_interval(values: Sequence[float], z: float = 1.96) -> tuple[float, float]:
    """Normal-approximation CI half-width around the mean: (mean, half_width)."""
    if not values:
        raise ValueError("confidence interval of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(var / n)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} sd={self.stdev:.4g} "
            f"min={self.minimum:.4g} p50={self.p50:.4g} p95={self.p95:.4g} "
            f"max={self.maximum:.4g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; raises on an empty sample."""
    data: List[float] = list(values)
    if not data:
        raise ValueError("summarize of empty sequence")
    _require_finite(data, "summarize")
    n = len(data)
    mean = sum(data) / n
    stdev = math.sqrt(sum((v - mean) ** 2 for v in data) / (n - 1)) if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        stdev=stdev,
        minimum=min(data),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        maximum=max(data),
    )
