"""Observability for the fault-injection subsystem (:mod:`repro.faults`).

Channel impairments and node lifecycle faults are *inputs* to a run, so
— unlike the crypto caches or the scheduler — they are deliberately
outcome-**visible**: the whole point is to degrade delivery.  What this
module surfaces is the *dose*: how many receptions the channel ate, how
bursty the loss process was, how long nodes spent down, and how much the
protocols still delivered despite it all.  Experiments and benchmarks
print these next to delivery/overhead numbers so a Fig-1-style
robustness curve always states the impairment that produced it.

Counters live on a per-run :class:`FaultMetrics` instance owned by the
scenario (never module-level — the DET lint bans process-global mutable
state), threaded into every per-receiver loss process and the fault
injector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["FaultMetrics", "format_faults_report"]

Number = Union[int, float]


@dataclass
class FaultMetrics:
    """Per-run fault-injection counters (one instance per scenario)."""

    # ------------------------------------------------- channel loss process
    loss_draws: int = 0
    """Receptions the loss process judged (one draw per deliverable
    reception at a live radio)."""

    drops_injected: int = 0
    """Draws that came up *lose* (includes receptions a collision had
    already corrupted — the channel state advances regardless)."""

    deliveries_suppressed: int = 0
    """Otherwise-successful receptions the impairment actually flipped
    to a loss — the observable damage."""

    bursts_completed: int = 0
    """Loss runs (>= 1 consecutive drops at one receiver) that ended."""

    burst_drops_total: int = 0
    """Total drops inside completed bursts (mean burst length =
    ``burst_drops_total / bursts_completed``)."""

    # ---------------------------------------------------- node lifecycle
    crashes: int = 0
    recoveries: int = 0

    downtime_s: float = 0.0
    """Total node-seconds spent down (closed at :meth:`finalize`)."""

    deliveries_during_downtime: int = 0
    """End-to-end deliveries that completed while at least one node was
    down — deliveries *despite* faults."""

    # ------------------------------------------------------------ queries
    @property
    def mean_burst_length(self) -> float:
        """Mean completed loss-burst length in receptions (0.0 if none)."""
        if not self.bursts_completed:
            return 0.0
        return self.burst_drops_total / self.bursts_completed

    @property
    def loss_fraction(self) -> float:
        """Fraction of judged receptions the channel dropped."""
        return self.drops_injected / self.loss_draws if self.loss_draws else 0.0

    def counters(self) -> Dict[str, Number]:
        """A flat, deterministic snapshot for results/JSON."""
        return {
            "loss_draws": self.loss_draws,
            "drops_injected": self.drops_injected,
            "deliveries_suppressed": self.deliveries_suppressed,
            "bursts_completed": self.bursts_completed,
            "burst_drops_total": self.burst_drops_total,
            "mean_burst_length": round(self.mean_burst_length, 6),
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "downtime_s": round(self.downtime_s, 9),
            "deliveries_during_downtime": self.deliveries_during_downtime,
        }


def format_faults_report(metrics: FaultMetrics) -> str:
    """A deterministic, human-readable fault-injection report."""
    counters = metrics.counters()
    lines = ["faults"]
    for key, value in counters.items():
        if isinstance(value, float):
            lines.append(f"  {key:<26} {value:>14.6f}")
        else:
            lines.append(f"  {key:<26} {value:>14}")
    return "\n".join(lines)
