"""Observability for the crypto fast path (repro.crypto.cache).

The memo caches are outcome-invisible by construction, so the only
externally interesting signal is *how much work they saved*: hit/miss/
eviction counters per cache.  This module surfaces them through
``repro.metrics`` so experiments and benchmarks report cache efficacy
next to delivery/overhead numbers.
"""

from __future__ import annotations

from typing import Dict

from repro.crypto.cache import cache_counters

__all__ = ["crypto_cache_counters", "crypto_cache_hit_rates", "format_crypto_cache_report"]


def crypto_cache_counters() -> Dict[str, Dict[str, int]]:
    """Per-cache counters: ``{name: {hits, misses, evictions, cross_checks, size}}``.

    Counters are cumulative for the process (the caches deliberately
    outlive any single :class:`~repro.sim.engine.Simulator`); take a
    snapshot before and after a run to attribute work to it.
    """
    return cache_counters()


def crypto_cache_hit_rates() -> Dict[str, float]:
    """Hit fraction per cache (0.0 when a cache has seen no lookups)."""
    rates: Dict[str, float] = {}
    for name, counters in cache_counters().items():
        lookups = counters["hits"] + counters["misses"]
        rates[name] = counters["hits"] / lookups if lookups else 0.0
    return rates


def format_crypto_cache_report() -> str:
    """A deterministic, human-readable table of cache counters."""
    lines = ["crypto cache      hits    misses  evict  hit-rate"]
    for name, counters in cache_counters().items():
        lookups = counters["hits"] + counters["misses"]
        rate = counters["hits"] / lookups if lookups else 0.0
        lines.append(
            f"{name:<15} {counters['hits']:>7} {counters['misses']:>9} "
            f"{counters['evictions']:>6}  {rate:7.1%}"
        )
    return "\n".join(lines)
