"""Observability for the simulation substrate (scheduler + tracer).

The timer-wheel scheduler and the tracer dispatch cache are
outcome-invisible by construction (pop order and trace bytes are
identical in every ``scheduler_mode``), so — exactly as with the crypto
caches — the interesting signal is *how the work was done*: wheel
occupancy, overflow migrations, re-bases, backlog compactions, and the
tracer's dispatch-cache shape.  This module surfaces both through
``repro.metrics`` so experiments and benchmarks can report substrate
efficacy next to delivery/overhead numbers.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

__all__ = [
    "scheduler_counters",
    "tracer_counters",
    "format_engine_report",
]


def scheduler_counters(sim: Simulator) -> Dict[str, int]:
    """Backend telemetry for one simulator.

    Always present: ``backlog`` (live + cancelled entries still queued),
    ``pending`` (live only), ``processed``, ``compactions``.  The wheel
    backend adds ``ready``/``wheel``/``overflow`` occupancy and
    ``rebases``; cross mode adds ``heap_backlog`` (the reference copy).
    """
    return sim.scheduler_stats()


def tracer_counters(tracer: Tracer) -> Dict[str, int]:
    """Dispatch fast-path telemetry: cached categories, subscriber and
    mute counts, bucketed vs global subscriptions, retained records."""
    return tracer.dispatch_stats()


def format_engine_report(sim: Simulator, tracer: Tracer) -> str:
    """A deterministic, human-readable substrate report."""
    sched = scheduler_counters(sim)
    trace = tracer_counters(tracer)
    lines = [f"scheduler ({sim.scheduler_mode})"]
    for key in sorted(sched):
        lines.append(f"  {key:<18} {sched[key]:>10}")
    lines.append("tracer")
    for key in sorted(trace):
        lines.append(f"  {key:<18} {trace[key]:>10}")
    return "\n".join(lines)
