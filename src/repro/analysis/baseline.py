"""Checked-in finding baseline: gate PRs on *new* findings only.

A baseline file records the findings a tree is currently allowed to
have.  The engine partitions each run's findings into **new** (fail the
gate) and **baselined** (known debt, reported but not fatal), so a rule
can be introduced — or tightened — without first fixing every historic
site, while any *regression* still fails CI the moment it appears.

Entries are fingerprints, not positions: ``(normalized path, rule id,
stripped source snippet)`` with a count.  Line numbers churn with every
unrelated edit; the snippet only changes when the flagged code itself
changes, at which point the finding *should* resurface for a human
decision.  Counts make duplicate sites on identical snippets behave
sanely: three identical leaks baseline three, a fourth is new.

Paths are normalized to their last ``src/``/``tests/``/``benchmarks/``
anchor so fingerprints agree between a local checkout, CI, and tmp-dir
fixture trees.

Workflow::

    repro-lint src tests --baseline analysis_baseline.json            # gate
    repro-lint src tests --baseline analysis_baseline.json \\
        --update-baseline                                             # re-pin
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Callable, Dict, List, Tuple

from repro.analysis.core import ANALYSIS_VERSION, Finding

__all__ = ["Baseline", "normalize_path"]

#: Path components that anchor a repo-relative identity.
_ANCHORS = ("src", "tests", "benchmarks")

#: Baseline file schema version (independent of the engine version: an
#: engine bump invalidates *caches*, not recorded debt).
BASELINE_SCHEMA = 1


def normalize_path(path: str) -> str:
    """Stable fingerprint path: everything from the last anchor down.

    ``/home/ci/repo/src/repro/core/als.py`` and ``src/repro/core/als.py``
    normalize identically; paths without an anchor keep their last two
    components.
    """
    parts = PurePosixPath(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _ANCHORS:
            return "/".join(parts[index:])
    return "/".join(parts[-2:])


def _fingerprint(finding: Finding, snippet: str) -> str:
    return f"{normalize_path(finding.path)}|{finding.rule_id}|{snippet.strip()}"


@dataclass
class Baseline:
    """Fingerprint → allowed-count table, with (de)serialization."""

    entries: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------- io
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {str(k): int(v) for k, v in data.get("entries", {}).items()}
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "analysis_version": ANALYSIS_VERSION,
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------ construction
    @classmethod
    def from_findings(
        cls, findings: List[Finding], snippet_of: Callable[[Finding], str]
    ) -> "Baseline":
        entries: Dict[str, int] = {}
        for finding in findings:
            key = _fingerprint(finding, snippet_of(finding))
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    # -------------------------------------------------------------- filtering
    def partition(
        self, findings: List[Finding], snippet_of: Callable[[Finding], str]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split into (new, baselined), consuming counts deterministically.

        Findings arrive sorted (the engine sorts); the first *n* matches
        of a fingerprint with count *n* are baselined, any excess is new.
        """
        remaining = dict(self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = _fingerprint(finding, snippet_of(finding))
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined
