"""Function taint summaries and project determinism facts.

Built once per run over the whole analyzed tree, consumed by the ANON
rules (interprocedural taint) and DET-009 (unordered iteration feeding
the scheduler).  Everything here is a bounded, monotone fixpoint over
finite label sets, so it terminates on arbitrary call cycles — mutual
recursion just stops adding labels after a round.

Per :class:`~repro.analysis.dataflow.SeedSpec` family,
:class:`ProjectSummaries` holds:

* ``return_labels[qualname]`` — which labels a call's result carries:
  ``seed`` (the function manufactures taint, e.g. ``return
  node.identity``) and/or ``param:<name>`` (taint is whatever that
  argument carried — the laundering-helper shape ANON-001 was blind to);
* ``returns_class[qualname]`` — the analyzed class a function returns,
  when a single constructor/annotation makes it obvious (types header
  objects across module boundaries);
* ``tainted_fields`` — ``(class_qualname, attr)`` pairs ever assigned a
  seed-carrying value anywhere in the project (identity stored into a
  header object in one module, read out in another);
* ``tainted_params[qualname]`` / ``packet_params[qualname]`` — call-site
  injection: parameters that *some* caller feeds a tainted value or a
  wire-visible packet instance, so the callee's body is checked under
  that assumption.

:class:`DeterminismFacts` is the DET-side product: project-wide
set-typed attribute names, set-returning functions, and the transitive
set of functions that can reach the event scheduler or trace emission.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    SymbolTable,
    terminal_name,
)
from repro.analysis.core import ModuleContext
from repro.analysis.dataflow import (
    SEED,
    ClassEnv,
    LabelEvaluator,
    SeedSpec,
    bind_call_args,
    param_label,
)

__all__ = ["DeterminismFacts", "ProjectSummaries", "SCHEDULER_CALL_NAMES"]

#: Terminal call names that put work on the event queue or the trace
#: stream — the sinks whose input *order* is wire/trace-visible.
SCHEDULER_CALL_NAMES = frozenset({"schedule", "call_later", "emit"})

#: Fixpoint round cap — label sets are tiny, real projects converge in
#: 2-4 rounds; the cap only guards pathological fixture graphs.
_MAX_ROUNDS = 12


def _parent_scope_map(table: SymbolTable, module: ModuleContext) -> List[FunctionInfo]:
    """All analyzed functions defined in ``module``, in source order."""
    infos = [
        info
        for info in table.functions.values()
        if info.module_path == module.path
    ]
    return sorted(infos, key=lambda i: (i.node.lineno, i.qualname))  # type: ignore[attr-defined]


def _annotation_class(table: SymbolTable, module: ModuleContext, ann: Optional[ast.AST]):
    if ann is None:
        return None
    base = ann.value if isinstance(ann, ast.Subscript) else ann
    name = terminal_name(base)
    if name is None:
        return None
    cinfo = table.resolve_class(module, name)
    return cinfo.qualname if cinfo is not None else None


class ProjectSummaries:
    """Interprocedural taint facts for one seed family."""

    def __init__(
        self,
        modules: List[ModuleContext],
        table: SymbolTable,
        spec: SeedSpec,
        packet_classes: FrozenSet[str] = frozenset(),
    ) -> None:
        self.spec = spec
        self.table = table
        self._modules = {m.path: m for m in modules}
        self.return_labels: Dict[str, FrozenSet[str]] = {
            q: frozenset() for q in table.functions
        }
        self.returns_class: Dict[str, Optional[str]] = {}
        self.tainted_fields: FrozenSet[Tuple[str, str]] = frozenset()
        self.tainted_params: Dict[str, FrozenSet[str]] = {}
        self.packet_params: Dict[str, FrozenSet[str]] = {}
        self._packet_class_names = packet_classes
        self._compute_returns_class()
        self._fixpoint_return_labels()
        self._fixpoint_fields_and_params()

    # ----------------------------------------------------------- class typing
    def _compute_returns_class(self) -> None:
        for qual in sorted(self.table.functions):
            info = self.table.functions[qual]
            module = self._modules[info.module_path]
            node = info.node
            cls = _annotation_class(self.table, module, getattr(node, "returns", None))
            if cls is None:
                env = ClassEnv(
                    module, self.table, node, enclosing_class=info.class_qualname
                )
                classes: Set[str] = set()
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        got = env.class_of(sub.value)
                        if got is None:
                            classes = set()
                            break
                        classes.add(got)
                if len(classes) == 1:
                    cls = classes.pop()
            self.returns_class[qual] = cls

    # ------------------------------------------------------------ return labels
    def _function_env(
        self, info: FunctionInfo, tainted: FrozenSet[str] = frozenset()
    ) -> Dict[str, FrozenSet[str]]:
        env: Dict[str, FrozenSet[str]] = {}
        for name in info.params():
            labels: FrozenSet[str] = frozenset({param_label(name)})
            if name in tainted or self.spec.name_matches(name) or (
                name in self.spec.param_names
            ):
                labels = labels | {SEED}
            env[name] = labels
        return env

    def _evaluator(
        self,
        info: FunctionInfo,
        env: Dict[str, FrozenSet[str]],
        with_fields: bool = False,
    ) -> LabelEvaluator:
        module = self._modules[info.module_path]
        class_env = ClassEnv(
            module,
            self.table,
            info.node,
            enclosing_class=info.class_qualname,
            returns_class=self.returns_class,
        )
        return LabelEvaluator(
            module,
            self.spec,
            table=self.table,
            env=env,
            summaries=self.return_labels,
            tainted_fields=self.tainted_fields if with_fields else frozenset(),
            class_env=class_env,
            enclosing_class=info.class_qualname,
            packet_class_names=self._packet_class_names,
        )

    def _fixpoint_return_labels(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qual in sorted(self.table.functions):
                info = self.table.functions[qual]
                env = self._function_env(info)
                evaluator = self._evaluator(info, env)
                self._propagate_assignments(info, evaluator)
                labels: FrozenSet[str] = frozenset()
                for sub in ast.walk(info.node):
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        labels = labels | evaluator.labels(sub.value)
                merged = self.return_labels[qual] | labels
                if merged != self.return_labels[qual]:
                    self.return_labels[qual] = merged
                    changed = True
            if not changed:
                break

    @staticmethod
    def _propagate_assignments(info: FunctionInfo, evaluator: LabelEvaluator) -> None:
        """Flow-insensitive local fixpoint: assigned names absorb labels."""
        assignments: List[Tuple[str, ast.AST]] = []
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        assignments.append((target.id, sub.value))
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if isinstance(sub.target, ast.Name):
                    assignments.append((sub.target.id, sub.value))
            elif isinstance(sub, ast.AugAssign):
                if isinstance(sub.target, ast.Name):
                    assignments.append((sub.target.id, sub.value))
        for _ in range(_MAX_ROUNDS):
            changed = False
            for name, value in assignments:
                labels = evaluator.labels(value)
                have = evaluator.env.get(name, frozenset())
                if not labels <= have:
                    evaluator.env[name] = have | labels
                    changed = True
            if not changed:
                break

    # -------------------------------------------- field taint + param injection
    def _fixpoint_fields_and_params(self) -> None:
        tainted_params: Dict[str, Set[str]] = {q: set() for q in self.table.functions}
        packet_params: Dict[str, Set[str]] = {q: set() for q in self.table.functions}
        fields: Set[Tuple[str, str]] = set()

        for _ in range(_MAX_ROUNDS):
            changed = False
            self.tainted_fields = frozenset(fields)
            for qual in sorted(self.table.functions):
                info = self.table.functions[qual]
                env = self._function_env(info, frozenset(tainted_params[qual]))
                evaluator = self._evaluator(info, env, with_fields=True)
                self._propagate_assignments(info, evaluator)
                class_env = evaluator.class_env
                assert class_env is not None

                for sub in ast.walk(info.node):
                    # (a) ``obj.attr = <seed>`` marks (class-of-obj, attr).
                    if isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if not isinstance(target, ast.Attribute):
                                continue
                            cls = class_env.class_of(target.value)
                            if cls is None:
                                continue
                            if SEED in evaluator.labels(sub.value):
                                key = (cls, target.attr)
                                if key not in fields:
                                    fields.add(key)
                                    changed = True
                    # (b) call sites inject taint / packet-ness into params.
                    elif isinstance(sub, ast.Call):
                        for target_info in self.table.resolve_call(
                            self._modules[info.module_path],
                            sub,
                            enclosing_class=info.class_qualname,
                            class_of=class_env.class_of,
                        ):
                            bound = bind_call_args(target_info, sub)
                            for pname, arg in sorted(bound.items()):
                                if SEED in evaluator.labels(arg):
                                    if pname not in tainted_params[target_info.qualname]:
                                        tainted_params[target_info.qualname].add(pname)
                                        changed = True
                                if self._is_packet_expr(class_env, arg):
                                    if pname not in packet_params[target_info.qualname]:
                                        packet_params[target_info.qualname].add(pname)
                                        changed = True
                # (c) constructor keywords: ``Header(origin=<seed>)``.
                module = self._modules[info.module_path]
                for sub in ast.walk(info.node):
                    if not isinstance(sub, ast.Call):
                        continue
                    name = terminal_name(sub.func)
                    if name is None:
                        continue
                    cinfo = self.table.resolve_class(module, name)
                    if cinfo is None or cinfo.name in self._packet_class_names:
                        continue
                    for keyword in sub.keywords:
                        if keyword.arg is None:
                            continue
                        if SEED in evaluator.labels(keyword.value):
                            key = (cinfo.qualname, keyword.arg)
                            if key not in fields:
                                fields.add(key)
                                changed = True
            if not changed:
                break

        self.tainted_fields = frozenset(fields)
        self.tainted_params = {
            q: frozenset(v) for q, v in tainted_params.items() if v
        }
        self.packet_params = {
            q: frozenset(v) for q, v in packet_params.items() if v
        }

    def _is_packet_expr(self, class_env: ClassEnv, node: ast.AST) -> bool:
        """Does ``node`` evidently hold a wire-visible packet instance?"""
        cls = class_env.class_of(node)
        if cls is not None:
            cinfo = self.table.classes.get(cls)
            if cinfo is not None and cinfo.name in self._packet_class_names:
                return True
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            return name in self._packet_class_names
        return False

    # ------------------------------------------------------------- debug/cache
    def digest_payload(self) -> dict:
        """Deterministic serialization for the incremental-cache key."""
        return {
            "spec": sorted(self.spec.attr_exact),
            "return_labels": {
                q: sorted(v) for q, v in sorted(self.return_labels.items()) if v
            },
            "returns_class": {
                q: c for q, c in sorted(self.returns_class.items()) if c
            },
            "tainted_fields": sorted(map(list, self.tainted_fields)),
            "tainted_params": {
                q: sorted(v) for q, v in sorted(self.tainted_params.items())
            },
            "packet_params": {
                q: sorted(v) for q, v in sorted(self.packet_params.items())
            },
        }


@dataclass
class DeterminismFacts:
    """Project-wide ordering facts for the DET-009 pass."""

    #: Attribute names annotated or assigned as ``set``/``frozenset``
    #: anywhere in the project (``self.members: set = set()``).
    set_attrs: FrozenSet[str] = frozenset()
    #: Qualnames of functions that evidently return a set.
    set_returning: FrozenSet[str] = frozenset()
    #: Functions that can (transitively) schedule events or emit trace.
    schedulers: FrozenSet[str] = frozenset()
    #: The underlying call graph (exposed for rules and tests).
    callgraph: Optional[CallGraph] = field(default=None, repr=False)

    @classmethod
    def build(cls, modules: List[ModuleContext], table: SymbolTable) -> "DeterminismFacts":
        set_attrs: Set[str] = set()
        set_returning: Set[str] = set()

        def is_set_annotation(ann: ast.AST) -> bool:
            base = ann.value if isinstance(ann, ast.Subscript) else ann
            return terminal_name(base) in {
                "set", "Set", "frozenset", "FrozenSet", "MutableSet",
            }

        def is_set_value(value: ast.AST) -> bool:
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            if isinstance(value, ast.Call):
                return terminal_name(value.func) in {"set", "frozenset"}
            return False

        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    if isinstance(target, ast.Attribute) and is_set_annotation(
                        node.annotation
                    ):
                        set_attrs.add(target.attr)
                    # Class-body field annotations: ``members: set[str]``.
                    if isinstance(target, ast.Name) and is_set_annotation(node.annotation):
                        parent = module.parent_of(node)
                        if isinstance(parent, ast.ClassDef):
                            set_attrs.add(target.id)
                elif isinstance(node, ast.Assign) and is_set_value(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            set_attrs.add(target.attr)

        for qual in sorted(table.functions):
            info = table.functions[qual]
            node = info.node
            returns = getattr(node, "returns", None)
            if returns is not None and is_set_annotation(returns):
                set_returning.add(qual)
                continue
            returned = [
                sub.value
                for sub in ast.walk(node)
                if isinstance(sub, ast.Return) and sub.value is not None
            ]
            if returned and all(is_set_value(v) for v in returned):
                set_returning.add(qual)

        graph = CallGraph(table)
        direct = graph.functions_calling(SCHEDULER_CALL_NAMES)
        schedulers = graph.reaching(direct)
        return cls(
            set_attrs=frozenset(set_attrs),
            set_returning=frozenset(set_returning),
            schedulers=schedulers,
            callgraph=graph,
        )

    def digest_payload(self) -> dict:
        return {
            "set_attrs": sorted(self.set_attrs),
            "set_returning": sorted(self.set_returning),
            "schedulers": sorted(self.schedulers),
        }
