"""``# repro: noqa[RULE-ID]`` suppression comments.

A finding is suppressed when the physical line it is reported on carries
a suppression comment naming its rule id (or a bare ``# repro: noqa``,
which suppresses every rule on that line).  Multiple ids are comma
separated::

    beacon = GpsrBeacon(
        sender_identity=self.node.identity,  # repro: noqa[ANON-001] baseline leak
    )

Suppressions are intentionally line-scoped: the annotation sits next to
the code it excuses, which doubles as documentation of *deliberate*
violations (GPSR/DLM are the paper's non-anonymous baselines — their
identity leaks are the point of the comparison).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.core import Finding, ModuleContext

__all__ = ["Suppressions", "collect_suppressions", "split_suppressed"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z]+-\d+(?:\s*,\s*[A-Za-z]+-\d+)*)\])?",
)

#: Sentinel meaning "every rule" (bare ``# repro: noqa``).
ALL_RULES: FrozenSet[str] = frozenset({"*"})


@dataclass(frozen=True)
class Suppressions:
    """Per-line suppression table for one module."""

    by_line: Dict[int, FrozenSet[str]]

    def suppresses(self, finding: Finding) -> bool:
        ids = self.by_line.get(finding.line)
        if ids is None:
            return False
        return "*" in ids or finding.rule_id in ids


def collect_suppressions(module: ModuleContext) -> Suppressions:
    """Scan source lines for ``# repro: noqa`` comments."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(module.lines, start=1):
        if "noqa" not in text:  # cheap pre-filter
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("ids")
        if raw is None:
            table[lineno] = ALL_RULES
        else:
            ids = frozenset(part.strip().upper() for part in raw.split(","))
            table[lineno] = table.get(lineno, frozenset()) | ids
    return Suppressions(by_line=table)


def split_suppressed(
    findings: List[Finding], suppressions: Suppressions
) -> Tuple[List[Finding], List[Finding]]:
    """Partition ``findings`` into (active, suppressed)."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        (suppressed if suppressions.suppresses(finding) else active).append(finding)
    return active, suppressed
