"""``# repro: noqa[RULE-ID]`` suppression comments.

A finding is suppressed when the *statement* it is reported in carries a
suppression comment naming its rule id (or a bare ``# repro: noqa``,
which suppresses every rule).  Multiple ids are comma separated::

    beacon = GpsrBeacon(
        sender_identity=self.node.identity,  # repro: noqa[ANON-001] baseline leak
    )

Suppressions attach to the smallest enclosing **statement span**, not
just the physical line the comment sits on.  A multi-line statement — a
parenthesized call, a decorated ``def``, a constructor spread over
several lines — is one logical violation site, and the rule may anchor
its finding on any line of it (constructor calls report the tainted
*argument*'s line; ``Assign`` findings report the statement head).  For
simple statements the span is ``lineno..end_lineno``; for compound
statements (``def``/``class``/``if``/``for``...) it is the *header*
only — decorators through the line before the body starts — so a noqa
on a ``def`` line never blankets the whole function body.

The annotation still sits next to the code it excuses, which doubles as
documentation of *deliberate* violations (GPSR/DLM are the paper's
non-anonymous baselines — their identity leaks are the point of the
comparison).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.core import Finding, ModuleContext

__all__ = ["Suppressions", "collect_suppressions", "split_suppressed"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z]+-\d+(?:\s*,\s*[A-Za-z]+-\d+)*)\])?",
)

#: Sentinel meaning "every rule" (bare ``# repro: noqa``).
ALL_RULES: FrozenSet[str] = frozenset({"*"})


@dataclass(frozen=True)
class Suppressions:
    """Per-line suppression table for one module (spans pre-expanded)."""

    by_line: Dict[int, FrozenSet[str]]

    def suppresses(self, finding: Finding) -> bool:
        ids = self.by_line.get(finding.line)
        if ids is None:
            return False
        return "*" in ids or finding.rule_id in ids


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(start, end) line spans for every statement, header-only for blocks.

    Compound statements contribute the decorator-to-body-start header so
    a noqa on (or inside) a multi-line ``def (...)`` signature covers the
    signature without blanketing the body; their nested statements
    contribute their own spans.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            start = min(start, *(d.lineno for d in decorators))
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        spans.append((start, end))
    return spans


def collect_suppressions(module: ModuleContext) -> Suppressions:
    """Scan for ``# repro: noqa`` comments and expand them to statement spans."""
    raw_by_line: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(module.lines, start=1):
        if "noqa" not in text:  # cheap pre-filter
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("ids")
        if raw is None:
            ids = ALL_RULES
        else:
            ids = frozenset(part.strip().upper() for part in raw.split(","))
        raw_by_line[lineno] = raw_by_line.get(lineno, frozenset()) | ids

    if not raw_by_line:
        return Suppressions(by_line={})

    spans = _statement_spans(module.tree)
    table: Dict[int, FrozenSet[str]] = {}
    for lineno in sorted(raw_by_line):
        ids = raw_by_line[lineno]
        # Smallest statement span containing the comment line; ties go to
        # the innermost (latest-starting) statement.
        enclosing = [
            (end - start, -start, start, end)
            for start, end in spans
            if start <= lineno <= end
        ]
        if enclosing:
            _, _, start, end = min(enclosing)
        else:
            start = end = lineno
        for covered in range(start, end + 1):
            table[covered] = table.get(covered, frozenset()) | ids
    return Suppressions(by_line=table)


def split_suppressed(
    findings: List[Finding], suppressions: Suppressions
) -> Tuple[List[Finding], List[Finding]]:
    """Partition ``findings`` into (active, suppressed)."""
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        (suppressed if suppressions.suppresses(finding) else active).append(finding)
    return active, suppressed
