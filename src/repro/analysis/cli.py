"""Command-line interface: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes: 0 = clean, 1 = findings, 2 = parse or usage errors — so the
CI step ``python -m repro.analysis src tests --format sarif --baseline
analysis_baseline.json`` gates merges on both rule families while known
debt stays visible but non-fatal.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.report import render_rule_catalog, write_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism (DET) and anonymity-invariant (ANON) "
            "linter for the ANT/AGFW reproduction, with interprocedural "
            "taint tracking across the whole tree. Suppress a finding with "
            "'# repro: noqa[RULE-ID]' on its statement."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run these rule ids or families (e.g. DET, ANON-001); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids or families; repeatable",
    )
    parser.add_argument(
        "--intra-only",
        action="store_true",
        help=(
            "disable the interprocedural passes (symbol table, summaries, "
            "call graph); per-module behavior only — mainly for comparison"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help=(
            "incremental cache file: per-file findings reused while the "
            "file and every cross-module fact are unchanged"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of known findings; matched findings are "
            "reported as 'baselined' and do not affect the exit code"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from this run's findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream: Optional[IO[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = stream if stream is not None else sys.stdout

    if args.list_rules:
        out.write(render_rule_catalog() + "\n")
        return 0

    if args.update_baseline and not args.baseline:
        out.write("repro-lint: --update-baseline requires --baseline PATH\n")
        return 2

    baseline: Optional[Baseline] = None
    baseline_path: Optional[Path] = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists() and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            out.write(f"repro-lint: unreadable baseline {baseline_path}: {exc}\n")
            return 2

    try:
        result = analyze_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            interprocedural=not args.intra_only,
            cache_path=Path(args.cache) if args.cache else None,
            baseline=baseline,
        )
    except Exception as exc:  # pragma: no cover - defensive: engine bug
        out.write(f"repro-lint: internal error: {exc}\n")
        return 2

    if args.update_baseline:
        assert baseline_path is not None
        from repro.analysis.engine import collect_files, _parse_modules

        # Re-derive snippets for fingerprinting from the analyzed files.
        modules = {
            m.path: m for m in _parse_modules(collect_files(args.paths), [])
        }

        def snippet_of(finding):  # type: ignore[no-untyped-def]
            module = modules.get(finding.path)
            return module.snippet(finding.line) if module is not None else ""

        Baseline.from_findings(result.findings, snippet_of).save(baseline_path)
        out.write(
            f"repro-lint: baseline updated with {len(result.findings)} "
            f"finding{'s' if len(result.findings) != 1 else ''} "
            f"-> {baseline_path}\n"
        )
        return 0

    write_report(result, args.format, out)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
