"""Command-line interface: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes: 0 = clean, 1 = findings, 2 = parse or usage errors — so the
CI step ``python -m repro.analysis src tests --format json`` gates merges
on both rule families.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Optional, Sequence

from repro.analysis.engine import analyze_paths
from repro.analysis.report import render_rule_catalog, write_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism (DET) and anonymity-invariant (ANON) "
            "linter for the ANT/AGFW reproduction. Suppress a finding with "
            "'# repro: noqa[RULE-ID]' on its line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run these rule ids or families (e.g. DET, ANON-001); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids or families; repeatable",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream: Optional[IO[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = stream if stream is not None else sys.stdout

    if args.list_rules:
        out.write(render_rule_catalog() + "\n")
        return 0

    try:
        result = analyze_paths(args.paths, select=args.select, ignore=args.ignore)
    except Exception as exc:  # pragma: no cover - defensive: engine bug
        out.write(f"repro-lint: internal error: {exc}\n")
        return 2
    write_report(result, args.format, out)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
