"""Project-wide symbol table and call graph.

The PR 1 engine saw one module at a time; the interprocedural passes
need to know, for *any* call expression, which function definitions in
the analyzed tree it might land on.  This module builds that knowledge
in one deterministic pre-pass:

* :func:`module_name_of` — file path to dotted module name (``src/repro/
  routing/gpsr.py`` → ``repro.routing.gpsr``), so qualified names are
  stable across checkouts and tmp-dir fixture trees;
* :class:`SymbolTable` — every function/method/class definition under a
  qualified name, plus per-module binding maps that resolve local names
  through ``from x import y [as z]`` chains;
* :class:`CallGraph` — caller → callee edges using the same resolution,
  with a reverse-reachability helper the DET-009 pass uses to find every
  function that can transitively reach the event scheduler.

Resolution is deliberately *possibilistic*: an attribute call
``obj.refresh()`` with an unknown receiver resolves to every analyzed
function named ``refresh`` (capped — past the cap the call is treated as
opaque and the taint rules fall back to their conservative
argument-union behavior).  Over-approximation keeps the invariant
checker sound-ish without a type checker; determinism comes from sorted
iteration everywhere a set would otherwise leak ordering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.core import ModuleContext

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "SymbolTable",
    "module_name_of",
    "terminal_name",
]

#: An attribute call whose receiver cannot be typed resolves to every
#: same-named function — unless there are more than this many, in which
#: case the call is treated as opaque (conservative fallback).
MAX_NAME_CANDIDATES = 8


def terminal_name(node: ast.AST) -> Optional[str]:
    """``a.b.C`` -> ``C``; ``C`` -> ``C``; anything else -> None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def module_name_of(path: str) -> str:
    """Dotted module name for a source path, anchored at the last ``src``.

    Falls back to the bare stem for paths outside a ``src`` layout so
    ad-hoc fixture files still get *a* stable name.
    """
    parts = PurePosixPath(path).parts
    if "src" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("src")
        rel = parts[anchor + 1 :]
    else:
        rel = (parts[-1],)
    dotted = [p[:-3] if p.endswith(".py") else p for p in rel]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) or PurePosixPath(path).stem


@dataclass(frozen=True)
class FunctionInfo:
    """One analyzed ``def``: where it lives and its AST."""

    qualname: str
    name: str
    module_path: str
    module_name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_qualname: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    def params(self) -> List[str]:
        """Positional-ish parameter names, ``self``/``cls`` included."""
        args = self.node.args  # type: ignore[attr-defined]
        return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


@dataclass
class ClassInfo:
    """One analyzed ``class``: methods by name, base names as written."""

    qualname: str
    name: str
    module_path: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func qualname
    base_names: Tuple[str, ...] = ()


class SymbolTable:
    """Qualified-name index over every analyzed module.

    ``bindings[module_path]`` maps a module's *local* top-level names to
    qualified names — its own ``def``/``class`` statements plus
    ``from x import y`` targets that land on an analyzed definition.
    """

    def __init__(self, modules: List[ModuleContext]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.bindings: Dict[str, Dict[str, str]] = {}
        self._by_node: Dict[int, FunctionInfo] = {}
        self._functions_by_name: Dict[str, List[str]] = {}
        self._classes_by_name: Dict[str, List[str]] = {}
        for module in modules:
            self._index_module(module)
        self._link_imports()

    # ------------------------------------------------------------- building
    def _index_module(self, module: ModuleContext) -> None:
        mod_name = module_name_of(module.path)
        local: Dict[str, str] = {}
        self.bindings[module.path] = local

        def visit(stmts: List[ast.stmt], prefix: str, cls: Optional[ClassInfo]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{stmt.name}"
                    info = FunctionInfo(
                        qualname=qual,
                        name=stmt.name,
                        module_path=module.path,
                        module_name=mod_name,
                        node=stmt,
                        class_qualname=cls.qualname if cls is not None else None,
                    )
                    self.functions[qual] = info
                    self._by_node[id(stmt)] = info
                    self._functions_by_name.setdefault(stmt.name, []).append(qual)
                    if cls is not None:
                        cls.methods.setdefault(stmt.name, qual)
                    elif prefix == mod_name:
                        local[stmt.name] = qual
                    # Nested defs get qualified under their parent def.
                    visit(stmt.body, qual, None)
                elif isinstance(stmt, ast.ClassDef):
                    qual = f"{prefix}.{stmt.name}"
                    base_names = tuple(
                        n for n in (terminal_name(b) for b in stmt.bases) if n is not None
                    )
                    cinfo = ClassInfo(
                        qualname=qual,
                        name=stmt.name,
                        module_path=module.path,
                        node=stmt,
                        base_names=base_names,
                    )
                    self.classes[qual] = cinfo
                    self._classes_by_name.setdefault(stmt.name, []).append(qual)
                    if prefix == mod_name:
                        local[stmt.name] = qual
                    visit(stmt.body, qual, cinfo)

        visit(module.tree.body, mod_name, None)

    def _link_imports(self) -> None:
        """Resolve ``from x import y`` bindings onto analyzed definitions."""
        for module in self.modules:
            local = self.bindings[module.path]
            for name, (origin_mod, origin_name) in sorted(module.from_imports.items()):
                qual = f"{origin_mod}.{origin_name}"
                if qual in self.functions or qual in self.classes:
                    local.setdefault(name, qual)

    # ----------------------------------------------------------- resolution
    def function_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        return self._by_node.get(id(node))

    def resolve_local(self, module: ModuleContext, name: str) -> Optional[str]:
        return self.bindings.get(module.path, {}).get(name)

    def resolve_class(self, module: ModuleContext, name: str) -> Optional[ClassInfo]:
        """A class as referred to by ``name`` inside ``module``."""
        qual = self.resolve_local(module, name)
        if qual is not None:
            return self.classes.get(qual)
        candidates = self._classes_by_name.get(name, [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def class_method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        """Method lookup through the (single-inheritance, analyzed) MRO."""
        seen = 0
        qual: Optional[str] = class_qualname
        while qual is not None and seen < 16:
            cinfo = self.classes.get(qual)
            if cinfo is None:
                return None
            method = cinfo.methods.get(name)
            if method is not None:
                return self.functions.get(method)
            qual = self._parent_class(cinfo)
            seen += 1
        return None

    def _parent_class(self, cinfo: ClassInfo) -> Optional[str]:
        module = next((m for m in self.modules if m.path == cinfo.module_path), None)
        for base in cinfo.base_names:
            if module is not None:
                qual = self.resolve_local(module, base)
                if qual is not None and qual in self.classes:
                    return qual
            candidates = self._classes_by_name.get(base, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def resolve_call(
        self,
        module: ModuleContext,
        call: ast.Call,
        enclosing_class: Optional[str] = None,
        class_of: Optional[Callable[[ast.AST], Optional[str]]] = None,
    ) -> Tuple[FunctionInfo, ...]:
        """Candidate targets for ``call`` — empty tuple means *opaque*.

        ``enclosing_class`` types ``self.m(...)`` receivers; ``class_of``
        is an optional callback typing arbitrary receiver expressions
        (the dataflow layer passes its local class environment).
        """
        func = call.func
        if isinstance(func, ast.Name):
            qual = self.resolve_local(module, func.id)
            if qual is not None:
                info = self.functions.get(qual)
                if info is not None:
                    return (info,)
                cinfo = self.classes.get(qual)
                if cinfo is not None:
                    init = self.class_method(qual, "__init__")
                    return (init,) if init is not None else ()
            return ()
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # self.m() / cls.m() inside a known class.
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and enclosing_class is not None
            ):
                info = self.class_method(enclosing_class, func.attr)
                return (info,) if info is not None else ()
            # mod.f() through a plain import of an analyzed module.
            if isinstance(receiver, ast.Name):
                target_mod = module.import_aliases.get(receiver.id)
                if target_mod is not None:
                    info = self.functions.get(f"{target_mod}.{func.attr}")
                    if info is not None:
                        return (info,)
            # Receiver typed by the caller's class environment.
            if class_of is not None:
                cls = class_of(receiver)
                if cls is not None:
                    info = self.class_method(cls, func.attr)
                    return (info,) if info is not None else ()
            # Fallback: every analyzed function with this name (capped).
            candidates = self._functions_by_name.get(func.attr, [])
            if 0 < len(candidates) <= MAX_NAME_CANDIDATES:
                return tuple(self.functions[q] for q in sorted(candidates))
        return ()


class CallGraph:
    """Caller → callee qualname edges over the symbol table."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.callees: Dict[str, Tuple[str, ...]] = {}
        self.call_terminal_names: Dict[str, Tuple[str, ...]] = {}
        for module in table.modules:
            self._scan_module(module)

    def _scan_module(self, module: ModuleContext) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = self.table.function_for_node(node)
            if info is None:
                continue
            edges: List[str] = []
            names: List[str] = []
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = terminal_name(sub.func)
                if name is not None:
                    names.append(name)
                for target in self.table.resolve_call(
                    module, sub, enclosing_class=info.class_qualname
                ):
                    edges.append(target.qualname)
            self.callees[info.qualname] = tuple(sorted(set(edges)))
            self.call_terminal_names[info.qualname] = tuple(sorted(set(names)))

    def functions_calling(self, names: frozenset) -> frozenset:
        """Functions whose body *directly* calls any terminal name in ``names``."""
        return frozenset(
            qual
            for qual in sorted(self.call_terminal_names)
            if names & set(self.call_terminal_names[qual])
        )

    def reaching(self, targets: frozenset) -> frozenset:
        """Transitive closure: functions that can reach ``targets``."""
        reaching = set(targets)
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.callees):
                if qual in reaching:
                    continue
                if any(callee in reaching for callee in self.callees[qual]):
                    reaching.add(qual)
                    changed = True
        return frozenset(reaching)
