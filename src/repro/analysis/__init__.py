"""Project-specific static analysis for the ANT/AGFW reproduction.

Two paper-derived rule families run over the AST of every module:

* **DET** — determinism: every run must be bit-reproducible from one
  master seed through :class:`repro.sim.rng.RngRegistry` (global
  ``random`` use, unseeded ``Random()``, wall-clock reads, float
  sim-time equality, set-iteration ordering).
* **ANON** — anonymity invariants: no real node identity or MAC address
  may reach a wire-visible :class:`repro.net.packet.Packet` field
  (Zhou & Yow Sec. 3); identities travel only as pseudonyms, trapdoors,
  or encrypted indexes.

Run ``python -m repro.analysis [paths]`` (or ``repro-lint`` after an
editable install); suppress a deliberate violation with
``# repro: noqa[RULE-ID]`` on the offending line.  The package lints
itself — it is part of the default ``src`` target.
"""

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    register,
    registry,
)
from repro.analysis.engine import AnalysisResult, analyze_paths

__all__ = [
    "AnalysisResult",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "analyze_paths",
    "register",
    "registry",
]
