"""DET — determinism rules.

The reproduction's experiments (Fig. 1 sweeps, privacy-exposure audits)
are only trustworthy if a run is bit-reproducible from one master seed.
:class:`repro.sim.rng.RngRegistry` derives every stream from that seed;
these rules flag the ways code escapes it:

==========  ===========================================================
DET-001     the process-global ``random`` stream (module-level draws,
            or the bare module used as an rng object)
DET-002     unseeded ``random.Random()`` construction outside
            ``sim/rng.py``
DET-003     wall-clock / OS-entropy sources (``time.time``,
            ``datetime.now``, ``uuid4``, ``os.urandom``, ``secrets``)
DET-004     float ``==``/``!=`` against sim-time expressions
DET-005     iteration over a bare ``set`` where order can leak into
            event scheduling
DET-006     module-level mutable counters (``itertools.count`` at module
            scope, ``global`` int bumps) leaking state across Simulator
            instances in one process
DET-007     module-level mutable memo caches (empty dict/OrderedDict/
            defaultdict at module scope, ``functools.lru_cache``/
            ``functools.cache``) outside the audited
            ``repro.crypto.cache`` module
DET-008     ad-hoc priority queues (``heapq``/``bisect.insort`` calls)
            outside the scheduler backends in ``repro.sim`` — event
            ordering must flow through the Simulator's proven-equivalent
            backends, not side queues
DET-009     *interprocedural* DET-005: iteration over project-known
            unordered values (set-typed attributes, set-returning
            helpers from another module) inside any function that can
            transitively reach ``schedule``/``call_later``/``emit``
DET-010     address-dependent values: builtin ``id()`` as data, or
            ``sorted(key=id/hash)`` — ``id()`` is an interpreter heap
            address and differs across runs/processes (the
            ``Trapdoor.ref_bytes`` fallback bug class fixed in PR 5)
DET-011     module-level mutable containers (``[]``, ``set()``,
            ``bytearray()``, ``deque()``) — state that forks into
            divergent per-process copies under the sharded-simulation
            roadmap item and silently desynchronizes shards
DET-012     unsorted filesystem enumeration (``os.listdir``, ``glob``,
            ``Path.glob/rglob/iterdir``) — directory order is
            filesystem-dependent, so any derived ordering differs
            between machines unless wrapped in ``sorted(...)``
DET-013     numpy determinism escapes in the vectorized hot core:
            draws on the process-global ``numpy.random`` stream,
            unseeded ``default_rng()``/``RandomState()`` construction,
            ``np.sort``/``np.argsort`` without ``kind="stable"``
            (quicksort tie order is value-address dependent), and
            ``np.unique(..., return_index=True)`` (first-occurrence
            indices among equal keys inherit the unstable sort)
DET-014     nondeterministic multiprocessing patterns under the sharded
            engine: unordered iteration over shard/queue-shaped dicts
            inside scheduler-feeding functions, per-process identity
            (``os.getpid()``) or wall timers leaking into simulation
            state, and iteration over sets that crossed a pickle
            boundary (worker pipes, queues)
DET-015     writes to shared-memory-backed arrays — ``np.ndarray``
            views over a ``SharedMemory`` buffer, aliases of them, and
            the ``ShardPlane._fields``/``_epochs`` internals — anywhere
            but ``ShardPlane.__init__``/``publish_legs``: the
            epoch-barrier publication helper is the only write site
            whose ordering the shard protocol proves race-free
==========  ===========================================================

DET-009 only fires when the engine runs interprocedurally (it needs the
call graph); the others are per-module and fire in both modes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleContext, ProjectContext, Rule, register

__all__ = [
    "GlobalRandomStream",
    "UnseededRandom",
    "WallClockEntropy",
    "FloatTimeEquality",
    "SetIterationOrder",
    "ModuleLevelCounter",
    "ModuleLevelMemoCache",
    "AdHocEventQueue",
    "UnorderedIterationIntoScheduler",
    "AddressDependentValue",
    "ModuleLevelMutableState",
    "UnsortedFilesystemEnumeration",
    "NumpyDeterminismEscape",
    "MultiprocessingOrderEscape",
    "SharedPlaneWriteEscape",
]

#: ``random`` module functions that draw from (or reseed) the global stream.
_GLOBAL_DRAWS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "paretovariate",
        "weibullvariate", "vonmisesvariate", "triangular", "getrandbits",
        "randbytes", "binomialvariate", "seed", "setstate", "getstate",
    }
)


def _is_random_module_ref(module: ModuleContext, node: ast.AST) -> bool:
    """Does ``node`` name the ``random`` module itself?"""
    return (
        isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and module.resolves_to_module(node.id, "random")
    )


def _resolve_call_target(
    module: ModuleContext, func: ast.AST
) -> Optional[Tuple[str, str]]:
    """Resolve a call's function to ``(module, name)`` when statically known.

    Handles ``mod.attr(...)`` through ``import mod [as alias]`` and bare
    ``name(...)`` through ``from mod import name [as alias]``.
    """
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        target = module.import_aliases.get(func.value.id)
        if target is not None:
            return target, func.attr
        origin = module.from_imports.get(func.value.id)
        if origin is not None:
            # ``from datetime import datetime; datetime.now()`` resolves to
            # ("datetime.datetime", "now").
            return f"{origin[0]}.{origin[1]}", func.attr
        return None
    if isinstance(func, ast.Name):
        origin = module.from_imports.get(func.id)
        if origin is not None:
            return origin[0], origin[1]
        return None
    return None


@register
class GlobalRandomStream(Rule):
    """DET-001: any use of the process-global ``random`` stream.

    Draws from the module (``random.choice(...)``) are invisible to
    :class:`~repro.sim.rng.RngRegistry`: a second caller anywhere in the
    process perturbs the sequence and the run stops being reproducible.
    Passing the bare module as an rng object (``rng or random``) is the
    same bug in disguise.
    """

    id = "DET-001"
    name = "global-random-stream"
    rationale = (
        "Draws from the process-global random stream bypass RngRegistry; "
        "any other caller perturbs the sequence and breaks seed-reproducibility."
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Name):
                continue
            if not _is_random_module_ref(module, node):
                # ``from random import shuffle`` style draws:
                origin = module.from_imports.get(getattr(node, "id", ""))
                if (
                    origin is not None
                    and origin[0] == "random"
                    and origin[1] in _GLOBAL_DRAWS
                    and isinstance(node.ctx, ast.Load)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"'{node.id}' (= random.{origin[1]}) draws from the "
                        "process-global random stream; use an RngRegistry stream",
                    )
                continue
            parent = module.parent_of(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                if parent.attr in _GLOBAL_DRAWS:
                    yield self.finding(
                        module,
                        parent,
                        f"random.{parent.attr}() draws from the process-global "
                        "random stream; use an RngRegistry stream instead",
                    )
                # random.Random / random.SystemRandom etc. are judged by
                # DET-002 / DET-003; plain attribute access is fine here.
                continue
            # The bare module escaping as a value: ``rng = rng or random``,
            # ``f(random)``, ``self.rng = random`` ...
            yield self.finding(
                module,
                node,
                "the 'random' module used as an RNG object aliases the "
                "process-global stream; pass an explicit random.Random",
            )


@register
class UnseededRandom(Rule):
    """DET-002: ``random.Random()`` with no seed outside ``sim/rng.py``.

    An unseeded ``Random`` seeds itself from OS entropy — every run gets
    a different stream.  All streams must be derived from the master
    seed via :class:`~repro.sim.rng.RngRegistry` (which is the one place
    allowed to construct ``random.Random``).
    """

    id = "DET-002"
    name = "unseeded-random"
    rationale = (
        "random.Random() with no arguments seeds from OS entropy, so keygen, "
        "ring picking, and backoff differ between runs with the same master seed."
    )
    exempt_paths = ("sim/rng.py",)

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            func = node.func
            is_random_cls = (
                isinstance(func, ast.Attribute)
                and func.attr == "Random"
                and _is_random_module_ref(module, func.value)
            )
            if not is_random_cls and isinstance(func, ast.Name):
                origin = module.from_imports.get(func.id)
                is_random_cls = origin == ("random", "Random")
            if is_random_cls:
                yield self.finding(
                    module,
                    node,
                    "unseeded random.Random() draws OS entropy; require an "
                    "explicit rng or derive one via RngRegistry",
                )


#: ``(module, attr)`` call targets that read wall-clock time or OS entropy.
_FORBIDDEN_CALLS = {
    ("time", "time"): "time.time() reads the wall clock",
    ("time", "time_ns"): "time.time_ns() reads the wall clock",
    ("time", "localtime"): "time.localtime() reads the wall clock",
    ("time", "ctime"): "time.ctime() reads the wall clock",
    ("datetime.datetime", "now"): "datetime.now() reads the wall clock",
    ("datetime.datetime", "utcnow"): "datetime.utcnow() reads the wall clock",
    ("datetime.datetime", "today"): "datetime.today() reads the wall clock",
    ("datetime.date", "today"): "date.today() reads the wall clock",
    ("uuid", "uuid1"): "uuid1() mixes the wall clock and the MAC address",
    ("uuid", "uuid4"): "uuid4() draws OS entropy",
    ("os", "urandom"): "os.urandom() draws OS entropy",
    ("random", "SystemRandom"): "random.SystemRandom draws OS entropy",
}


@register
class WallClockEntropy(Rule):
    """DET-003: wall-clock time or OS entropy inside simulation code.

    Simulated time is ``sim.now``; freshness, pseudonym lifetimes and
    certificate windows must be driven by it.  ``time.perf_counter`` is
    deliberately *not* flagged: measuring how long a run took is fine,
    feeding the measurement back into the simulation is what breaks
    reproducibility (and that path goes through the flagged calls).
    """

    id = "DET-003"
    name = "wall-clock-entropy"
    rationale = (
        "Wall-clock reads and OS entropy differ between runs; simulated time "
        "must come from sim.now and randomness from RngRegistry streams."
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(module, node.func)
            if target is None:
                continue
            reason = _FORBIDDEN_CALLS.get(target)
            if reason is None and target[0] == "secrets":
                reason = f"secrets.{target[1]}() draws OS entropy"
            if reason is None and target == ("datetime", "now"):
                # ``from datetime import datetime`` then ``datetime.now()``
                # resolves above; this covers ``import datetime`` + alias.
                reason = "datetime.now() reads the wall clock"
            if reason is not None:
                yield self.finding(
                    module,
                    node,
                    f"{reason}; not reproducible from the master seed "
                    "(use sim.now / an RngRegistry stream)",
                )


#: Terminal identifier fragments that mark an expression as sim-time-like.
_TIME_EXACT = frozenset(
    {"now", "time", "timestamp", "ts", "deadline", "expiry", "not_before", "not_after"}
)
_TIME_SUFFIXES = ("_time", "_at", "_deadline", "_timestamp", "_expiry")


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_time_expression(node: ast.AST) -> bool:
    name = _terminal_identifier(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered in _TIME_EXACT or lowered.endswith(_TIME_SUFFIXES)


def _is_integerized(node: ast.AST) -> bool:
    """``int(...)``/``round(...)`` wrappers or int literals compare exactly."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"int", "round"}
    return isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(
        node.value, bool
    )


@register
class FloatTimeEquality(Rule):
    """DET-004: exact float equality against sim-time expressions.

    Event times accumulate float error (``0.1 + 0.2 != 0.3``); a guard
    like ``if entry.timestamp == now`` silently stops matching once a
    scenario reorders additions, and delivery becomes seed-dependent in
    the worst way — only on some platforms.  Compare with a tolerance or
    compare integer tick counts.  Test files are exempt by default:
    asserting exact clock values against the deterministic engine is the
    point of the engine tests.
    """

    id = "DET-004"
    name = "float-time-equality"
    rationale = (
        "Float sim-time equality breaks under accumulation order; use a "
        "tolerance (math.isclose) or integer ticks."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py")

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                for side, other in ((left, right), (right, left)):
                    if _is_time_expression(side) and not _is_integerized(other):
                        yield self.finding(
                            module,
                            node,
                            f"exact {'==' if isinstance(op, ast.Eq) else '!='} on "
                            f"sim-time expression '{_terminal_identifier(side)}'; "
                            "float time accumulates error — use a tolerance or "
                            "integer ticks",
                        )
                        break


def _set_typed_symbols(tree: ast.Module) -> Set[str]:
    """Names/attributes annotated or assigned as sets anywhere in the module.

    Returns dotted keys: ``seen`` for locals, ``self.seen`` for instance
    attributes.  Intra-module and flow-insensitive on purpose — a symbol
    that is *ever* a set is treated as one.
    """

    def key_of(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
        ):
            return f"{target.value.id}.{target.attr}"
        return None

    def is_set_annotation(annotation: ast.AST) -> bool:
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        name = _terminal_identifier(base)
        return name in {"set", "Set", "frozenset", "FrozenSet", "MutableSet"}

    def is_set_value(value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            name = _terminal_identifier(value.func)
            return name in {"set", "frozenset"}
        return False

    symbols: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and is_set_annotation(node.annotation):
            key = key_of(node.target)
            if key is not None:
                symbols.add(key)
        elif isinstance(node, ast.Assign) and is_set_value(node.value):
            for target in node.targets:
                key = key_of(target)
                if key is not None:
                    symbols.add(key)
    return symbols


@register
class SetIterationOrder(Rule):
    """DET-005: iterating a bare ``set`` where order matters.

    With string/tuple elements, set iteration order depends on
    ``PYTHONHASHSEED``; when the loop body schedules events or sends
    packets, two runs with the same master seed diverge.  Wrap the
    iterable in ``sorted(...)`` (cheap at simulation scales) or keep a
    list alongside the membership set.
    """

    id = "DET-005"
    name = "set-iteration-order"
    rationale = (
        "Set iteration order is hash-seed dependent; ordering leaks into "
        "event scheduling and breaks run-to-run reproducibility."
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        set_symbols = _set_typed_symbols(module.tree)

        def is_set_expr(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call):
                return _terminal_identifier(node.func) in {"set", "frozenset"}
            if isinstance(node, ast.Name):
                return node.id in set_symbols
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                return f"{node.value.id}.{node.attr}" in set_symbols
            return False

        def emit(node: ast.AST, how: str) -> Finding:
            return self.finding(
                module,
                node,
                f"{how} over a bare set has hash-seed-dependent order; "
                "wrap in sorted(...) or keep an ordered companion list",
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                yield emit(node.iter, "for-loop iteration")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        yield emit(comp.iter, "comprehension iteration")
            elif isinstance(node, ast.Call):
                name = _terminal_identifier(node.func)
                if name in {"list", "tuple", "enumerate"} and node.args and is_set_expr(
                    node.args[0]
                ):
                    yield emit(node.args[0], f"{name}() conversion")


@register
class ModuleLevelCounter(Rule):
    """DET-006: module-level mutable counters in simulation-visible state.

    A counter bound at module scope (``_uid = itertools.count(1)``, or an
    int bumped through ``global``) lives as long as the *process*, not
    the :class:`~repro.sim.engine.Simulator`.  The second scenario built
    in one process starts mid-sequence, so any value that reaches trace
    output, a tie-breaker, or a hash makes back-to-back runs of the same
    seed differ — the bug class fixed by moving the medium's tx uid onto
    the ``RadioMedium`` instance.  The exempted files hold the audited
    exceptions: packet/frame uids must be unique across *all* nodes of a
    run, and their values are proven outcome-invisible (never compared,
    ordered on, or formatted into experiment output; the determinism
    equivalence suite would catch a violation).
    """

    id = "DET-006"
    name = "module-level-counter"
    rationale = (
        "Module-level counters outlive the Simulator: a second run in the "
        "same process starts mid-sequence, breaking same-seed reproducibility "
        "unless the values are provably outcome-invisible."
    )
    exempt_paths = (
        "net/packet.py",      # cross-node packet uids; values outcome-invisible
        "net/mac/frames.py",  # cross-node frame uids; values outcome-invisible
        "tests/*",
        "test_*.py",
        "conftest.py",
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        # (a) ``name = itertools.count(...)`` at module scope.
        module_int_names: Set[str] = set()
        for stmt in module.tree.body:
            targets: Tuple[ast.AST, ...] = ()
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = tuple(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = (stmt.target,), stmt.value
            if value is None:
                continue
            if (
                isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        module_int_names.add(target.id)
            if (
                isinstance(value, ast.Call)
                and _resolve_call_target(module, value.func) == ("itertools", "count")
            ):
                yield self.finding(
                    module,
                    stmt,
                    "module-level itertools.count() outlives the Simulator; "
                    "hold the counter on the owning instance (cf. "
                    "RadioMedium._tx_uid) or audit & exempt this path",
                )
        # (b) ``global name`` + mutation of a module-level int.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Global):
                continue
            for name in node.names:
                if name in module_int_names:
                    yield self.finding(
                        module,
                        node,
                        f"'global {name}' mutates a module-level int counter "
                        "that persists across Simulator instances; move it "
                        "onto the owning object",
                    )


#: Constructors whose module-level result is an (initially empty) mutable
#: mapping — the storage shape of an accumulator/memo cache.  Populated
#: dict *literals* are deliberately not flagged: those are lookup tables.
_CACHE_CONSTRUCTORS = frozenset({"dict", "OrderedDict", "defaultdict", "WeakValueDictionary"})

#: functools decorators/calls that attach process-lifetime memo storage.
_FUNCTOOLS_MEMO = frozenset({"lru_cache", "cache"})


@register
class ModuleLevelMemoCache(Rule):
    """DET-007: module-level mutable memo caches outside ``repro.crypto.cache``.

    The crypto fast path (PR 3) memoizes verification/open results in
    *audited* module-level caches: every stored value is a pure function
    of its key and hits charge the same virtual-time cost as misses, so
    cross-Simulator persistence is provably outcome-invisible, and the
    equivalence suite re-proves it each run.  The same storage pattern
    anywhere else is the DET-006 footgun with a dict instead of a
    counter: state leaking across runs in one process, invisible to the
    RngRegistry, with no proof obligation attached.  Flagged shapes:

    * an *empty* mutable mapping bound at module scope
      (``_cache = {}``, ``dict()``, ``OrderedDict()``, ``defaultdict(..)``)
      — populated dict literals are lookup tables and pass;
    * ``functools.lru_cache`` / ``functools.cache`` anywhere in the
      module (they attach process-lifetime memo storage to a function).

    Either move the cache onto the owning instance, or route it through
    :func:`repro.crypto.cache.memo` where the invariants are enforced
    and hit/miss counters are exported.
    """

    id = "DET-007"
    name = "module-level-memo-cache"
    rationale = (
        "Module-level mutable caches persist across Simulator instances; "
        "unless values are pure functions of keys AND costs are charged "
        "identically on hit and miss (the audited repro.crypto.cache "
        "contract), a second same-seed run in one process diverges."
    )
    exempt_paths = (
        "crypto/cache.py",  # the audited fast-path module itself
        "tests/*",
        "test_*.py",
        "conftest.py",
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        # (a) module-scope empty mutable mappings.
        for stmt in module.tree.body:
            targets: Tuple[ast.AST, ...] = ()
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = tuple(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = (stmt.target,), stmt.value
            if value is None or not targets:
                continue
            if self._is_empty_mutable_mapping(module, value):
                names = ", ".join(
                    t.id for t in targets if isinstance(t, ast.Name)
                ) or "<target>"
                yield self.finding(
                    module,
                    stmt,
                    f"module-level mutable cache '{names}' outlives the "
                    "Simulator; hold it on the owning instance or register "
                    "it via repro.crypto.cache.memo (the audited exception)",
                )
        # (b) functools.lru_cache / functools.cache anywhere — as a call
        # (``@lru_cache(maxsize=..)``) or a bare decorator (``@cache``).
        for node in ast.walk(module.tree):
            refs: Tuple[ast.AST, ...] = ()
            if isinstance(node, ast.Call):
                refs = (node.func,)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Bare decorators only: decorator *calls* are ast.Call
                # nodes and already reported by the branch above.
                refs = tuple(
                    dec for dec in node.decorator_list
                    if not isinstance(dec, ast.Call)
                )
            for ref in refs:
                target = self._functools_memo_target(module, ref)
                if target is not None:
                    yield self.finding(
                        module,
                        node,
                        f"functools.{target} attaches process-lifetime memo "
                        "storage; use repro.crypto.cache.memo (bounded, "
                        "counted, cross-checkable) or an instance-held cache",
                    )

    @staticmethod
    def _functools_memo_target(module: ModuleContext, ref: ast.AST) -> Optional[str]:
        """The ``functools`` memo name ``ref`` resolves to, else ``None``."""
        target = _resolve_call_target(module, ref)
        if target is not None and target[0] == "functools" and target[1] in _FUNCTOOLS_MEMO:
            return target[1]
        return None

    @staticmethod
    def _is_empty_mutable_mapping(module: ModuleContext, value: ast.AST) -> bool:
        if isinstance(value, ast.Dict):
            return not value.keys  # ``{}``; populated literals are tables
        if not isinstance(value, ast.Call):
            return False
        name = _terminal_identifier(value.func)
        if name not in _CACHE_CONSTRUCTORS:
            return False
        # ``dict(existing)`` / ``dict(a=1)`` copies are tables, not caches;
        # ``defaultdict(list)`` takes a factory and is still an empty cache.
        if name == "dict" and (value.args or value.keywords):
            return False
        return True


#: heapq mutators that imply a hand-rolled priority queue.  ``merge`` and
#: ``nsmallest``/``nlargest`` are one-shot selection helpers, not queues,
#: and pass.
_HEAPQ_QUEUE_OPS = frozenset(
    {"heappush", "heappop", "heapify", "heapreplace", "heappushpop"}
)

#: bisect insertion helpers — the sorted-list flavour of the same queue.
_BISECT_INSERT_OPS = frozenset({"insort", "insort_left", "insort_right"})


@register
class AdHocEventQueue(Rule):
    """DET-008: hand-rolled priority queues outside ``repro.sim``.

    The scheduler backends in :mod:`repro.sim.timerwheel` order events by
    the full ``(time, priority, seq)`` key and are proven pop-equivalent
    against each other (cross mode checks every pop).  A side queue built
    from ``heapq`` or ``bisect.insort`` elsewhere re-invents that
    ordering *without* the seq tie-breaker or the equivalence proof:
    same-key entries surface in heap-shape-dependent order, which leaks
    straight into event scheduling and breaks byte-identical traces.
    Schedule through the Simulator instead, or — for genuinely non-event
    ordering, like the spatial index's audited rebucketing horizon — add
    the path to the exemption list with a comment saying why.
    """

    id = "DET-008"
    name = "ad-hoc-event-queue"
    rationale = (
        "heapq/bisect queues outside repro.sim lack the (time, priority, seq) "
        "tie-breaker and the cross-checked equivalence proof; same-key pops "
        "come out in heap-shape order and break byte-identical traces."
    )
    exempt_paths = (
        "sim/*",            # the scheduler backends themselves
        "geo/spatial.py",   # audited: rebucketing horizon heap, keys unique
        "tests/*",
        "test_*.py",
        "conftest.py",
        "benchmarks/*",
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(module, node.func)
            if target is None:
                continue
            mod_name, attr = target
            if mod_name == "heapq" and attr in _HEAPQ_QUEUE_OPS:
                yield self.finding(
                    module,
                    node,
                    f"heapq.{attr}() builds an ad-hoc priority queue without "
                    "the (time, priority, seq) tie-breaker; schedule through "
                    "the Simulator's backend (repro.sim.timerwheel) or audit "
                    "& exempt this path",
                )
            elif mod_name == "bisect" and attr in _BISECT_INSERT_OPS:
                yield self.finding(
                    module,
                    node,
                    f"bisect.{attr}() maintains an ad-hoc sorted queue; "
                    "same-key insertion order is shape-dependent — schedule "
                    "through the Simulator's backend or audit & exempt",
                )


@register
class UnorderedIterationIntoScheduler(Rule):
    """DET-009: project-known unordered iteration inside scheduler-reaching code.

    DET-005 sees a set only when the *same module* types it; an attribute
    assigned ``set()`` in one module and iterated in another, or a helper
    ``def neighbors() -> set`` consumed across a module boundary, slips
    through.  This pass uses the project facts: set-typed attribute names
    and set-returning functions collected over the whole tree, plus the
    call graph's transitive closure over ``schedule``/``call_later``/
    ``emit``.  Iterating such a value anywhere in a function that can
    reach the scheduler or the trace stream makes event/trace order
    hash-seed dependent — exactly the divergence class the Fig. 1 sweeps
    cannot tolerate.  Sites DET-005 already reports (intra-module typed)
    are skipped, so each leak is flagged exactly once.
    """

    id = "DET-009"
    name = "unordered-iteration-into-scheduler"
    rationale = (
        "Iterating a cross-module set inside scheduler-reaching code feeds "
        "hash-seed-dependent order into the event queue or trace stream; "
        "wrap in sorted(...) at the iteration site."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py", "benchmarks/*")

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        if not project.interprocedural:
            return
        facts = project.det_facts
        table = project.symbol_table
        intra = _set_typed_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = table.function_for_node(node)
            if info is None or info.qualname not in facts.schedulers:
                continue
            for sub in ast.walk(node):
                iters: Tuple[ast.AST, ...] = ()
                how = "for-loop iteration"
                if isinstance(sub, ast.For):
                    iters = (sub.iter,)
                elif isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters = tuple(g.iter for g in sub.generators)
                    how = "comprehension iteration"
                for it in iters:
                    reason = self._unordered_reason(module, table, facts, intra, it)
                    if reason is not None:
                        yield self.finding(
                            module,
                            it,
                            f"{how} over {reason} inside scheduler-reaching "
                            f"'{info.qualname}' leaks hash-seed order into "
                            "event scheduling; wrap in sorted(...)",
                        )

    @staticmethod
    def _unordered_reason(
        module: ModuleContext,
        table,
        facts,
        intra: Set[str],
        it: ast.AST,
    ) -> Optional[str]:
        if isinstance(it, ast.Attribute):
            if it.attr not in facts.set_attrs:
                return None
            # Intra-module typed sites are DET-005's (avoid double report).
            if isinstance(it.value, ast.Name) and f"{it.value.id}.{it.attr}" in intra:
                return None
            return f"project-known set attribute '.{it.attr}'"
        if isinstance(it, ast.Call):
            name = _terminal_identifier(it.func)
            if name in {"sorted", "list", "tuple"}:
                return None
            targets = table.resolve_call(module, it)
            if targets and all(t.qualname in facts.set_returning for t in targets):
                return f"set-returning helper '{name}()'"
        return None


@register
class AddressDependentValue(Rule):
    """DET-010: interpreter heap addresses used as data.

    ``id(obj)`` is a CPython heap address: it differs between runs,
    between processes, and under ASLR — so any value or ordering derived
    from it is irreproducible by construction.  This is precisely the
    ``Trapdoor.ref_bytes()`` fallback bug PR 5 fixed: an object address
    leaked into wire-visible ACK reference bytes, and same-seed runs
    produced different traces.  Flagged shapes: builtin ``id(...)`` used
    as a value, and ``sorted(..., key=id)`` / ``key=hash`` (default
    object ``hash`` is the address shifted).  The analysis package
    itself is exempt: it uses ``id(node)`` only as an in-memory dict
    identity key over one AST, never as persisted or compared data.
    """

    id = "DET-010"
    name = "address-dependent-value"
    rationale = (
        "id() is an interpreter heap address — different every run and "
        "every process; values or orderings derived from it can never be "
        "reproduced from the master seed."
    )
    exempt_paths = (
        "analysis/*",  # id(node) as AST-lifetime dict identity keys only
        # KeyCodec memoizes canonical key nodes by identity (the nodes are
        # pinned for the codec's lifetime); ids never cross the pipe, reach
        # trace output, or order anything — the wire format carries table
        # indices only, and cross-process equivalence is proven by the
        # shard_mode="cross" suite.
        "sim/shard/keycodec.py",
        "tests/*",
        "test_*.py",
        "conftest.py",
        "benchmarks/*",
    )

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "id"
                and func.id not in module.from_imports
                and len(node.args) == 1
                and not node.keywords
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin id() yields an interpreter heap address that "
                    "differs every run (cf. the Trapdoor.ref_bytes fallback "
                    "bug); derive the value from stable contents instead",
                )
                continue
            name = _terminal_identifier(func)
            if name in {"sorted", "sort", "min", "max"}:
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in {"id", "hash"}
                        and keyword.value.id not in module.from_imports
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{name}(key={keyword.value.id}) orders by "
                            "interpreter addresses / hash-seed values; order "
                            "differs between runs — key on stable contents",
                        )


#: Module-scope constructors of (initially empty) non-mapping mutable
#: containers.  Mappings are DET-007's; ints/counters are DET-006's.
_MUTABLE_CONTAINER_CONSTRUCTORS = frozenset({"list", "set", "bytearray", "deque"})


@register
class ModuleLevelMutableState(Rule):
    """DET-011: module-level mutable containers vs. the sharding roadmap.

    The roadmap's sharded distributed simulation runs node partitions in
    separate worker processes.  A module-level list/set accumulates
    state per *process*: each shard gets its own copy, the copies
    diverge, and behavior that silently depended on that state stops
    being a pure function of the master seed — the multi-process
    generalization of DET-006/007.  Flagged: *empty* mutable containers
    bound at module scope (``_pending = []``, ``_seen = set()``,
    ``deque()``, ``bytearray()``).  Populated literals pass — they are
    constant tables.  Hold working state on the Simulator-owned object
    instead, where the shard protocol can replicate it explicitly.
    """

    id = "DET-011"
    name = "module-level-mutable-state"
    rationale = (
        "Module-level mutable containers become divergent per-process "
        "copies under sharded simulation; working state must live on "
        "Simulator-owned objects the shard protocol replicates."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py", "benchmarks/*")

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for stmt in module.tree.body:
            targets: Tuple[ast.AST, ...] = ()
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = tuple(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = (stmt.target,), stmt.value
            if value is None or not targets:
                continue
            if not self._is_empty_mutable_container(value):
                continue
            names = ", ".join(
                t.id for t in targets if isinstance(t, ast.Name)
            ) or "<target>"
            yield self.finding(
                module,
                stmt,
                f"module-level mutable container '{names}' forks into "
                "divergent per-process copies under sharded simulation; "
                "hold working state on a Simulator-owned object",
            )

    @staticmethod
    def _is_empty_mutable_container(value: ast.AST) -> bool:
        if isinstance(value, ast.List):
            return not value.elts  # ``[]``; populated literals are tables
        if not isinstance(value, ast.Call):
            return False
        name = _terminal_identifier(value.func)
        if name not in _MUTABLE_CONTAINER_CONSTRUCTORS:
            return False
        # ``list(existing)`` / ``set(known)`` copies are tables; bare
        # constructors (``deque()``, ``deque(maxlen=8)``) are working state.
        return not value.args


#: ``(module, name)`` call targets that enumerate a directory in
#: filesystem order.
_FS_ENUM_CALLS = frozenset(
    {("os", "listdir"), ("os", "scandir"), ("glob", "glob"), ("glob", "iglob")}
)

#: ``pathlib.Path`` enumeration methods (matched by attribute name — a
#: receiver type is not needed; nothing else in the tree shares them).
_PATH_ENUM_ATTRS = frozenset({"glob", "rglob", "iterdir"})


@register
class UnsortedFilesystemEnumeration(Rule):
    """DET-012: directory listings consumed in filesystem order.

    ``os.listdir`` and friends return entries in on-disk order — ext4,
    tmpfs and APFS all disagree, so scenario loaders, trace mergers and
    the analysis engine itself would process files in machine-dependent
    order.  Every enumeration must pass through ``sorted(...)`` before
    its order can matter (the engine's own ``collect_files`` is the
    pattern).  An enumeration already wrapped in a ``sorted(...)`` call
    within a couple of AST levels passes.
    """

    id = "DET-012"
    name = "unsorted-filesystem-enumeration"
    rationale = (
        "Directory enumeration order is filesystem-dependent; any derived "
        "processing order differs across machines unless sorted(...)."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py", "benchmarks/*")

    #: How many parent links to climb looking for a ``sorted(...)`` wrapper
    #: (covers ``sorted(x.rglob(p))`` and ``sorted(f(e) for e in x.iterdir())``).
    _SORT_SEARCH_LEVELS = 3

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label: Optional[str] = None
            target = _resolve_call_target(module, node.func)
            if target in _FS_ENUM_CALLS:
                label = f"{target[0]}.{target[1]}()"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_ENUM_ATTRS
            ):
                label = f"Path.{node.func.attr}()"
            if label is None or self._sorted_nearby(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"{label} yields entries in filesystem order, which differs "
                "across machines; wrap the enumeration in sorted(...)",
            )

    def _sorted_nearby(self, module: ModuleContext, node: ast.AST) -> bool:
        current: ast.AST = node
        for _ in range(self._SORT_SEARCH_LEVELS):
            parent = module.parent_of(current)
            if parent is None:
                return False
            if isinstance(parent, ast.Call) and (
                _terminal_identifier(parent.func) == "sorted"
            ):
                return True
            current = parent
        return False


def _dotted_call_target(module: ModuleContext, func: ast.AST) -> Optional[str]:
    """Resolve an arbitrarily dotted call to its full import path.

    ``np.random.default_rng`` under ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``default_rng`` under ``from
    numpy.random import default_rng`` resolves the same.  ``None`` when
    the root is not a statically known import.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = module.import_aliases.get(node.id)
    if root is None:
        origin = module.from_imports.get(node.id)
        if origin is None:
            return None
        root = f"{origin[0]}.{origin[1]}"
    parts.append(root)
    return ".".join(reversed(parts))


#: ``numpy.random`` module-level functions that draw from (or reseed) the
#: process-global legacy stream.
_NUMPY_GLOBAL_DRAWS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "bytes", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "exponential", "poisson", "binomial",
        "beta", "gamma", "seed", "set_state", "get_state",
    }
)

#: Sort kinds numpy documents as stable (mergesort is an alias of stable).
_STABLE_SORT_KINDS = frozenset({"stable", "mergesort"})


@register
class NumpyDeterminismEscape(Rule):
    """DET-013: numpy escapes from seed-reproducibility in the hot core.

    The vectorized fast paths (:mod:`repro.geo.vecops`,
    :mod:`repro.geo.spatial_array`) put numpy on the trace-critical
    path, which imports numpy's own determinism footguns:

    * **global-stream draws** — ``np.random.rand()`` et al. are the
      numpy flavour of DET-001: invisible to
      :class:`~repro.sim.rng.RngRegistry`, perturbed by any other
      caller in the process;
    * **unseeded generators** — ``np.random.default_rng()`` /
      ``np.random.RandomState()`` with no seed pull OS entropy
      (DET-002's numpy flavour); a seeded construction passes;
    * **unstable sorts** — ``np.sort`` / ``np.argsort`` default to
      introsort: the relative order of *equal* keys depends on input
      layout, so any downstream use of tied positions (candidate
      ordering, index gathers) silently varies — pass
      ``kind="stable"``;
    * ``np.unique(..., return_index=True)`` — first-occurrence indices
      among equal keys inherit that unstable tie order (plain
      ``np.unique`` only returns the sorted uniques and passes).
    """

    id = "DET-013"
    name = "numpy-determinism-escape"
    rationale = (
        "numpy's global random stream, unseeded generators, and unstable "
        "default sorts make array-path results depend on process history "
        "and input layout instead of the master seed."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py")

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _dotted_call_target(module, node.func)
            if target is None or not target.startswith("numpy."):
                continue
            tail = target[len("numpy."):]
            if tail.startswith("random."):
                attr = tail[len("random."):]
                if attr in _NUMPY_GLOBAL_DRAWS:
                    yield self.finding(
                        module,
                        node,
                        f"numpy.random.{attr}() uses the process-global "
                        "numpy stream; derive a seeded Generator from an "
                        "RngRegistry stream instead",
                    )
                elif attr in {"default_rng", "RandomState"} and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        f"unseeded numpy.random.{attr}() draws OS entropy; "
                        "seed it from an RngRegistry stream",
                    )
            elif tail in {"sort", "argsort"}:
                if not self._has_stable_kind(node):
                    yield self.finding(
                        module,
                        node,
                        f"numpy.{tail}() defaults to an unstable sort — "
                        "equal-key order depends on input layout; pass "
                        'kind="stable"',
                    )
            elif tail == "unique" and self._passes_true(node, "return_index"):
                yield self.finding(
                    module,
                    node,
                    "numpy.unique(return_index=True) reports first-"
                    "occurrence indices through an unstable sort; equal-key "
                    "winners depend on input layout — compute indices with a "
                    'stable argsort (kind="stable") instead',
                )

    @staticmethod
    def _has_stable_kind(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
                return keyword.value.value in _STABLE_SORT_KINDS
        return False

    @staticmethod
    def _passes_true(node: ast.Call, arg: str) -> bool:
        for keyword in node.keywords:
            if keyword.arg == arg and isinstance(keyword.value, ast.Constant):
                return keyword.value.value is True
        return False


#: Names whose dicts look like per-process shard plumbing.
_SHARD_DICT_HINT = re.compile(
    r"shard|worker|queue|pending|inbox|mailbox|ghost|conn", re.IGNORECASE
)

#: Terminal call names that feed the event scheduler (or an ordered
#: merge of per-shard streams) from a loop body.
_SCHEDULER_SINKS = frozenset(
    {"schedule", "schedule_at", "call_later", "emit", "heappush", "heapreplace", "merge"}
)

#: ``time`` module functions whose values are per-process wall readings.
_WALL_TIMERS = frozenset(
    {
        "perf_counter", "monotonic", "process_time", "thread_time",
        "perf_counter_ns", "monotonic_ns", "process_time_ns", "thread_time_ns",
        "time", "time_ns",
    }
)

#: Per-process identity calls — different in every shard worker.
_PROCESS_IDENTITY = {
    ("os", "getpid"): "os.getpid()",
    ("os", "getppid"): "os.getppid()",
    ("multiprocessing", "current_process"): "multiprocessing.current_process()",
    ("threading", "get_ident"): "threading.get_ident()",
}

#: Receiver-side attribute calls that mark a value as having crossed a
#: pickle boundary (worker pipes / queues).
_PICKLE_RECV_ATTRS = frozenset({"recv", "recv_bytes", "get", "get_nowait"})

#: Object-name shapes we trust to be pipe/queue endpoints for ``.get``
#: (plain ``.recv`` is distinctive enough on its own).
_ENDPOINT_HINT = re.compile(r"conn|pipe|queue|sock|chan", re.IGNORECASE)


def _symbol_key(target: ast.AST) -> Optional[str]:
    """``name`` for locals, ``self.attr``-style dotted keys for attributes."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return f"{target.value.id}.{target.attr}"
    return None


def _is_dict_annotation(annotation: ast.AST) -> bool:
    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    return _terminal_identifier(base) in {
        "dict", "Dict", "Mapping", "MutableMapping", "OrderedDict",
        "defaultdict", "DefaultDict",
    }


def _is_dict_value(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        return _terminal_identifier(value.func) in {"dict", "defaultdict", "OrderedDict"}
    return False


def _is_set_annotation(annotation: ast.AST) -> bool:
    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    return _terminal_identifier(base) in {
        "set", "Set", "frozenset", "FrozenSet", "MutableSet",
    }


def _function_scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(scope, nodes)`` with nested function bodies excluded.

    Each loop/call is attributed to its *nearest* enclosing function (or
    the module itself), so a sink in an outer function never licenses a
    finding inside a nested helper and vice versa.
    """

    def shallow_walk(root: ast.AST) -> List[ast.AST]:
        out: List[ast.AST] = []
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    yield tree, shallow_walk(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, shallow_walk(node)


@register
class MultiprocessingOrderEscape(Rule):
    """DET-014: nondeterminism sneaking in through the shard boundary.

    The sharded engine (:mod:`repro.sim.shard`) moves simulation state
    across process boundaries; three patterns silently break the
    byte-identical guarantee there:

    * **shard/queue dict iteration feeding the scheduler** — a dict
      populated per-process (ghost buffers, per-shard queues, worker
      connection maps) preserves *its own* insertion order, which is
      message-arrival order, not simulation order.  A loop over such a
      dict that reaches ``schedule``/``emit``/``heappush``/``merge``
      replays arrival order into the event queue — iterate
      ``sorted(...)`` by a deterministic key instead;
    * **per-process identity / wall timers as state** — ``os.getpid()``
      et al. differ in every worker, and wall timers
      (``time.monotonic``...) differ between any two runs; either one
      assigned onto an object attribute (or passed to a scheduling
      call) forks shard state the single engine never sees.  Local
      wallclock measurement (``t0 = time.perf_counter()``) stays legal:
      measuring a run is fine, feeding the measurement back in is not;
    * **unpickled-set iteration** — a set rehydrated by ``pickle`` on
      the far side of a worker pipe is re-inserted element-by-element
      into a fresh table under the *receiving* process's hash seed, so
      its iteration order need not match the sender's — sort on
      receipt.
    """

    id = "DET-014"
    name = "multiprocessing-order-escape"
    rationale = (
        "Per-process insertion order, process identity, wall timers, and "
        "rehydrated-set layout all differ between shard workers; any of "
        "them reaching the scheduler desynchronizes shards from the "
        "single-engine trace."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py")

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        shardish_dicts = self._shardish_dict_symbols(module.tree)
        unpickled = self._unpickled_symbols(module)
        set_typed: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
                key = _symbol_key(node.target)
                if key is not None:
                    set_typed.add(key)

        for _scope, nodes in _function_scopes(module.tree):
            has_sink = any(
                isinstance(n, ast.Call)
                and _terminal_identifier(n.func) in _SCHEDULER_SINKS
                for n in nodes
            )
            for n in nodes:
                iters: List[ast.AST] = []
                if isinstance(n, ast.For):
                    iters.append(n.iter)
                elif isinstance(n, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(comp.iter for comp in n.generators)
                for it in iters:
                    if has_sink and self._is_shardish_dict_iter(it, shardish_dicts):
                        yield self.finding(
                            module,
                            it,
                            f"iteration over dict '{self._iter_label(it)}' feeds "
                            "the scheduler in per-process insertion (message-"
                            "arrival) order; iterate sorted(...) by a "
                            "deterministic key",
                        )
                    if self._is_unpickled_set_iter(it, module, unpickled, set_typed):
                        yield self.finding(
                            module,
                            it,
                            "iterating a set that crossed a pickle boundary: "
                            "the receiving process rehydrates it under its own "
                            "hash seed, so order need not match the sender's — "
                            "sort on receipt",
                        )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = _resolve_call_target(module, node.func)
                label = _PROCESS_IDENTITY.get(target) if target else None
                if label is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{label} is per-process identity — it differs in "
                        "every shard worker; derive identity from the shard "
                        "index in the config instead",
                    )
            elif isinstance(node, ast.Assign) and self._is_wall_timer(module, node.value):
                if any(isinstance(t, ast.Attribute) for t in node.targets):
                    yield self.finding(
                        module,
                        node,
                        "wall-timer reading assigned onto object state: the "
                        "value differs per process/run and leaks into the "
                        "simulation; keep timers in locals and report them as "
                        "measurements only",
                    )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_identifier(node.func) not in _SCHEDULER_SINKS:
                continue
            for arg in node.args:
                if self._is_wall_timer(module, arg):
                    yield self.finding(
                        module,
                        node,
                        "wall-timer reading passed to a scheduling call; "
                        "event times must come from sim.now, never the host "
                        "clock",
                    )

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _shardish_dict_symbols(tree: ast.Module) -> Set[str]:
        symbols: Set[str] = set()
        for node in ast.walk(tree):
            targets: Tuple[ast.AST, ...] = ()
            if isinstance(node, ast.AnnAssign) and _is_dict_annotation(node.annotation):
                targets = (node.target,)
            elif isinstance(node, ast.Assign) and _is_dict_value(node.value):
                targets = tuple(node.targets)
            for target in targets:
                key = _symbol_key(target)
                if key is not None and _SHARD_DICT_HINT.search(key):
                    symbols.add(key)
        return symbols

    @staticmethod
    def _iter_label(it: ast.AST) -> str:
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            it = it.func.value
        return _symbol_key(it) or "<dict>"

    @staticmethod
    def _is_shardish_dict_iter(it: ast.AST, symbols: Set[str]) -> bool:
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            if it.func.attr in {"values", "items", "keys"}:
                it = it.func.value
            else:
                return False
        key = _symbol_key(it)
        return key is not None and key in symbols

    def _unpickled_symbols(self, module: ModuleContext) -> Set[str]:
        symbols: Set[str] = set()
        for node in ast.walk(module.tree):
            value: Optional[ast.AST] = None
            targets: Tuple[ast.AST, ...] = ()
            if isinstance(node, ast.Assign):
                targets, value = tuple(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            if value is None or not self._is_pickle_boundary(module, value):
                continue
            for target in targets:
                key = _symbol_key(target)
                if key is not None:
                    symbols.add(key)
        return symbols

    @staticmethod
    def _is_pickle_boundary(module: ModuleContext, value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        target = _resolve_call_target(module, value.func)
        if target == ("pickle", "loads"):
            return True
        if isinstance(value.func, ast.Attribute):
            attr = value.func.attr
            if attr in {"recv", "recv_bytes"}:
                return True
            if attr in {"get", "get_nowait"}:
                base = _symbol_key(value.func.value)
                return bool(base and _ENDPOINT_HINT.search(base))
        return False

    def _is_unpickled_set_iter(
        self,
        it: ast.AST,
        module: ModuleContext,
        unpickled: Set[str],
        set_typed: Set[str],
    ) -> bool:
        # ``for x in set(conn.recv()):`` — rebuilt set, rehydrated members.
        if (
            isinstance(it, ast.Call)
            and _terminal_identifier(it.func) in {"set", "frozenset"}
            and it.args
            and self._is_pickle_boundary(module, it.args[0])
        ):
            return True
        key = _symbol_key(it)
        return key is not None and key in unpickled and key in set_typed

    @staticmethod
    def _is_wall_timer(module: ModuleContext, value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        target = _resolve_call_target(module, value.func)
        return target is not None and target[0] == "time" and target[1] in _WALL_TIMERS


#: ``ShardPlane`` internals: a subscript store through
#: ``<...>plane._fields[...]`` / ``._epochs[...]`` is a plane write even
#: in modules that never constructed the views themselves.
_PLANE_INTERNALS = frozenset({"_fields", "_epochs"})

#: Symbol-name hint marking an object as a shard plane (``plane``,
#: ``self.plane``, ``shard_plane`` ...) for the attribute-chain check.
_PLANE_NAME_HINT = re.compile(r"plane", re.IGNORECASE)

#: ndarray methods that mutate the array in place.
_NDARRAY_MUTATORS = frozenset({"fill", "sort", "partition", "put", "itemset", "resize"})


@register
class SharedPlaneWriteEscape(Rule):
    """DET-015: shared-memory array writes outside the publication helper.

    The shared position plane (:mod:`repro.sim.shard.shmplane`) is
    race-free by *protocol*, not by locking: shard ``i`` writes only its
    owned rows, only from :meth:`ShardPlane.publish_legs`, strictly
    before sending its round reply, and the coordinator reads only after
    receiving that reply — the pipe message is the happens-before edge.
    A write from any other site has no such edge; it can interleave with
    a coordinator read (torn position resolution, silent trace
    divergence) or with another shard's publication.  Flagged shapes:

    * a subscript store / augmented store into an ``np.ndarray`` view
      constructed over a shared buffer (``np.ndarray(..., buffer=...)``),
      into an alias of one, or into a container that holds them;
    * the same store through :class:`ShardPlane` internals reached from
      outside — ``plane._fields["ox"][ids] = ...`` or
      ``self.plane._epochs[i] = ...``;
    * in-place ndarray mutators (``.fill``/``.sort``/``.put``...) and
      ``np.copyto(dst, ...)`` aimed at any of the above.

    The two sanctioned sites are ``ShardPlane.__init__`` (pre-fork
    initialisation — no reader exists yet) and
    ``ShardPlane.publish_legs`` (the epoch-barrier helper).  Everything
    else must hand rows to ``publish_legs`` instead.
    """

    id = "DET-015"
    name = "shared-plane-write-escape"
    rationale = (
        "The shared position plane is race-free only because every write "
        "goes through the epoch-barrier publication helper before the "
        "worker's round reply; a write anywhere else has no "
        "happens-before edge to the coordinator's reads and can tear a "
        "position resolution or desynchronize shards."
    )
    exempt_paths = ("tests/*", "test_*.py", "conftest.py")

    _SANCTUARY_CLASS = "ShardPlane"
    _SANCTUARY_FUNCS = frozenset({"__init__", "publish_legs"})

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        backed, containers = self._shm_symbols(module.tree)
        for node in ast.walk(module.tree):
            targets: Tuple[ast.AST, ...] = ()
            if isinstance(node, ast.Assign):
                targets = tuple(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                if self._is_plane_expr(target.value, backed, containers):
                    if not self._in_sanctuary(module, node):
                        yield self.finding(
                            module,
                            node,
                            f"write to shared-memory-backed array "
                            f"'{self._label(target.value)}' outside "
                            "ShardPlane.publish_legs; plane rows may only "
                            "be published through the epoch-barrier helper",
                        )
                    break
            if not isinstance(node, ast.Call):
                continue
            victim: Optional[ast.AST] = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _NDARRAY_MUTATORS
                and self._is_plane_expr(node.func.value, backed, containers)
            ):
                victim = node.func.value
            elif (
                _terminal_identifier(node.func) == "copyto"
                and node.args
                and self._is_plane_expr(node.args[0], backed, containers)
            ):
                victim = node.args[0]
            if victim is not None and not self._in_sanctuary(module, node):
                yield self.finding(
                    module,
                    node,
                    f"in-place mutation of shared-memory-backed array "
                    f"'{self._label(victim)}' outside "
                    "ShardPlane.publish_legs; plane rows may only be "
                    "published through the epoch-barrier helper",
                )

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _shm_symbols(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """``(backed, containers)`` symbol keys, to an alias fixpoint.

        ``backed`` holds symbols bound to an ndarray view over a shared
        buffer (``np.ndarray(..., buffer=...)``) or aliased from one;
        ``containers`` holds symbols that had a backed value stored under
        a subscript (``self._fields[field] = view``) or were aliased
        from such a container (``fields = self._fields``).
        """
        backed: Set[str] = set()
        containers: Set[str] = set()
        for _ in range(4):  # alias chains are short; 4 passes reach fixpoint
            grew = len(backed) + len(containers)
            for node in ast.walk(tree):
                targets: Tuple[ast.AST, ...] = ()
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets, value = tuple(node.targets), node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = (node.target,), node.value
                if value is None:
                    continue
                value_key = _symbol_key(value)
                is_view = (
                    isinstance(value, ast.Call)
                    and _terminal_identifier(value.func) == "ndarray"
                    and any(kw.arg == "buffer" for kw in value.keywords)
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        # ``cont[key] = view`` marks ``cont`` as a container.
                        cont_key = _symbol_key(target.value)
                        if cont_key is not None and (
                            is_view or (value_key is not None and value_key in backed)
                        ):
                            containers.add(cont_key)
                        continue
                    key = _symbol_key(target)
                    if key is None:
                        continue
                    if is_view or (value_key is not None and value_key in backed):
                        backed.add(key)
                    elif value_key is not None and value_key in containers:
                        containers.add(key)
            if len(backed) + len(containers) == grew:
                break
        return backed, containers

    @staticmethod
    def _is_plane_expr(expr: ast.AST, backed: Set[str], containers: Set[str]) -> bool:
        """Is ``expr`` a shared-memory-backed array (or a row of one)?"""
        while isinstance(expr, ast.Subscript):
            base_key = _symbol_key(expr.value)
            if base_key is not None and base_key in containers:
                return True
            expr = expr.value
        # A bare container symbol is the dict *holding* views, not a
        # view: ``cont[k] = view`` is a dict store and passes; only a
        # deeper subscript (``cont[k][ids] = ...``) reaches the array.
        key = _symbol_key(expr)
        if key is not None and key in backed:
            return True
        # ShardPlane internals reached from outside the class:
        # ``plane._fields`` / ``self.plane._epochs``.
        if isinstance(expr, ast.Attribute) and expr.attr in _PLANE_INTERNALS:
            root = expr.value
            label = _symbol_key(root) or _terminal_identifier(root) or ""
            if isinstance(root, ast.Attribute) and _symbol_key(root) is None:
                label = root.attr
            return bool(_PLANE_NAME_HINT.search(label))
        return False

    def _in_sanctuary(self, module: ModuleContext, node: ast.AST) -> bool:
        """Is ``node`` inside ``ShardPlane.__init__``/``publish_legs``?"""
        func: Optional[ast.AST] = None
        cur: Optional[ast.AST] = node
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)) and func is None:
                func = cur
            elif isinstance(cur, ast.ClassDef):
                return (
                    func is not None
                    and cur.name == self._SANCTUARY_CLASS
                    and func.name in self._SANCTUARY_FUNCS
                )
            cur = module.parent_of(cur)
        return False

    @staticmethod
    def _label(expr: ast.AST) -> str:
        while isinstance(expr, ast.Subscript):
            expr = expr.value
        return _symbol_key(expr) or _terminal_identifier(expr) or "<array>"
