"""Text, JSON and SARIF reporters for analysis results.

Text output is the human/CI-log format (``path:line:col: RULE message``,
ruff-style); JSON is the machine format the CI gate and any dashboards
consume; SARIF 2.1.0 is the interchange format code-scanning UIs ingest
(GitHub code scanning renders it as inline PR annotations).  All carry
the same findings in the same (sorted) order.
"""

from __future__ import annotations

import json
from typing import IO, List

from repro.analysis.core import ANALYSIS_VERSION, Finding, registry
from repro.analysis.engine import AnalysisResult

__all__ = ["render_text", "render_json", "render_sarif", "write_report"]

JSON_SCHEMA_VERSION = 2

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """``file:line:col: RULE-ID message`` lines plus a summary."""
    lines = []
    for finding in (*result.errors, *result.findings):
        lines.append(f"{finding.location()}: {finding.rule_id} {finding.message}")
    if verbose and result.suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule_id} [suppressed] {finding.message}"
            )
    total = len(result.findings)
    summary = (
        f"{result.files_analyzed} files analyzed: "
        f"{total} finding{'s' if total != 1 else ''}"
        f", {len(result.suppressed)} suppressed"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.errors:
        summary += f", {len(result.errors)} unparseable"
    if result.cache_hits or result.cache_misses:
        summary += f" [cache: {result.cache_hits} hits, {result.cache_misses} misses]"
    if total:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule().items()
        )
        summary += f" ({by_rule})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report (sorted findings, versioned shape)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "analysis_version": ANALYSIS_VERSION,
        "files_analyzed": result.files_analyzed,
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressed": [finding.as_dict() for finding in result.suppressed],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "errors": [finding.as_dict() for finding in result.errors],
        "counts": result.counts_by_rule(),
        "cache": {"hits": result.cache_hits, "misses": result.cache_misses},
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(finding: Finding, level: str) -> dict:
    return {
        "ruleId": finding.rule_id,
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0: rules catalog + results, suppressed/baselined marked.

    Baselined findings are emitted at ``note`` level (visible but not
    gating); suppressed findings carry an ``inSource`` suppression object
    so viewers show them struck through rather than hiding them.
    """
    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.name.replace("-", " ")},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in registry
    ]
    results: List[dict] = []
    for finding in result.errors:
        results.append(_sarif_result(finding, "error"))
    for finding in result.findings:
        results.append(_sarif_result(finding, "error"))
    for finding in result.baselined:
        results.append(_sarif_result(finding, "note"))
    for finding in result.suppressed:
        row = _sarif_result(finding, "note")
        row["suppressions"] = [{"kind": "inSource"}]
        results.append(row)
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": ANALYSIS_VERSION,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """``--list-rules`` output: one line per registered rule."""
    lines = []
    for rule in registry:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.rationale}")
        if rule.exempt_paths:
            lines.append(f"    exempt: {', '.join(rule.exempt_paths)}")
    return "\n".join(lines)


def write_report(result: AnalysisResult, fmt: str, stream: IO[str]) -> None:
    if fmt == "json":
        stream.write(render_json(result) + "\n")
    elif fmt == "sarif":
        stream.write(render_sarif(result) + "\n")
    elif fmt == "text":
        stream.write(render_text(result) + "\n")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown format {fmt!r}")
