"""Text and JSON reporters for analysis results.

Text output is the human/CI-log format (``path:line:col: RULE message``,
ruff-style); JSON is the machine format the CI gate and any dashboards
consume.  Both carry the same findings in the same (sorted) order.
"""

from __future__ import annotations

import json
from typing import IO

from repro.analysis.core import registry
from repro.analysis.engine import AnalysisResult

__all__ = ["render_text", "render_json", "write_report"]

JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """``file:line:col: RULE-ID message`` lines plus a summary."""
    lines = []
    for finding in (*result.errors, *result.findings):
        lines.append(f"{finding.location()}: {finding.rule_id} {finding.message}")
    if verbose and result.suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule_id} [suppressed] {finding.message}"
            )
    total = len(result.findings)
    summary = (
        f"{result.files_analyzed} files analyzed: "
        f"{total} finding{'s' if total != 1 else ''}"
        f", {len(result.suppressed)} suppressed"
    )
    if result.errors:
        summary += f", {len(result.errors)} unparseable"
    if total:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule().items()
        )
        summary += f" ({by_rule})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report (sorted findings, versioned shape)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_analyzed": result.files_analyzed,
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressed": [finding.as_dict() for finding in result.suppressed],
        "errors": [finding.as_dict() for finding in result.errors],
        "counts": result.counts_by_rule(),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """``--list-rules`` output: one line per registered rule."""
    lines = []
    for rule in registry:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.rationale}")
        if rule.exempt_paths:
            lines.append(f"    exempt: {', '.join(rule.exempt_paths)}")
    return "\n".join(lines)


def write_report(result: AnalysisResult, fmt: str, stream: IO[str]) -> None:
    if fmt == "json":
        stream.write(render_json(result) + "\n")
    elif fmt == "text":
        stream.write(render_text(result) + "\n")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown format {fmt!r}")
