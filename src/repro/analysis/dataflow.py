"""Label-based taint dataflow shared by summaries and the ANON rules.

The PR 1 taint walk answered one boolean question per expression: *does
this carry a seed?*  Interprocedural analysis needs a slightly richer
answer — *whose* taint does it carry — so function summaries can be
parametric in their arguments (``def wrap(x): return [x]`` propagates
whatever ``x`` carries, it is not tainted per se).  Taint is therefore a
small set of labels:

* ``"seed"`` — the expression carries an actual identity/MAC seed
  (``node.identity``, a project-wide tainted field, an injected tainted
  parameter, a call summarized as seed-returning);
* ``"param:<name>"`` — the expression's taint is whatever the enclosing
  function's parameter ``<name>`` carries (only used while *computing*
  summaries; at check time parameters are either tainted or not).

:class:`SeedSpec` captures one seed family (identity for ANON-001, MAC
addresses for ANON-002) as data, so the same machinery serves both.
Sanitizer calls (trapdoor sealing, ``make_index``, hashing, signing,
encryption) erase every label — the paper-sanctioned cleansing set is
unchanged from PR 1 and lives here so both layers agree on it.

Evaluation mirrors the PR 1 walker's conservative shape: any construct
it does not understand unions the labels of its children, and an
*unresolved* call taints its result if any argument (or the receiver)
is tainted.  A call resolved to an analyzed function with a summary is
where precision is gained: the summary says exactly which parameters
flow to the return value, and a summary with no return labels cleanses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.analysis.callgraph import FunctionInfo, SymbolTable, terminal_name
from repro.analysis.core import ModuleContext

__all__ = [
    "SANITIZERS",
    "SEED",
    "ClassEnv",
    "LabelEvaluator",
    "SeedSpec",
    "bind_call_args",
    "param_label",
]

#: Call targets (terminal names) whose *result* no longer carries taint:
#: the paper-sanctioned ways an identity may be transformed before it is
#: put on the wire.
SANITIZERS = frozenset(
    {
        "seal",            # TrapdoorFactory.seal -> trapdoor ciphertext
        "make_index",      # ALS encrypted index h(A|B) / E_B(A|B)
        "sha256",
        "sha256_hex",
        "hmac_sha256",     # keyed hash: the pseudonym derivation n = h(pr, id)
        "derive_pseudonym",
        "fingerprint",
        "derive_seed",
        "home_cells",      # grid cells derived from an identity via SHA-256
        "center_of",
        "encrypt",
        "encrypt_hybrid",
        "sign",
        "sign_hello",
        "ring_sign",
        "hash",
        "ref_bytes",
        "len",
    }
)

#: The concrete-taint label.
SEED = "seed"

#: Attribute names that keep taint when read off a tainted record: a
#: position keyed by identity is exactly the (identity, location)
#: doublet the paper hides; a timestamp on the same record is not.
LINKED_EXACT = frozenset({"position", "location", "loc"})
LINKED_SUFFIXES = ("_position", "_location", "_loc")

_EMPTY: FrozenSet[str] = frozenset()


def param_label(name: str) -> str:
    return f"param:{name}"


@dataclass(frozen=True)
class SeedSpec:
    """One taint family: what counts as a seed, by name and by call."""

    attr_exact: FrozenSet[str]
    attr_suffixes: Tuple[str, ...]
    param_names: FrozenSet[str]
    calls: FrozenSet[str]
    what: str = "identity"

    def name_matches(self, name: str) -> bool:
        lowered = name.lower()
        return lowered in self.attr_exact or lowered.endswith(self.attr_suffixes)


class ClassEnv:
    """Best-effort local typing: which analyzed class does a name hold?

    Sources, in priority order: ``self``/``cls`` inside a method, a
    parameter annotation naming an analyzed class, an assignment from a
    constructor call (``hdr = RouteHeader(...)``), and an assignment
    from a call whose summary records a ``returns_class``.
    """

    def __init__(
        self,
        module: ModuleContext,
        table: SymbolTable,
        scope: ast.AST,
        enclosing_class: Optional[str] = None,
        returns_class: Optional[Mapping[str, Optional[str]]] = None,
    ) -> None:
        self.module = module
        self.table = table
        self.enclosing_class = enclosing_class
        self._vars: Dict[str, str] = {}
        returns_class = returns_class or {}

        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.annotation is None:
                    continue
                ann = terminal_name(
                    arg.annotation.value
                    if isinstance(arg.annotation, ast.Subscript)
                    else arg.annotation
                )
                if ann is None:
                    continue
                cinfo = table.resolve_class(module, ann)
                if cinfo is not None:
                    self._vars[arg.arg] = cinfo.qualname

        # Assignments anywhere in the scope (flow-insensitive, like the
        # taint walk): last writer wins deterministically by line order.
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            cls = self._class_of_call(node.value, returns_class)
            if cls is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._vars[target.id] = cls

    @property
    def vars(self) -> Dict[str, str]:
        """``local name -> class qualname`` (read-only view for rules)."""
        return self._vars

    def _class_of_call(
        self, call: ast.Call, returns_class: Mapping[str, Optional[str]]
    ) -> Optional[str]:
        name = terminal_name(call.func)
        if name is None:
            return None
        cinfo = self.table.resolve_class(self.module, name)
        if cinfo is not None:
            return cinfo.qualname
        for target in self.table.resolve_call(
            self.module, call, enclosing_class=self.enclosing_class
        ):
            cls = returns_class.get(target.qualname)
            if cls is not None:
                return cls
        return None

    def class_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                return self.enclosing_class
            return self._vars.get(node.id)
        if isinstance(node, ast.Call):
            return self._class_of_call(node, {})
        return None


def bind_call_args(info: FunctionInfo, call: ast.Call) -> Dict[str, ast.AST]:
    """Map callee parameter names to the caller's argument expressions.

    Methods called through an attribute (``obj.m(a)``) skip the ``self``
    slot; ``*args``/``**kwargs`` splats are ignored (the conservative
    call fallback covers them).
    """
    params = info.params()
    if info.is_method and isinstance(call.func, ast.Attribute) and params:
        params = params[1:]
    bound: Dict[str, ast.AST] = {}
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        if position < len(params):
            bound[params[position]] = arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            bound[keyword.arg] = keyword.value
    return bound


class LabelEvaluator:
    """Expression → taint-label set, under one seed family.

    ``env`` maps in-scope variable names to label sets (parameters get
    ``{"param:<name>"}`` during summary computation, ``{"seed"}`` when a
    call-site injection marked them tainted).  ``summaries`` maps
    qualnames to per-function return-label sets; ``tainted_fields`` is
    the project-wide set of ``(class_qualname, attr)`` pairs known to
    hold seeds.  All three default to empty, which reproduces the PR 1
    intra-function behavior exactly.
    """

    def __init__(
        self,
        module: ModuleContext,
        spec: SeedSpec,
        table: Optional[SymbolTable] = None,
        env: Optional[Mapping[str, FrozenSet[str]]] = None,
        summaries: Optional[Mapping[str, FrozenSet[str]]] = None,
        tainted_fields: Optional[FrozenSet[Tuple[str, str]]] = None,
        class_env: Optional[ClassEnv] = None,
        enclosing_class: Optional[str] = None,
        packet_class_names: FrozenSet[str] = frozenset(),
    ) -> None:
        self.module = module
        self.spec = spec
        self.table = table
        self.env: Dict[str, FrozenSet[str]] = dict(env or {})
        self.summaries = summaries or {}
        self.tainted_fields = tainted_fields or frozenset()
        self.class_env = class_env
        self.enclosing_class = enclosing_class
        self.packet_class_names = packet_class_names

    # ------------------------------------------------------------- plumbing
    def _resolve(self, call: ast.Call) -> Tuple[FunctionInfo, ...]:
        if self.table is None:
            return ()
        return self.table.resolve_call(
            self.module,
            call,
            enclosing_class=self.enclosing_class,
            class_of=self.class_env.class_of if self.class_env is not None else None,
        )

    def _field_is_tainted(self, node: ast.Attribute) -> bool:
        if not self.tainted_fields or self.class_env is None:
            return False
        cls = self.class_env.class_of(node.value)
        if cls is None:
            return False
        return (cls, node.attr) in self.tainted_fields

    # ------------------------------------------------------------ evaluation
    def labels(self, node: ast.AST) -> FrozenSet[str]:
        if isinstance(node, ast.Attribute):
            if self.spec.name_matches(node.attr):
                return frozenset({SEED})
            if self._field_is_tainted(node):
                return frozenset({SEED})
            lowered = node.attr.lower()
            if lowered in LINKED_EXACT or lowered.endswith(LINKED_SUFFIXES):
                return self.labels(node.value)
            return _EMPTY
        if isinstance(node, ast.Name):
            found = self.env.get(node.id, _EMPTY)
            if self.spec.name_matches(node.id):
                found = found | {SEED}
            return found
        if isinstance(node, ast.Call):
            return self._call_labels(node)
        if isinstance(node, ast.BoolOp):
            return self._union(node.values)
        if isinstance(node, ast.BinOp):
            return self.labels(node.left) | self.labels(node.right)
        if isinstance(node, ast.JoinedStr):
            return self._union(
                [v.value for v in node.values if isinstance(v, ast.FormattedValue)]
            )
        if isinstance(node, ast.FormattedValue):
            return self.labels(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._union(node.elts)
        if isinstance(node, ast.Starred):
            return self.labels(node.value)
        if isinstance(node, ast.IfExp):
            return self.labels(node.body) | self.labels(node.orelse)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.labels(node.elt) | self._union([g.iter for g in node.generators])
        if isinstance(node, ast.Subscript):
            return self.labels(node.value)
        if isinstance(node, ast.Await):
            return self.labels(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.labels(node.value)
        return _EMPTY

    def _union(self, nodes: Sequence[ast.AST]) -> FrozenSet[str]:
        out: FrozenSet[str] = _EMPTY
        for node in nodes:
            out = out | self.labels(node)
        return out

    def _is_packet_constructor(self, func_name: Optional[str]) -> bool:
        if func_name is None or not self.packet_class_names:
            return False
        origin = self.module.from_imports.get(func_name)
        if origin is not None:
            func_name = origin[1]
        return func_name in self.packet_class_names

    def _call_labels(self, node: ast.Call) -> FrozenSet[str]:
        func_name = terminal_name(node.func)
        if func_name in SANITIZERS:
            return _EMPTY
        if func_name in self.spec.calls:
            return frozenset({SEED})
        # A constructed packet is a *sink*, not a source: ANON-001/002
        # report tainted constructor args at the construction site, so the
        # resulting object must not re-taint every plumbing helper it is
        # handed to (a deliberately-leaky baseline construction would
        # otherwise cascade taint through generic _route/_consume params).
        # Identity-named *reads* off a packet stay tainted by name.
        if self._is_packet_constructor(func_name):
            return _EMPTY
        targets = self._resolve(node)
        if targets and all(t.qualname in self.summaries for t in targets):
            out: FrozenSet[str] = _EMPTY
            for target in targets:
                out = out | self._summary_labels(target, node)
            return out
        # Opaque call: conservative — taint flows through arguments and
        # the receiver (``identity.encode()``).
        parts: list[ast.AST] = [*node.args, *[kw.value for kw in node.keywords]]
        if isinstance(node.func, ast.Attribute):
            parts.append(node.func.value)
        return self._union(parts)

    def _summary_labels(self, target: FunctionInfo, call: ast.Call) -> FrozenSet[str]:
        summary = self.summaries[target.qualname]
        out: FrozenSet[str] = _EMPTY
        bound: Optional[Dict[str, ast.AST]] = None
        for label in sorted(summary):
            if label == SEED:
                out = out | {SEED}
                continue
            if label.startswith("param:"):
                if bound is None:
                    bound = bind_call_args(target, call)
                pname = label[len("param:") :]
                arg = bound.get(pname)
                if arg is not None:
                    out = out | self.labels(arg)
                elif (
                    target.is_method
                    and isinstance(call.func, ast.Attribute)
                    and target.params()
                    and pname == target.params()[0]
                ):
                    # ``param:self`` — the method propagates taint from
                    # its receiver (``record.format()`` styles).
                    out = out | self.labels(call.func.value)
        return out
