"""Core data model of the static-analysis engine.

The engine is deliberately small: a :class:`Finding` is one diagnostic at
a ``file:line:col``, a :class:`Rule` produces findings for one parsed
module, and the :class:`RuleRegistry` maps rule ids to rule instances.
Project-wide knowledge (e.g. which classes are :class:`~repro.net.packet.
Packet` subclasses across modules) lives in :class:`ProjectContext`,
built once per run before any rule fires.

Rules are *paper-specific*: the DET family mechanizes the determinism
contract of :mod:`repro.sim.rng` (one seed -> bit-identical run), the
ANON family mechanizes the ANT/AGFW invariant that no real node identity
or MAC address reaches a wire-visible packet field (Zhou & Yow, Sec. 3).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "ANALYSIS_VERSION",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "RuleRegistry",
    "registry",
    "register",
]

#: Bumped whenever rule semantics or the dataflow machinery change, so
#: stale incremental-cache entries can never satisfy a newer engine.
ANALYSIS_VERSION = "3-numpy-det"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule fired at a source location."""

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "message": self.message,
        }


class ModuleContext:
    """One parsed module plus the derived lookup structures rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        #: Path as given on the command line (posix separators).
        self.path = PurePosixPath(path).as_posix()
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._parents: Optional[Dict[int, ast.AST]] = None
        self._import_aliases: Optional[Dict[str, str]] = None
        self._from_imports: Optional[Dict[str, Tuple[str, str]]] = None

    # ------------------------------------------------------------ structure
    @property
    def parents(self) -> Dict[int, ast.AST]:
        """Map ``id(node) -> parent node`` for the whole tree (lazy)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(id(node))

    # -------------------------------------------------------------- imports
    def _scan_imports(self) -> None:
        aliases: Dict[str, str] = {}
        from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b
                    aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    from_imports[local] = (node.module, alias.name)
        self._import_aliases = aliases
        self._from_imports = from_imports

    @property
    def import_aliases(self) -> Dict[str, str]:
        """``local name -> module dotted path`` for plain ``import`` statements."""
        if self._import_aliases is None:
            self._scan_imports()
        assert self._import_aliases is not None
        return self._import_aliases

    @property
    def from_imports(self) -> Dict[str, Tuple[str, str]]:
        """``local name -> (module, original name)`` for ``from x import y``."""
        if self._from_imports is None:
            self._scan_imports()
        assert self._from_imports is not None
        return self._from_imports

    def resolves_to_module(self, name: str, module: str) -> bool:
        """Does local ``name`` refer to ``module`` (directly or via alias)?"""
        return self.import_aliases.get(name) == module

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class ProjectContext:
    """Cross-module facts gathered in a pre-pass over every analyzed file.

    The main product is :attr:`packet_classes` — the transitive set of
    class names subclassing :class:`repro.net.packet.Packet` anywhere in
    the analyzed tree.  The ANON rules use it to recognize wire-visible
    constructors even when the class was imported under an alias.
    """

    #: (module, class) pairs that root the packet hierarchy.
    PACKET_ROOTS: Tuple[Tuple[str, str], ...] = (
        ("repro.net.packet", "Packet"),
        ("repro.location.geocast", "LocationAddressed"),
    )

    def __init__(
        self, modules: Iterable[ModuleContext], interprocedural: bool = True
    ) -> None:
        self.modules: List[ModuleContext] = list(modules)
        #: When False, rules fall back to PR 1's per-module behavior:
        #: no symbol table, no summaries, no call-graph passes.  The
        #: regression tests use this to prove the interprocedural engine
        #: catches leaks the intra-function walk provably cannot.
        self.interprocedural = interprocedural
        self.packet_classes: set[str] = {name for _, name in self.PACKET_ROOTS}
        self._symbol_table = None
        self._det_facts = None
        self._summaries: Dict[object, object] = {}
        self._build_packet_table()

    # --------------------------------------------------- interprocedural assets
    @property
    def symbol_table(self):
        """Project-wide symbol table (lazy; see :mod:`.callgraph`)."""
        if self._symbol_table is None:
            from repro.analysis.callgraph import SymbolTable

            self._symbol_table = SymbolTable(self.modules)
        return self._symbol_table

    @property
    def det_facts(self):
        """Ordering facts for the DET call-graph pass (lazy)."""
        if self._det_facts is None:
            from repro.analysis.summaries import DeterminismFacts

            self._det_facts = DeterminismFacts.build(self.modules, self.symbol_table)
        return self._det_facts

    def summaries_for(self, spec):
        """Taint summaries for one :class:`~.dataflow.SeedSpec` (cached)."""
        if spec not in self._summaries:
            from repro.analysis.summaries import ProjectSummaries

            self._summaries[spec] = ProjectSummaries(
                self.modules,
                self.symbol_table,
                spec,
                packet_classes=frozenset(self.packet_classes),
            )
        return self._summaries[spec]

    def _build_packet_table(self) -> None:
        # Collect (class name -> base names as locally written), resolving
        # import aliases (``from repro.net.packet import Packet as _Packet``).
        edges: List[Tuple[str, str]] = []  # (class, resolved base name)
        for module in self.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for base in node.bases:
                    base_name = _terminal_name(base)
                    if base_name is None:
                        continue
                    origin = module.from_imports.get(base_name)
                    if origin is not None:
                        base_name = origin[1]
                    edges.append((node.name, base_name))
        # Fixpoint: pull every class whose (resolved) base is already known.
        changed = True
        while changed:
            changed = False
            for cls, base in edges:
                if base in self.packet_classes and cls not in self.packet_classes:
                    self.packet_classes.add(cls)
                    changed = True

    def is_packet_class(self, module: ModuleContext, local_name: str) -> bool:
        """Is ``local_name`` (as used in ``module``) a known packet class?"""
        origin = module.from_imports.get(local_name)
        if origin is not None:
            local_name = origin[1]
        return local_name in self.packet_classes


def _terminal_name(node: ast.AST) -> Optional[str]:
    """``a.b.C`` -> ``C``; ``C`` -> ``C``; anything else -> None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class Rule:
    """Base class: one named, documented check over a parsed module.

    ``exempt_paths`` are glob patterns (posix, matched right-anchored
    against the path's trailing components) the engine skips the rule for — the mechanism behind the paper-motivated allowlists
    (``crypto/`` may handle identities; ``sim/rng.py`` may construct
    ``random.Random``).  Subclasses override the class attributes.
    """

    id: str = "XXX-000"
    name: str = "unnamed"
    rationale: str = ""
    exempt_paths: Tuple[str, ...] = ()

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def exempts(self, path: str) -> bool:
        # Right-anchored, component-wise matching: ``crypto/*`` exempts any
        # file directly inside a ``crypto`` directory, ``test_*.py`` matches
        # on the basename, and ``*`` never crosses a ``/`` (so a *directory*
        # that merely contains ``test_`` in its name does not exempt files
        # beneath it).
        posix = PurePosixPath(path)
        return any(posix.match(pattern) for pattern in self.exempt_paths)

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )


@dataclass
class RuleRegistry:
    """Id-keyed collection of rule instances."""

    _rules: Dict[str, Rule] = field(default_factory=dict)

    def add(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self._rules.values(), key=lambda r: r.id))

    def __len__(self) -> int:
        return len(self._rules)

    def select(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> List[Rule]:
        """Rules filtered by id or id-prefix (``DET`` selects the family)."""

        def matches(rule: Rule, spec: str) -> bool:
            return rule.id == spec or rule.id.startswith(spec.rstrip("-") + "-")

        rules = list(self)
        if select:
            wanted = list(select)
            rules = [r for r in rules if any(matches(r, s) for s in wanted)]
        if ignore:
            unwanted = list(ignore)
            rules = [r for r in rules if not any(matches(r, s) for s in unwanted)]
        return rules


#: The process-wide registry populated by the rule modules at import time.
registry = RuleRegistry()


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add to the global registry."""
    registry.add(rule_cls())
    return rule_cls
