"""ANON — anonymity-invariant rules.

The paper's core claim (Zhou & Yow, Sec. 3) is that ANT/AGFW keep real
node identities and MAC addresses off the air: packets name the next hop
by *pseudonym*, the destination by *trapdoor*, and every frame goes to
the broadcast address.  Related work (ANAP's spoofing analysis) shows
how easily an "anonymous" protocol leaks identity through an
implementation side channel rather than the design.  These rules
mechanize the invariant with a lightweight intra-function taint walk:

==========  ===========================================================
ANON-001    a node-identity expression (``node.identity``, ``*_identity``
            attributes, certificate ``subject``, ``node_id``) reaches a
            wire-visible ``Packet`` constructor argument or field
ANON-002    a link-layer address (``node.address``, ``mac_for_node``,
            ``MacAddress(...)``) reaches a ``Packet`` field — addresses
            belong to MAC frames, and AGFW frames are broadcast-only
==========  ===========================================================

Taint is *cleansed* by the sanctioned transforms: trapdoor sealing,
ALS encrypted-index construction (``make_index``), hashing, signing and
encryption — the paths the paper itself routes identities through.
``crypto/`` and the trapdoor factory are allowlisted wholesale: their
whole job is handling identities before they are sealed.

Deliberate violations — the GPSR/DLM *baselines* leak identities by
design, that is the comparison the paper draws — carry
``# repro: noqa[ANON-001]`` annotations that double as a catalog of
every cleartext identity field in the codebase.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    register,
)

__all__ = ["IdentityIntoPacket", "MacAddressIntoPacket", "TaintWalker"]

#: Call targets (terminal names) whose *result* no longer carries taint:
#: the paper-sanctioned ways an identity may be transformed before it is
#: put on the wire.
SANITIZERS = frozenset(
    {
        "seal",            # TrapdoorFactory.seal -> trapdoor ciphertext
        "make_index",      # ALS encrypted index h(A|B) / E_B(A|B)
        "sha256",
        "sha256_hex",
        "fingerprint",
        "derive_seed",
        "home_cells",      # grid cells derived from an identity via SHA-256
        "center_of",
        "encrypt",
        "encrypt_hybrid",
        "sign",
        "sign_hello",
        "ring_sign",
        "hash",
        "ref_bytes",
        "len",
    }
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class TaintWalker:
    """Per-function taint propagation for one seed family.

    Flow-insensitive within a function body: a variable assigned a
    tainted expression anywhere taints later uses.  That overshoots
    rarely (reassignment to a clean value) and never under-shoots, which
    is the right trade-off for an invariant checker.
    """

    def __init__(
        self,
        module: ModuleContext,
        project: ProjectContext,
        seed_attr_exact: Sequence[str],
        seed_attr_suffixes: Sequence[str],
        seed_param_names: Sequence[str],
        seed_calls: Sequence[str] = (),
    ) -> None:
        self.module = module
        self.project = project
        self.seed_attr_exact = frozenset(seed_attr_exact)
        self.seed_attr_suffixes = tuple(seed_attr_suffixes)
        self.seed_param_names = frozenset(seed_param_names)
        self.seed_calls = frozenset(seed_calls)
        self.tainted_vars: Set[str] = set()

    # ----------------------------------------------------------- seeding
    def _name_matches(self, name: str) -> bool:
        lowered = name.lower()
        return lowered in self.seed_attr_exact or lowered.endswith(
            tuple(self.seed_attr_suffixes)
        )

    def seed_params(self, func: ast.AST) -> None:
        """Parameters whose *name* marks them as identity-bearing."""
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        args = func.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            if arg.arg in self.seed_param_names or self._name_matches(arg.arg):
                self.tainted_vars.add(arg.arg)

    def propagate(self, nodes: Sequence[ast.AST]) -> None:
        """Fixpoint over simple assignments among the scope's own nodes."""
        assignments: List[Tuple[str, ast.AST]] = []
        for node in nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = self._assignable_name(target)
                    if name is not None:
                        assignments.append((name, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                name = self._assignable_name(node.target)
                if name is not None:
                    assignments.append((name, node.value))
        changed = True
        while changed:
            changed = False
            for name, value in assignments:
                if name not in self.tainted_vars and self.is_tainted(value):
                    self.tainted_vars.add(name)
                    changed = True

    @staticmethod
    def _assignable_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        return None

    # ------------------------------------------------------------ queries
    _LINKED_EXACT = frozenset({"position", "location", "loc"})
    _LINKED_SUFFIXES = ("_position", "_location", "_loc")

    def is_tainted(self, node: ast.AST) -> bool:
        """Does the expression (transitively) carry an identity?"""
        if isinstance(node, ast.Attribute):
            if self._name_matches(node.attr):
                return True
            # Attribute access on a tainted record stays tainted only for
            # the identity-*linked* fields: a position keyed by identity
            # is exactly the (identity, location) doublet the paper hides;
            # a timestamp on the same record is not.
            lowered = node.attr.lower()
            if lowered in self._LINKED_EXACT or lowered.endswith(self._LINKED_SUFFIXES):
                return self.is_tainted(node.value)
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted_vars or self._name_matches(node.id)
        if isinstance(node, ast.Call):
            func_name = _terminal_name(node.func)
            if func_name in SANITIZERS:
                return False
            if func_name in self.seed_calls:
                return True
            parts: List[ast.AST] = [*node.args, *[kw.value for kw in node.keywords]]
            if isinstance(node.func, ast.Attribute):
                # Method on a tainted object: ``identity.encode()``.
                parts.append(node.func.value)
            return any(self.is_tainted(part) for part in parts)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(v) for v in node.values)
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.JoinedStr):
            return any(
                self.is_tainted(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
        if isinstance(node, ast.FormattedValue):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(elt) for elt in node.elts)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.is_tainted(node.elt) or any(
                self.is_tainted(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        return False


def _split_scope(scope: ast.AST) -> Tuple[List[ast.AST], List[ast.AST]]:
    """Partition a scope's subtree into (own nodes, nested function defs).

    Descent stops at nested ``def``s — they form their own taint scope —
    but continues through every other construct (including class bodies,
    so dataclass field defaults are checked at module level).
    """
    own: List[ast.AST] = []
    nested: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(child)
            else:
                own.append(child)
                visit(child)

    visit(scope)
    return own, nested


class _PacketTaintRule(Rule):
    """Shared sink detection: taint reaching packet constructors/fields."""

    #: overridden by concrete rules
    seed_attr_exact: Tuple[str, ...] = ()
    seed_attr_suffixes: Tuple[str, ...] = ()
    seed_param_names: Tuple[str, ...] = ()
    seed_calls: Tuple[str, ...] = ()
    what: str = "identity"

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        # Walk each scope (module, then each function) with its own taint
        # state; nested functions inherit the enclosing scope's taint —
        # closures like AGFW's deferred ``_launch()`` read outer locals.
        yield from self._check_scope(module, project, module.tree, inherited=frozenset())

    def _check_scope(
        self,
        module: ModuleContext,
        project: ProjectContext,
        scope: ast.AST,
        inherited: frozenset,
    ) -> Iterator[Finding]:
        walker = TaintWalker(
            module,
            project,
            self.seed_attr_exact,
            self.seed_attr_suffixes,
            self.seed_param_names,
            self.seed_calls,
        )
        walker.tainted_vars |= inherited
        walker.seed_params(scope)
        own, nested = _split_scope(scope)
        walker.propagate(own)
        packet_vars = self._packet_vars(module, project, own)

        for node in own:
            yield from self._check_node(module, project, node, walker, packet_vars)

        for child in nested:
            yield from self._check_scope(
                module, project, child, inherited=frozenset(walker.tainted_vars)
            )

    def _packet_vars(
        self, module: ModuleContext, project: ProjectContext, nodes: Sequence[ast.AST]
    ) -> Set[str]:
        """Local names bound to packet instances (``p = AgfwData(...)``)."""
        names: Set[str] = set()
        for node in nodes:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = _terminal_name(node.value.func)
            if callee is None or not project.is_packet_class(module, callee):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _check_node(
        self,
        module: ModuleContext,
        project: ProjectContext,
        node: ast.AST,
        walker: TaintWalker,
        packet_vars: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            callee = _terminal_name(node.func)
            is_packet_ctor = callee is not None and project.is_packet_class(module, callee)
            is_clone = callee in {"clone_for_forwarding", "replace"} and isinstance(
                node.func, ast.Attribute
            )
            if is_packet_ctor or is_clone:
                sink = callee if is_packet_ctor else "clone/replace"
                for position, arg in enumerate(node.args):
                    if walker.is_tainted(arg):
                        yield self.finding(
                            module,
                            arg,
                            f"node {self.what} flows into wire-visible "
                            f"{sink}() positional arg {position}; use a "
                            "pseudonym or seal it in a trapdoor",
                        )
                for keyword in node.keywords:
                    if keyword.arg is not None and walker.is_tainted(keyword.value):
                        yield self.finding(
                            module,
                            keyword.value,
                            f"node {self.what} flows into wire-visible "
                            f"{sink}(... {keyword.arg}=...); use a pseudonym "
                            "or seal it in a trapdoor",
                        )
        elif isinstance(node, ast.Assign):
            # ``packet.field = tainted`` on a known packet variable.
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in packet_vars
                    and walker.is_tainted(node.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"node {self.what} assigned to packet field "
                        f"'{target.value.id}.{target.attr}'; wire-visible "
                        "headers must carry pseudonyms or trapdoors",
                    )


@register
class IdentityIntoPacket(_PacketTaintRule):
    """ANON-001: real node identity reaching a wire-visible packet field.

    The ANT invariant: hellos carry ``<pseudonym, location, ts>``, data
    carries ``<loc_d, pseudonym, trapdoor>`` — never ``node.identity``,
    a certificate subject, or anything derived from them, except through
    the sanctioned sealed/hashed forms.
    """

    id = "ANON-001"
    name = "identity-into-packet"
    rationale = (
        "A real identity in a packet field deanonymizes the node to any "
        "sniffer; the paper's design only ever sends pseudonyms, trapdoors, "
        "and encrypted indexes."
    )
    exempt_paths = ("crypto/*", "core/trapdoor.py")

    seed_attr_exact = ("identity", "node_id", "subject")
    seed_attr_suffixes = ("_identity",)
    seed_param_names = ("identity", "subject")
    what = "identity"


@register
class MacAddressIntoPacket(_PacketTaintRule):
    """ANON-002: link-layer address reaching a network-layer packet field.

    AGFW sends every frame to the broadcast address precisely so that no
    real MAC appears on the air; a MAC address inside a *packet* header
    would undo that at the layer above.  Addresses belong to
    :mod:`repro.net.mac.frames`, nowhere else.
    """

    id = "ANON-002"
    name = "mac-address-into-packet"
    rationale = (
        "AGFW transmissions are MAC broadcasts so no station address is "
        "wire-visible; a MacAddress in a packet field reintroduces the "
        "identifier the pseudonym scheme removes."
    )
    exempt_paths = ("crypto/*", "net/mac/*", "net/addresses.py")

    seed_attr_exact = ("address", "mac")
    seed_attr_suffixes = ("_mac", "_address")
    seed_param_names = ("address", "mac")
    seed_calls = ("mac_for_node", "MacAddress")
    what = "MAC address"
