"""ANON — anonymity-invariant rules.

The paper's core claim (Zhou & Yow, Sec. 3) is that ANT/AGFW keep real
node identities and MAC addresses off the air: packets name the next hop
by *pseudonym*, the destination by *trapdoor*, and every frame goes to
the broadcast address.  Related work (ANAP's spoofing analysis) shows
how easily an "anonymous" protocol leaks identity through an
implementation side channel rather than the design — and those side
channels cross function boundaries.  These rules mechanize the
invariant with a taint analysis that is *interprocedural* by default:

==========  ===========================================================
ANON-001    a node-identity expression (``node.identity``, ``*_identity``
            attributes, certificate ``subject``, ``node_id``) reaches a
            wire-visible ``Packet`` constructor argument or field
ANON-002    a link-layer address (``node.address``, ``mac_for_node``,
            ``MacAddress(...)``) reaches a ``Packet`` field — addresses
            belong to MAC frames, and AGFW frames are broadcast-only
==========  ===========================================================

On top of PR 1's per-function walk, the engine consults project-wide
facts from :mod:`repro.analysis.summaries`:

* **function summaries** — a helper that returns its argument (or a
  seed) taints its call sites, so identities laundered through
  ``def make_src(node): return node.identity`` are caught where they
  hit the packet;
* **field taint** — ``(class, attr)`` pairs ever assigned a seed
  anywhere in the project, so an identity stored into a header object
  in one module is still tainted when another module serializes it;
* **call-site injection** — parameters that some caller feeds a tainted
  value (or a packet instance) are tainted (or sink-typed) inside the
  callee, so the leak is flagged even when seed and sink live in
  different modules.

Taint is *cleansed* by the sanctioned transforms: trapdoor sealing,
ALS encrypted-index construction (``make_index``), hashing, signing and
encryption — the paths the paper itself routes identities through.
``crypto/`` and the trapdoor factory are allowlisted wholesale: their
whole job is handling identities before they are sealed.

Deliberate violations — the GPSR/DLM *baselines* leak identities by
design, that is the comparison the paper draws — carry
``# repro: noqa[ANON-001]`` annotations that double as a catalog of
every cleartext identity field in the codebase.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    register,
)
from repro.analysis.dataflow import (
    LINKED_EXACT,
    LINKED_SUFFIXES,
    SANITIZERS,
    SEED,
    ClassEnv,
    LabelEvaluator,
    SeedSpec,
)

__all__ = [
    "IDENTITY_SPEC",
    "MAC_SPEC",
    "IdentityIntoPacket",
    "MacAddressIntoPacket",
    "SANITIZERS",
    "TaintWalker",
]

#: The two seed families, as data (shared with the summary builder).
IDENTITY_SPEC = SeedSpec(
    attr_exact=frozenset({"identity", "node_id", "subject"}),
    attr_suffixes=("_identity",),
    param_names=frozenset({"identity", "subject"}),
    calls=frozenset(),
    what="identity",
)

MAC_SPEC = SeedSpec(
    attr_exact=frozenset({"address", "mac"}),
    attr_suffixes=("_mac", "_address"),
    param_names=frozenset({"address", "mac"}),
    calls=frozenset({"mac_for_node", "MacAddress"}),
    what="MAC address",
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class TaintWalker:
    """Per-scope taint propagation for one seed family.

    Flow-insensitive within a scope: a variable assigned a tainted
    expression anywhere taints later uses.  That overshoots rarely
    (reassignment to a clean value) and never under-shoots, which is
    the right trade-off for an invariant checker.

    In interprocedural mode (:meth:`enable_interproc`) the walker
    delegates expression evaluation to the label dataflow with the
    project's function summaries and field-taint facts attached; in
    intra mode it reproduces PR 1's behavior bit for bit.
    """

    def __init__(
        self,
        module: ModuleContext,
        project: ProjectContext,
        seed_attr_exact: Sequence[str],
        seed_attr_suffixes: Sequence[str],
        seed_param_names: Sequence[str],
        seed_calls: Sequence[str] = (),
    ) -> None:
        self.module = module
        self.project = project
        self.spec = SeedSpec(
            attr_exact=frozenset(seed_attr_exact),
            attr_suffixes=tuple(seed_attr_suffixes),
            param_names=frozenset(seed_param_names),
            calls=frozenset(seed_calls),
        )
        self.tainted_vars: Set[str] = set()
        self._evaluator: Optional[LabelEvaluator] = None
        self._summaries = None
        self._qualname: Optional[str] = None

    # ----------------------------------------------------- interproc wiring
    def enable_interproc(self, scope: ast.AST) -> None:
        """Attach project summaries/class typing for ``scope``."""
        summaries = self.project.summaries_for(self.spec)
        table = self.project.symbol_table
        info = table.function_for_node(scope)
        enclosing_class = info.class_qualname if info is not None else None
        self._qualname = info.qualname if info is not None else None
        self._summaries = summaries
        class_env = ClassEnv(
            self.module,
            table,
            scope,
            enclosing_class=enclosing_class,
            returns_class=summaries.returns_class,
        )
        self._evaluator = LabelEvaluator(
            self.module,
            self.spec,
            table=table,
            env={},
            summaries=summaries.return_labels,
            tainted_fields=summaries.tainted_fields,
            class_env=class_env,
            enclosing_class=enclosing_class,
            packet_class_names=frozenset(self.project.packet_classes),
        )

    @property
    def class_env(self) -> Optional[ClassEnv]:
        return self._evaluator.class_env if self._evaluator is not None else None

    @property
    def injected_params(self) -> FrozenSet[str]:
        """Params some caller feeds a tainted value (callgraph injection)."""
        if self._summaries is None or self._qualname is None:
            return frozenset()
        return self._summaries.tainted_params.get(self._qualname, frozenset())

    @property
    def packet_params(self) -> FrozenSet[str]:
        """Params some caller feeds a wire-visible packet instance."""
        if self._summaries is None or self._qualname is None:
            return frozenset()
        return self._summaries.packet_params.get(self._qualname, frozenset())

    def add_taint(self, name: str) -> None:
        self.tainted_vars.add(name)
        if self._evaluator is not None:
            self._evaluator.env[name] = frozenset({SEED})

    # ----------------------------------------------------------- seeding
    def _name_matches(self, name: str) -> bool:
        return self.spec.name_matches(name)

    def seed_params(self, func: ast.AST) -> None:
        """Parameters tainted by *name* or by call-site injection."""
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        injected = self.injected_params
        args = func.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            if (
                arg.arg in self.spec.param_names
                or self._name_matches(arg.arg)
                or arg.arg in injected
            ):
                self.add_taint(arg.arg)

    def propagate(self, nodes: Sequence[ast.AST]) -> None:
        """Fixpoint over simple assignments among the scope's own nodes."""
        assignments: List[Tuple[str, ast.AST]] = []
        for node in nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = self._assignable_name(target)
                    if name is not None:
                        assignments.append((name, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                name = self._assignable_name(node.target)
                if name is not None:
                    assignments.append((name, node.value))
        changed = True
        while changed:
            changed = False
            for name, value in assignments:
                if name not in self.tainted_vars and self.is_tainted(value):
                    self.add_taint(name)
                    changed = True

    @staticmethod
    def _assignable_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        return None

    # ------------------------------------------------------------ queries
    _LINKED_EXACT = LINKED_EXACT
    _LINKED_SUFFIXES = LINKED_SUFFIXES

    def is_tainted(self, node: ast.AST) -> bool:
        """Does the expression (transitively) carry an identity?"""
        if self._evaluator is not None:
            return SEED in self._evaluator.labels(node)
        return self._is_tainted_intra(node)

    def _is_tainted_intra(self, node: ast.AST) -> bool:
        """PR 1's per-module walk, byte-for-byte (the provable baseline)."""
        if isinstance(node, ast.Attribute):
            if self._name_matches(node.attr):
                return True
            # Attribute access on a tainted record stays tainted only for
            # the identity-*linked* fields: a position keyed by identity
            # is exactly the (identity, location) doublet the paper hides;
            # a timestamp on the same record is not.
            lowered = node.attr.lower()
            if lowered in self._LINKED_EXACT or lowered.endswith(self._LINKED_SUFFIXES):
                return self._is_tainted_intra(node.value)
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted_vars or self._name_matches(node.id)
        if isinstance(node, ast.Call):
            func_name = _terminal_name(node.func)
            if func_name in SANITIZERS:
                return False
            if func_name in self.spec.calls:
                return True
            parts: List[ast.AST] = [*node.args, *[kw.value for kw in node.keywords]]
            if isinstance(node.func, ast.Attribute):
                # Method on a tainted object: ``identity.encode()``.
                parts.append(node.func.value)
            return any(self._is_tainted_intra(part) for part in parts)
        if isinstance(node, ast.BoolOp):
            return any(self._is_tainted_intra(v) for v in node.values)
        if isinstance(node, ast.BinOp):
            return self._is_tainted_intra(node.left) or self._is_tainted_intra(node.right)
        if isinstance(node, ast.JoinedStr):
            return any(
                self._is_tainted_intra(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
        if isinstance(node, ast.FormattedValue):
            return self._is_tainted_intra(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._is_tainted_intra(elt) for elt in node.elts)
        if isinstance(node, ast.Starred):
            return self._is_tainted_intra(node.value)
        if isinstance(node, ast.IfExp):
            return self._is_tainted_intra(node.body) or self._is_tainted_intra(node.orelse)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._is_tainted_intra(node.elt) or any(
                self._is_tainted_intra(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.Subscript):
            return self._is_tainted_intra(node.value)
        return False


def _split_scope(scope: ast.AST) -> Tuple[List[ast.AST], List[ast.AST]]:
    """Partition a scope's subtree into (own nodes, nested function defs).

    Descent stops at nested ``def``s — they form their own taint scope —
    but continues through every other construct (including class bodies,
    so dataclass field defaults are checked at module level).
    """
    own: List[ast.AST] = []
    nested: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(child)
            else:
                own.append(child)
                visit(child)

    visit(scope)
    return own, nested


class _PacketTaintRule(Rule):
    """Shared sink detection: taint reaching packet constructors/fields."""

    #: overridden by concrete rules
    seed_attr_exact: Tuple[str, ...] = ()
    seed_attr_suffixes: Tuple[str, ...] = ()
    seed_param_names: Tuple[str, ...] = ()
    seed_calls: Tuple[str, ...] = ()
    what: str = "identity"

    def check(self, module: ModuleContext, project: ProjectContext) -> Iterator[Finding]:
        # Walk each scope (module, then each function) with its own taint
        # state; nested functions inherit the enclosing scope's taint —
        # closures like AGFW's deferred ``_launch()`` read outer locals.
        yield from self._check_scope(module, project, module.tree, inherited=frozenset())

    def _check_scope(
        self,
        module: ModuleContext,
        project: ProjectContext,
        scope: ast.AST,
        inherited: frozenset,
    ) -> Iterator[Finding]:
        walker = TaintWalker(
            module,
            project,
            self.seed_attr_exact,
            self.seed_attr_suffixes,
            self.seed_param_names,
            self.seed_calls,
        )
        if project.interprocedural:
            walker.enable_interproc(scope)
        for name in sorted(inherited):
            walker.add_taint(name)
        walker.seed_params(scope)
        own, nested = _split_scope(scope)
        walker.propagate(own)
        packet_vars = self._packet_vars(module, project, own, walker)

        for node in own:
            yield from self._check_node(module, project, node, walker, packet_vars)

        for child in nested:
            yield from self._check_scope(
                module, project, child, inherited=frozenset(walker.tainted_vars)
            )

    def _packet_vars(
        self,
        module: ModuleContext,
        project: ProjectContext,
        nodes: Sequence[ast.AST],
        walker: TaintWalker,
    ) -> Set[str]:
        """Local names bound to packet instances (``p = AgfwData(...)``).

        Interprocedural mode adds: parameters that call sites feed packet
        instances, and names whose inferred class (constructor elsewhere,
        annotation, summary ``returns_class``) is a packet class.
        """
        names: Set[str] = set()
        for node in nodes:
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = _terminal_name(node.value.func)
            if callee is None or not project.is_packet_class(module, callee):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        names |= walker.packet_params
        class_env = walker.class_env
        if class_env is not None:
            table = project.symbol_table
            for name in sorted(class_env.vars):
                cinfo = table.classes.get(class_env.vars[name])
                if cinfo is not None and cinfo.name in project.packet_classes:
                    names.add(name)
        return names

    @staticmethod
    def _clones_non_packet(
        node: ast.Call, project: ProjectContext, walker: TaintWalker
    ) -> bool:
        """Is the cloned object *known* to be a non-packet class?

        ``pkt.replace(...)`` clones its receiver; ``dataclasses.replace
        (obj, ...)`` clones its first positional argument.  When the
        class environment types that object as an analyzed class outside
        the packet hierarchy (a Certificate, a config record), the clone
        is not wire-visible and the sink is skipped.  Unknown types stay
        conservative (still a sink) — precision only ever *removes*
        reports the interprocedural typing can justify removing.
        """
        env = walker.class_env
        if env is None or not isinstance(node.func, ast.Attribute):
            return False
        cloned: Optional[ast.AST] = node.func.value
        if (
            isinstance(cloned, ast.Name)
            and cloned.id in walker.module.import_aliases
            and node.args
        ):
            cloned = node.args[0]  # module-style: dataclasses.replace(obj, ...)
        if cloned is None:
            return False
        cls = env.class_of(cloned)
        if cls is None:
            return False
        cinfo = project.symbol_table.classes.get(cls)
        return cinfo is not None and cinfo.name not in project.packet_classes

    def _check_node(
        self,
        module: ModuleContext,
        project: ProjectContext,
        node: ast.AST,
        walker: TaintWalker,
        packet_vars: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            callee = _terminal_name(node.func)
            is_packet_ctor = callee is not None and project.is_packet_class(module, callee)
            is_clone = callee in {"clone_for_forwarding", "replace"} and isinstance(
                node.func, ast.Attribute
            )
            if is_clone and self._clones_non_packet(node, project, walker):
                is_clone = False
            if is_packet_ctor or is_clone:
                sink = callee if is_packet_ctor else "clone/replace"
                for position, arg in enumerate(node.args):
                    if walker.is_tainted(arg):
                        yield self.finding(
                            module,
                            arg,
                            f"node {self.what} flows into wire-visible "
                            f"{sink}() positional arg {position}; use a "
                            "pseudonym or seal it in a trapdoor",
                        )
                for keyword in node.keywords:
                    if keyword.arg is not None and walker.is_tainted(keyword.value):
                        yield self.finding(
                            module,
                            keyword.value,
                            f"node {self.what} flows into wire-visible "
                            f"{sink}(... {keyword.arg}=...); use a pseudonym "
                            "or seal it in a trapdoor",
                        )
        elif isinstance(node, ast.Assign):
            # ``packet.field = tainted`` on a known packet variable.
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in packet_vars
                    and walker.is_tainted(node.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"node {self.what} assigned to packet field "
                        f"'{target.value.id}.{target.attr}'; wire-visible "
                        "headers must carry pseudonyms or trapdoors",
                    )


@register
class IdentityIntoPacket(_PacketTaintRule):
    """ANON-001: real node identity reaching a wire-visible packet field.

    The ANT invariant: hellos carry ``<pseudonym, location, ts>``, data
    carries ``<loc_d, pseudonym, trapdoor>`` — never ``node.identity``,
    a certificate subject, or anything derived from them, except through
    the sanctioned sealed/hashed forms.  Interprocedural: helper
    returns, header-object fields, and tainted call-site arguments are
    tracked across modules.
    """

    id = "ANON-001"
    name = "identity-into-packet"
    rationale = (
        "A real identity in a packet field deanonymizes the node to any "
        "sniffer; the paper's design only ever sends pseudonyms, trapdoors, "
        "and encrypted indexes."
    )
    exempt_paths = ("crypto/*", "core/trapdoor.py")

    seed_attr_exact = tuple(sorted(IDENTITY_SPEC.attr_exact))
    seed_attr_suffixes = IDENTITY_SPEC.attr_suffixes
    seed_param_names = tuple(sorted(IDENTITY_SPEC.param_names))
    what = "identity"


@register
class MacAddressIntoPacket(_PacketTaintRule):
    """ANON-002: link-layer address reaching a network-layer packet field.

    AGFW sends every frame to the broadcast address precisely so that no
    real MAC appears on the air; a MAC address inside a *packet* header
    would undo that at the layer above.  Addresses belong to
    :mod:`repro.net.mac.frames`, nowhere else.
    """

    id = "ANON-002"
    name = "mac-address-into-packet"
    rationale = (
        "AGFW transmissions are MAC broadcasts so no station address is "
        "wire-visible; a MacAddress in a packet field reintroduces the "
        "identifier the pseudonym scheme removes."
    )
    exempt_paths = ("crypto/*", "net/mac/*", "net/addresses.py")

    seed_attr_exact = tuple(sorted(MAC_SPEC.attr_exact))
    seed_attr_suffixes = MAC_SPEC.attr_suffixes
    seed_param_names = tuple(sorted(MAC_SPEC.param_names))
    seed_calls = tuple(sorted(MAC_SPEC.calls))
    what = "MAC address"
