"""Analysis driver: file collection, rule dispatch, suppression filtering.

The engine is deterministic by construction (it must survive its own
DET rules): files are discovered in sorted order, findings are sorted
before reporting, and nothing reads the wall clock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    registry,
)
from repro.analysis.suppress import collect_suppressions, split_suppressed

# Imported for the side effect of registering the rule families.
from repro.analysis import det_rules as _det_rules  # noqa: F401
from repro.analysis import anon_rules as _anon_rules  # noqa: F401

__all__ = ["AnalysisResult", "analyze_paths", "collect_files", "run_rules"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}


@dataclass
class AnalysisResult:
    """Everything one run produced, ready for a reporter."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings, 2 parse/usage errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    ordered: List[Path] = []

    def add(path: Path) -> None:
        if path not in seen:
            seen.add(path)
            ordered.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    add(candidate)
        elif path.suffix == ".py":
            add(path)
    return ordered


def _parse_modules(
    files: Iterable[Path], errors: List[Finding]
) -> List[ModuleContext]:
    modules: List[ModuleContext] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(
                Finding(
                    path=path.as_posix(),
                    line=line,
                    column=1,
                    rule_id="LINT-000",
                    message=f"file could not be parsed: {exc}",
                )
            )
            continue
        modules.append(ModuleContext(path.as_posix(), source, tree))
    return modules


def run_rules(
    modules: Sequence[ModuleContext],
    rules: Sequence[Rule],
    project: Optional[ProjectContext] = None,
) -> AnalysisResult:
    """Run ``rules`` over already-parsed modules."""
    if project is None:
        project = ProjectContext(modules)
    result = AnalysisResult(files_analyzed=len(modules))
    for module in modules:
        raw: List[Finding] = []
        for rule in rules:
            if rule.exempts(module.path):
                continue
            raw.extend(rule.check(module, project))
        active, suppressed = split_suppressed(raw, collect_suppressions(module))
        result.findings.extend(active)
        result.suppressed.extend(suppressed)
    result.findings.sort()
    result.suppressed.sort()
    return result


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """The one-call entry point: discover, parse, pre-pass, lint."""
    errors: List[Finding] = []
    files = collect_files(paths)
    modules = _parse_modules(files, errors)
    rules = registry.select(select=select, ignore=ignore)
    result = run_rules(modules, rules)
    result.errors = sorted(errors)
    return result
