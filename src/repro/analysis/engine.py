"""Analysis driver: file collection, rule dispatch, caching, gating.

The engine is deterministic by construction (it must survive its own
DET rules): files are discovered in sorted order, findings are sorted
before reporting, and nothing reads the wall clock.

Two run-shaping features sit on top of plain rule dispatch:

* **Incremental cache** — per-file findings keyed by the file's source
  digest *and* a project-facts digest.  Interprocedural findings in one
  file depend on summaries computed from every other file, so a cache
  entry is only valid while the whole project's derived facts (packet
  classes, taint summaries for both seed families, determinism facts,
  rule set, :data:`~repro.analysis.core.ANALYSIS_VERSION`) hash the
  same.  Parsing and summary construction always run — they are what
  the facts digest is made of — the cache skips the per-file rule
  dispatch, which dominates wall-clock on warm runs.
* **Baseline gate** — findings matched by a checked-in
  :class:`~repro.analysis.baseline.Baseline` are reported separately
  and do not affect the exit code; only *new* findings fail a PR.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.core import (
    ANALYSIS_VERSION,
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    registry,
)
from repro.analysis.suppress import collect_suppressions, split_suppressed

# Imported for the side effect of registering the rule families.
from repro.analysis import det_rules as _det_rules  # noqa: F401
from repro.analysis import anon_rules as _anon_rules  # noqa: F401

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "analyze_paths",
    "collect_files",
    "project_facts_key",
    "run_rules",
]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}


@dataclass
class AnalysisResult:
    """Everything one run produced, ready for a reporter."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings, 2 parse/usage errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    ordered: List[Path] = []

    def add(path: Path) -> None:
        if path not in seen:
            seen.add(path)
            ordered.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    add(candidate)
        elif path.suffix == ".py":
            add(path)
    return ordered


def _parse_modules(
    files: Iterable[Path], errors: List[Finding]
) -> List[ModuleContext]:
    modules: List[ModuleContext] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(
                Finding(
                    path=path.as_posix(),
                    line=line,
                    column=1,
                    rule_id="LINT-000",
                    message=f"file could not be parsed: {exc}",
                )
            )
            continue
        modules.append(ModuleContext(path.as_posix(), source, tree))
    return modules


# ------------------------------------------------------------------ cache
def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def project_facts_key(project: ProjectContext, rules: Sequence[Rule]) -> str:
    """Digest of everything a cached per-file result depends on besides
    the file itself: engine version, rule set, and — interprocedurally —
    every cross-module fact the rules consult.  Any edit anywhere that
    shifts a summary, the packet hierarchy, or scheduler reachability
    changes this key and invalidates the whole cache, which is exactly
    the soundness condition for caching interprocedural findings.
    """
    payload: Dict[str, object] = {
        "analysis_version": ANALYSIS_VERSION,
        "rules": [rule.id for rule in rules],
        "interprocedural": project.interprocedural,
        "packet_classes": sorted(project.packet_classes),
    }
    if project.interprocedural:
        from repro.analysis.anon_rules import IDENTITY_SPEC, MAC_SPEC

        payload["identity"] = project.summaries_for(IDENTITY_SPEC).digest_payload()
        payload["mac"] = project.summaries_for(MAC_SPEC).digest_payload()
        payload["det"] = project.det_facts.digest_payload()
    return _sha256_text(json.dumps(payload, sort_keys=True))


def _finding_to_json(finding: Finding) -> list:
    return [finding.path, finding.line, finding.column, finding.rule_id, finding.message]


def _finding_from_json(row: Sequence[object]) -> Finding:
    path, line, column, rule_id, message = row
    return Finding(
        path=str(path),
        line=int(line),  # type: ignore[arg-type]
        column=int(column),  # type: ignore[arg-type]
        rule_id=str(rule_id),
        message=str(message),
    )


class AnalysisCache:
    """Per-file findings cache, valid under one project facts key.

    On disk: one JSON object.  A cache written under a different facts
    key (different engine version, rule set, or any cross-module fact)
    is discarded wholesale on load.
    """

    def __init__(self, path: Path, facts_key: str) -> None:
        self.path = path
        self.facts_key = facts_key
        self._files: Dict[str, dict] = {}
        self._dirty = False
        if path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                data = {}
            if data.get("facts_key") == facts_key:
                self._files = dict(data.get("files", {}))

    def lookup(
        self, module_path: str, source_sha: str
    ) -> Optional[Tuple[List[Finding], List[Finding]]]:
        entry = self._files.get(module_path)
        if entry is None or entry.get("sha") != source_sha:
            return None
        findings = [_finding_from_json(row) for row in entry.get("findings", [])]
        suppressed = [_finding_from_json(row) for row in entry.get("suppressed", [])]
        return findings, suppressed

    def store(
        self,
        module_path: str,
        source_sha: str,
        findings: List[Finding],
        suppressed: List[Finding],
    ) -> None:
        self._files[module_path] = {
            "sha": source_sha,
            "findings": [_finding_to_json(f) for f in findings],
            "suppressed": [_finding_to_json(f) for f in suppressed],
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "facts_key": self.facts_key,
            "files": {k: self._files[k] for k in sorted(self._files)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        self._dirty = False


# ---------------------------------------------------------------- running
def run_rules(
    modules: Sequence[ModuleContext],
    rules: Sequence[Rule],
    project: Optional[ProjectContext] = None,
    cache: Optional[AnalysisCache] = None,
) -> AnalysisResult:
    """Run ``rules`` over already-parsed modules."""
    if project is None:
        project = ProjectContext(modules)
    result = AnalysisResult(files_analyzed=len(modules))
    for module in modules:
        source_sha = _sha256_text(module.source)
        cached = cache.lookup(module.path, source_sha) if cache is not None else None
        if cached is not None:
            active, suppressed = cached
            result.cache_hits += 1
        else:
            raw: List[Finding] = []
            for rule in rules:
                if rule.exempts(module.path):
                    continue
                raw.extend(rule.check(module, project))
            active, suppressed = split_suppressed(raw, collect_suppressions(module))
            active.sort()
            suppressed.sort()
            if cache is not None:
                cache.store(module.path, source_sha, active, suppressed)
                result.cache_misses += 1
        result.findings.extend(active)
        result.suppressed.extend(suppressed)
    if cache is not None:
        cache.save()
    result.findings.sort()
    result.suppressed.sort()
    return result


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    interprocedural: bool = True,
    cache_path: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """The one-call entry point: discover, parse, pre-pass, lint, gate."""
    errors: List[Finding] = []
    files = collect_files(paths)
    modules = _parse_modules(files, errors)
    rules = registry.select(select=select, ignore=ignore)
    project = ProjectContext(modules, interprocedural=interprocedural)
    cache: Optional[AnalysisCache] = None
    if cache_path is not None:
        cache = AnalysisCache(cache_path, project_facts_key(project, rules))
    result = run_rules(modules, rules, project=project, cache=cache)
    result.errors = sorted(errors)
    if baseline is not None:
        snippets = {m.path: m for m in modules}

        def snippet_of(finding: Finding) -> str:
            module = snippets.get(finding.path)
            return module.snippet(finding.line) if module is not None else ""

        result.findings, result.baselined = baseline.partition(
            result.findings, snippet_of
        )
    return result
