"""Causally-keyed simulator — the engine variant behind sharded execution.

The sharded runtime (:mod:`repro.sim.shard`) runs one engine per spatial
shard and merges their traces back into the single-engine order.  That
merge is only possible if every event (and every trace emission) carries
a key that *any* shard can compute identically and that sorts exactly
like the single engine's ``(time, priority, seq)`` tie-break.  The plain
sequence number cannot be that key: it counts *all* schedules in one
process, so two shards that each execute a subset of the events would
disagree about it.

Causal keys
-----------
:class:`KeyedSimulator` replaces the sequence number with a **causal
key**::

    key  = (time, priority, ckey)
    ckey = (0, build_index)                      # scheduled before any event ran
    ckey = (1, parent_key, scope_tag, k)         # scheduled while an event ran

``build_index`` is the global schedule count during the build phase
(every shard replays the identical build, so the count matches
everywhere).  At runtime, ``parent_key`` is the full key of the
currently executing event, ``scope_tag`` names a sub-scope within that
event (the medium tags each receiver's ``on_tx_end`` with its node id so
per-receiver work keys independently of which receivers a shard owns),
and ``k`` is the schedule count within that scope.

*Ordering theorem.*  In the single engine, events tie-break by ``seq``
— i.e. by schedule order.  Schedule order is: all build-phase schedules
first (in build order), then schedules grouped by the executing parent
event (parents execute in key order), within a parent by scope (scopes
are entered in a deterministic order), within a scope by call index.
That is precisely the lexicographic order of ``ckey`` above, so sorting
by ``(time, priority, ckey)`` reproduces the single-engine pop order —
and Python's nested-tuple comparison implements it directly.  The two
``ckey`` shapes never compare beyond their first element (0 sorts before
1), and two runtime keys recurse into parent keys, which is well-founded
because parents strictly precede children in execution order.

Trace-record keys follow the same scheme with an independent per-scope
emission counter, so a k-way merge of per-shard record streams by record
key reproduces the single-engine emission order byte for byte.

Suppression
-----------
A shard replays the *entire* build (placement, RNG forks, routers,
sources) so that build counters and RNG streams stay bit-identical, but
must keep non-owned nodes dormant.  :meth:`suppress` runs code with
every ``schedule`` call still *drawing* its key and sequence number
(parity with the single engine) while the event is born dead — it is
never pushed, so dormant nodes consume no runtime.

Promise bookkeeping
-------------------
The conservative window protocol needs, per shard, a lower bound on the
earliest future transmission ("promise").  The keyed engine maintains:

* ``_tx_watch`` — pending MAC events that transmit *at their own fire
  time* (``mac.difs`` / ``mac.slot`` / ``mac.sifs_resp`` /
  ``mac.sifs_data``); their exact keys bound imminent transmissions.
* per-actor indexes of pending events — any other event at node
  ``n`` can create a transmission no earlier than ``SIFS`` after it
  fires, so ``min_pending(n) + SIFS`` bounds everything else.  Events
  tagged :data:`~repro.sim.engine.PURE_ACTOR` (mobility rolls, table
  purges) never transmit and are skipped; :data:`~repro.sim.engine.
  MEDIUM_ACTOR` events (``phy.tx_end`` fan-outs touching many nodes)
  are tracked by the shard worker's in-flight list instead.

Queue modes
-----------
``queue_mode="slim"`` (the default) pairs the timer-wheel main queue
with plain per-actor append lists: scheduling costs one wheel bucket
append plus one list append instead of three heap pushes, and the
promise scan pays an O(live) sweep per actor — a fine trade because
promise rounds are rare (a handful per run) while schedules number in
the millions.  ``queue_mode="threeheap"`` preserves the original
heap-backed implementation byte for byte and exists as the reference
for the churn-equivalence tests.

Actor attribution is mostly **inherited**: an event scheduled while node
``n``'s code runs (the executing event's actor is ``n``, or the medium
entered receiver scope ``(n,)``) is ``n``'s event.  Only build-phase
schedules and the medium need explicit tags.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import (
    MEDIUM_ACTOR,
    PURE_ACTOR,
    Event,
    SimulationError,
    Simulator,
)

__all__ = ["KeyedSimulator", "TX_EVENT_NAMES", "CausalKey", "key_cmp", "key_min"]

#: Event names whose execution calls ``phy.transmit`` directly (the only
#: four sites in the MAC that do — see ``repro.net.mac.dcf``).  Every
#: other path to a transmission first schedules one of these at least
#: SIFS in the future.
TX_EVENT_NAMES = frozenset({"mac.difs", "mac.slot", "mac.sifs_resp", "mac.sifs_data"})

CausalKey = Tuple[float, int, tuple]


def key_cmp(a, b) -> int:
    """Compare two causal keys without recursion: -1, 0, or 1.

    Exactly Python's tuple comparison semantics (the order every proof
    in this module is stated in), computed with an explicit stack.  The
    native comparison recurses one C frame per chain link, and causal
    chains grow without bound over a run — periodic timers and MAC slot
    ladders on the shared 802.11 slot grid produce *time-locked* chains
    in different shards whose comparison only resolves at the root, so
    a long run overflows the interpreter recursion limit precisely on
    the coordination comparisons (horizon checks, promise mins, record
    merges) that put two different shards' deep keys side by side.
    Every such cross-chain comparison site routes through here; the
    scheduler's internal pushes keep native comparisons, where one
    operand is local and ties resolve shallowly.
    """
    if a is b:
        return 0
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        x_tuple = type(x) is tuple
        if x_tuple and type(y) is tuple:
            nx, ny = len(x), len(y)
            if nx != ny:
                # Lexicographic: common prefix decides first, then the
                # length tiebreak (pushed deepest so it compares last).
                stack.append((nx, ny))
                n = nx if nx < ny else ny
            else:
                n = nx
            for i in range(n - 1, -1, -1):
                stack.append((x[i], y[i]))
            continue
        if x_tuple or type(y) is tuple:
            raise TypeError(
                f"malformed causal key: tuple compared against "
                f"{type(y if x_tuple else x).__name__}"
            )
        if x == y:
            continue
        return -1 if x < y else 1
    return 0


def key_min(keys) -> Optional[CausalKey]:
    """Minimum of an iterable of causal keys under :func:`key_cmp`."""
    best = None
    for key in keys:
        if best is None or key_cmp(key, best) < 0:
            best = key
    return best


class KeyedSimulator(Simulator):
    """Drop-in :class:`Simulator` whose tie-break is the causal key.

    Pop order is identical to the plain engine (the ordering theorem in
    the module docstring); what changes is that the tie-break is
    computable by any shard that executes a subset of the events.  Both
    scheduler backends are valid under causal keys: the wheel's buckets
    and ready heap order entries by the *full* ``(time, priority, ckey)``
    tuple, and keys are unique, so wheel pop order equals heap pop order
    exactly as PR 4 proved for numeric sequence numbers (the argument is
    tie-break-agnostic — it only needs a total order whose first
    component is the fire time).
    """

    def __init__(self, start_time: float = 0.0, queue_mode: str = "slim") -> None:
        if queue_mode not in ("slim", "threeheap"):
            raise ValueError(f"unknown keyed queue mode {queue_mode!r}")
        self._slim = queue_mode == "slim"
        super().__init__(
            start_time, scheduler_mode="wheel" if self._slim else "heap"
        )
        self._queue_mode = queue_mode
        self._build_count = 0
        self._build_emit_count = 0
        self._exec_key: Optional[CausalKey] = None
        self._exec_actor: Optional[int] = None
        self._scope_actor: Optional[int] = None
        self._scope_tag: tuple = ()
        self._scope_count = 0
        self._emit_count = 0
        self._suppress_depth = 0
        # Promise bookkeeping (lazily pruned).  In slim mode the indexes
        # hold bare Events (append-only, swept on scan); in threeheap
        # mode they are min-heaps of (time, seq, Event) tuples.
        self._tx_watch: List[Event] = []
        self._actor_index: Dict[int, list] = {}
        self._untracked_index: list = []

    # ------------------------------------------------------------- scheduling
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
        actor: Optional[int] = None,
    ) -> Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f} < now {self._now:.9f}"
            )
        self._seq += 1
        parent = self._exec_key
        if parent is None:
            self._build_count += 1
            ckey: tuple = (0, self._build_count)
        else:
            ckey = (1, parent, self._scope_tag, self._scope_count)
            self._scope_count += 1
        event = Event(time, priority, self._seq, callback, name, _sim=self)
        event.key = (time, priority, ckey)
        if actor is None:
            # Inherit attribution: an explicit scope actor wins (the
            # sender scope's tag is a key namespace, not a node id),
            # receiver scopes are tagged with the receiving node id,
            # and otherwise the event belongs to whoever is executing.
            if self._scope_actor is not None:
                actor = self._scope_actor
            elif len(self._scope_tag) == 1 and self._scope_tag[0] >= 0:
                actor = self._scope_tag[0]
            else:
                actor = self._exec_actor
        event.actor = actor
        if self._suppress_depth:
            # Key/seq/RNG parity without execution: the event is born
            # consumed, so it is never pushed and ``cancel()`` on the
            # returned handle is a no-op.
            event.cancelled = True
            return event
        self._sched.push((time, priority, ckey, event))
        self._live += 1
        if name in TX_EVENT_NAMES:
            self._tx_watch.append(event)
        if self._slim:
            if actor is None:
                self._untracked_index.append(event)
            elif actor >= 0:
                index = self._actor_index.get(actor)
                if index is None:
                    index = self._actor_index[actor] = []
                index.append(event)
        elif actor is None:
            heapq.heappush(self._untracked_index, (time, self._seq, event))
        elif actor >= 0:
            heap = self._actor_index.get(actor)
            if heap is None:
                heap = self._actor_index[actor] = []
            heapq.heappush(heap, (time, self._seq, event))
        return event

    @contextmanager
    def suppress(self) -> Iterator[None]:
        """Run code with every schedule drawing its key but staying dead."""
        self._suppress_depth += 1
        try:
            yield
        finally:
            self._suppress_depth -= 1

    def key_scope(self, tag: tuple, actor: Optional[int] = None) -> "_KeyScope":
        """Enter a named sub-scope of the executing event.

        Schedule and emission counters restart inside the scope, so the
        keys drawn within it do not depend on how many sibling scopes
        ran before it — the property that lets a shard execute only the
        receiver scopes it owns and still draw single-engine keys.

        ``actor`` overrides attribution for events scheduled inside the
        scope without changing keys — the sender scope's tag ``(-1,)``
        is a key namespace, not a node id, so the medium passes the real
        sender so its post-transmission contention stays visible to the
        promise scan.

        Hand-rolled context manager: scopes open for every reception of
        every frame, and the ``contextlib`` generator protocol costs
        several times the scope body at that call rate.
        """
        return _KeyScope(self, tag, actor)

    # ------------------------------------------------------------ record keys
    def record_key(self) -> tuple:
        """Draw the causal key for a trace record emitted right now.

        Must be called exactly once per captured record (the shard
        worker's catch-all subscriber does), in emission order.
        """
        if self._exec_key is None:
            self._build_emit_count += 1
            return (0, self._build_emit_count)
        key = (1, self._exec_key, self._scope_tag, self._emit_count)
        self._emit_count += 1
        return key

    # ------------------------------------------------------- stepped execution
    def peek_key(self) -> Optional[CausalKey]:
        """Key of the next live event, or ``None`` when drained."""
        head = self._sched.peek()
        if head is None:
            return None
        return (head[0], head[1], head[2])

    def execute_next(self) -> bool:
        """Execute exactly one event; ``False`` when the queue is drained."""
        head = self._sched.pop()
        if head is None:
            return False
        event: Event = head[3]
        self._now = event.time
        event.cancelled = True  # consumed; handle can no longer cancel
        self._live -= 1
        self._exec_key = event.key
        self._exec_actor = event.actor
        self._scope_actor = None
        self._scope_tag = ()
        self._scope_count = 0
        self._emit_count = 0
        try:
            event.callback()
        finally:
            self._exec_key = None
            self._exec_actor = None
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Single-process run honouring the plain engine's clock contract.

        Used by the keyed-vs-plain equivalence tests; the sharded driver
        steps via :meth:`execute_next` instead.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        drained = False
        try:
            while not self._stopped:
                head = self._sched.peek()
                if head is None:
                    drained = True
                    break
                if until is not None and head[0] > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.execute_next()
                executed += 1
            if drained:
                if until is not None and not self._stopped and self._now < until:
                    self._now = until
        finally:
            self._running = False

    # ------------------------------------------------------------ ghost events
    def insert_ghost(
        self, key: CausalKey, callback: Callable[[], None], name: str, actor: int = MEDIUM_ACTOR
    ) -> Event:
        """Insert an event at a key computed by *another* shard.

        The conservative window protocol guarantees the owner shard only
        ships keys at or beyond every peer's executed horizon; a ghost
        landing in our past would silently corrupt the trace, so it is a
        hard error instead.
        """
        time, priority, ckey = key
        if time < self._now:
            raise SimulationError(
                f"ghost event {name!r} at {time:.9f} is before now {self._now:.9f}; "
                "the shard window protocol has been violated"
            )
        self._seq += 1
        event = Event(time, priority, self._seq, callback, name, _sim=self)
        event.key = key
        event.actor = actor
        self._sched.push((time, priority, ckey, event))
        self._live += 1
        return event

    # ------------------------------------------------------- promise scanning
    def tx_sentinel_floor(
        self, relevant: Callable[[Optional[int]], bool]
    ) -> Optional[CausalKey]:
        """Min key over pending transmit-site events whose actor matters.

        ``relevant`` receives the event's actor id; the watch list is
        pruned of consumed/cancelled entries as a side effect.
        """
        best: Optional[CausalKey] = None
        keep: List[Event] = []
        for ev in self._tx_watch:
            if ev.cancelled:
                continue
            keep.append(ev)
            if relevant(ev.actor):
                key = ev.key
                # key_cmp: two watched transmit sites can ride
                # time-locked slot ladders whose native comparison
                # walks to the chain roots.
                if best is None or key_cmp(key, best) < 0:
                    best = key
        self._tx_watch = keep
        return best

    @staticmethod
    def _sweep_min_time(index: list) -> Optional[float]:
        """Min fire time over a slim index, compacting dead entries."""
        best: Optional[float] = None
        keep: list = []
        append = keep.append
        for ev in index:
            if ev.cancelled:
                continue
            append(ev)
            time = ev.time
            if best is None or time < best:
                best = time
        if len(keep) != len(index):
            index[:] = keep
        return best

    def actor_next_time(self, actor: int) -> Optional[float]:
        """Earliest pending event time attributed to ``actor``.

        Slim mode sweeps (and compacts) the actor's append list;
        threeheap mode lazily prunes the heap head.  Promise scans are
        rare enough that the O(live) sweep is cheaper than having paid
        a heap push on every schedule.
        """
        index = self._actor_index.get(actor)
        if not index:
            return None
        if self._slim:
            return self._sweep_min_time(index)
        while index:
            time, _seq, ev = index[0]
            if ev.cancelled:
                heapq.heappop(index)
            else:
                return time
        return None

    def untracked_next_time(self) -> Optional[float]:
        """Earliest pending event with no actor attribution."""
        index = self._untracked_index
        if self._slim:
            return self._sweep_min_time(index)
        while index:
            time, _seq, ev = index[0]
            if ev.cancelled:
                heapq.heappop(index)
            else:
                return time
        return None

    # The plain run() path never sees KeyedSimulator entries, but keep
    # repr honest for debugging.
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeyedSimulator(now={self._now:.6f}s, pending={self.pending_events}, "
            f"build={self._build_count})"
        )



class _KeyScope:
    """Reentrant-by-instance scope guard for :meth:`KeyedSimulator.key_scope`."""

    __slots__ = ("_sim", "_tag", "_actor", "_saved")

    def __init__(
        self, sim: KeyedSimulator, tag: tuple, actor: Optional[int]
    ) -> None:
        self._sim = sim
        self._tag = tag
        self._actor = actor

    def __enter__(self) -> None:
        sim = self._sim
        self._saved = (
            sim._scope_tag,
            sim._scope_count,
            sim._emit_count,
            sim._scope_actor,
        )
        sim._scope_tag = self._tag
        sim._scope_count = 0
        sim._emit_count = 0
        if self._actor is not None:
            sim._scope_actor = self._actor

    def __exit__(self, *exc) -> None:
        sim = self._sim
        (
            sim._scope_tag,
            sim._scope_count,
            sim._emit_count,
            sim._scope_actor,
        ) = self._saved
