"""Discrete-event simulation substrate (engine, RNG streams, tracing)."""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "RngRegistry",
    "derive_seed",
    "TraceRecord",
    "Tracer",
]
