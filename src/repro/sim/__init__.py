"""Discrete-event simulation substrate (engine, scheduler backends, RNG
streams, tracing)."""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.keyed import KeyedSimulator
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.timerwheel import (
    SCHEDULER_MODES,
    HeapScheduler,
    SchedulerCoherenceError,
    TimerWheelScheduler,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "KeyedSimulator",
    "SimulationError",
    "Simulator",
    "SCHEDULER_MODES",
    "SchedulerCoherenceError",
    "HeapScheduler",
    "TimerWheelScheduler",
    "RngRegistry",
    "derive_seed",
    "TraceRecord",
    "Tracer",
]
