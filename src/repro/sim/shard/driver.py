"""The conservative window protocol: promise / execute / barrier rounds.

Round structure (coordinator = this module; workers = one per shard,
inline objects for ``shard_mode="cross"``, forked processes for
``"on"``):

1. **Deliver + promise.**  Each worker first mirrors the ghost
   transmissions queued for it at the previous barrier, then reports
   ``(next event time, promise key)`` — a lower bound on the causal key
   of its earliest possible future transmission that can reach another
   shard (exposure-gated; see :meth:`ShardWorker.promise`).
2. **Horizon.**  Shard *i* may execute every event with key strictly
   below ``H_i = min(min_{j != i} promise_j, floor + W_MAX, until)``,
   where ``floor`` is the globally earliest pending event time.  The
   ``W_MAX`` cushion bounds interest-interval staleness and guarantees
   progress when every promise is infinite.
3. **Execute + collect.**  Workers run their window (in parallel under
   the process transport) and return outgoing ghosts, which the
   coordinator routes to their target shards for the next round.

Promise piggybacking
--------------------
With ``shard_piggyback`` (the default) the promise is folded into the
execute reply: one bootstrap promise round, then every round is a
single request (horizon + ghosts to deliver) and a single reply
(ghosts produced + the post-window promise) — 2 IPC messages per shard
per round instead of the legacy 4.  The piggybacked promise is computed
*before* the next round's ghosts are delivered, so the coordinator
compensates: a pending ghost can only *defer* the receiver's existing
events (channel-busy backoff) or trigger SIFS-spaced responses to its
mirrored completion, never create anything earlier, so
``min(promise, (g.resume, floor-priority))`` over the shard's pending
ghosts is a sound effective promise, and ``min(peek, g.start)`` the
effective queue floor.  Legacy split rounds remain available as
``shard_piggyback=False`` (and as the churn-tested reference).

Soundness: a shard's promise is a true lower bound (the MAC creates
every transmit site at least SIFS ahead — see :mod:`repro.sim.shard.
worker`), so every ghost produced in a round carries a key at or beyond
every *other* shard's executed horizon: ghosts always land in the
receiver's future, never its past (:meth:`KeyedSimulator.insert_ghost`
enforces this as a hard error).  Progress: the shard holding the
globally minimal pending key always finds every foreign promise
strictly beyond it (keys are unique; time floors add SIFS), so at least
one event executes per round — under piggybacking a round may instead
only *deliver* pending ghosts (their resume floors then dissolve into
ordinary ghost-aware promises), so a stall is only declared when
nothing executed *and* nothing was delivered.

``shard_mode="cross"`` additionally runs the unmodified single engine
on the same config and compares the merged shard trace record-by-record
(``(time, category, node)`` — the repository-wide trace-equivalence
contract, uids exempt per DET-006), raising :class:`ShardCoherenceError`
at the first divergence.
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import os
import pickle
import time as _wall
import traceback
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.partition import rebalanced_boundaries
from repro.sim.keyed import key_min
from repro.sim.shard import ShardCoherenceError
from repro.sim.shard.keycodec import KeyCodec
from repro.sim.shard.merge import merge_records, merge_results
from repro.sim.shard.shmplane import ShardPlane, plane_supported
from repro.sim.shard.worker import (
    GhostTx,
    INF_KEY,
    ShardResult,
    ShardWorker,
    SlimRecord,
    W_MAX,
)

__all__ = ["run_sharded", "effective_jobs"]

#: Sorts above every real priority at a given time: ``(t, _CEIL)`` as a
#: horizon admits every real key with time <= t (inclusive horizons).
_CEIL = 2**60


def effective_jobs(jobs: int, shards: int, cpu_count: Optional[int] = None) -> int:
    """Cap the scenario-level worker pool so ``jobs x shards`` processes
    never exceed the machine.

    Precedence: the per-run shard count wins (a sharded run is one
    coherent unit and always gets its ``shards`` processes); the
    ``--jobs`` pool is clamped to ``cpu_count // shards``, floored at 1
    so progress is always possible.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, min(jobs, cpus // max(1, shards)))


# --------------------------------------------------------------- transports
def _pack_ghosts(codec: KeyCodec, ghosts: Sequence[GhostTx]):
    """Swap deep causal keys for table indices before pickling.

    Causal keys are linked chains whose nesting depth grows with the
    causal history; pickling them recurses per level and overflows on
    long runs.  See :mod:`repro.sim.shard.keycodec`.
    """
    packed = [
        replace(
            g,
            start_key=codec.encode(g.start_key),
            finish_key=codec.encode(g.finish_key),
        )
        for g in ghosts
    ]
    return codec.flush(), packed


def _unpack_ghosts(codec: KeyCodec, table, packed) -> List[GhostTx]:
    codec.extend(table)
    return [
        replace(
            g,
            start_key=codec.decode(g.start_key),
            finish_key=codec.decode(g.finish_key),
        )
        for g in packed
    ]


class _InlineHandle:
    """Same-process worker (cross mode, tests): calls are synchronous."""

    def __init__(
        self, config, shard_index: int, capture_all: bool, plane=None
    ) -> None:
        self.shard_index = shard_index
        self.worker = ShardWorker(config, shard_index, capture_all, plane=plane)
        self.worker.start()
        self.ipc_bytes = 0  # inline transport: nothing crosses a pipe
        self._reply: object = None

    def send_promise(self, ghosts: Sequence[GhostTx]) -> None:
        self.worker.deliver_ghosts(ghosts)
        self._reply = self.worker.promise()

    def recv_promise(self):
        return self._reply

    def send_execute(self, horizon) -> None:
        self._reply = self.worker.execute_window(horizon)

    def recv_execute(self):
        executed, busy, out = self._reply
        return executed, busy, out, self.worker.plane_epoch

    def send_round(self, horizon, ghosts: Sequence[GhostTx]) -> None:
        self._reply = self.worker.execute_round(horizon, ghosts)

    def recv_round(self):
        executed, busy, out, peek, key = self._reply
        return executed, busy, out, self.worker.plane_epoch, peek, key

    def finish(self, until: float) -> ShardResult:
        return self.worker.finish(until)

    def close(self) -> None:
        pass


def _worker_main(conn, config, shard_index: int, capture_all: bool, plane) -> None:
    """Entry point of a forked shard process: build, then serve rounds.

    Every key-bearing payload crosses the pipe codec-flattened (ghost
    start/finish keys, the promise key, the execute horizon, and each
    record's merge key) — naive pickling of the deeply nested causal
    keys recurses past the interpreter limit.  Payloads travel as
    explicit pickled byte blobs so the coordinator can meter IPC bytes
    exactly; the ``plane`` object is inherited through fork (never
    pickled), so child processes share the parent's mapping without
    re-registering the segment.
    """
    try:
        worker = ShardWorker(config, shard_index, capture_all, plane=plane)
        worker.start()
        # The child inherits the parent's entire heap via fork, and the
        # freshly built scenario graph is live for the whole run.  Move
        # both to the permanent generation so cyclic GC stops rescanning
        # them every collection — with a large parent heap that scan
        # otherwise dominates worker CPU (and therefore the busy metric).
        gc.freeze()
        # The window loop allocates acyclic objects almost exclusively
        # (key tuples, pooled frames/receptions), so the default gen-0
        # trigger fires thousands of collections that free nothing.
        # Raise the threshold so cycle detection still runs — leaked
        # cycles are eventually reclaimed — but at a rate the event loop
        # no longer notices.
        gc.set_threshold(200_000, 50, 50)
        codec = KeyCodec()
        while True:
            kind, payload = pickle.loads(conn.recv_bytes())
            if kind == "promise":
                table, packed = payload
                worker.deliver_ghosts(_unpack_ghosts(codec, table, packed))
                peek, key = worker.promise()
                idx = codec.encode(key)
                reply = ("ok", (codec.flush(), peek, idx))
            elif kind == "execute":
                table, idx = payload
                codec.extend(table)
                executed, busy, out = worker.execute_window(codec.decode(idx))
                gtable, packed = _pack_ghosts(codec, out)
                reply = (
                    "ok", (gtable, executed, busy, packed, worker.plane_epoch)
                )
            elif kind == "round":
                table, idx, packed_in = payload
                codec.extend(table)
                executed, busy, out, peek, key = worker.execute_round(
                    codec.decode(idx), _unpack_ghosts(codec, (), packed_in)
                )
                kidx = codec.encode(key)
                gtable, packed = _pack_ghosts(codec, out)
                reply = (
                    "ok",
                    (
                        gtable,
                        executed,
                        busy,
                        packed,
                        worker.plane_epoch,
                        peek,
                        kidx,
                    ),
                )
            elif kind == "finish":
                result = worker.finish(payload)
                result.records = [
                    replace(r, key=codec.encode(r.key)) for r in result.records
                ]
                reply = ("ok", (codec.flush(), result))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol partner is this module
                raise RuntimeError(f"unknown shard request {kind!r}")
            conn.send_bytes(pickle.dumps(reply))
    except EOFError:  # coordinator died; nothing to report to
        return
    except Exception:
        try:
            conn.send_bytes(pickle.dumps(("error", traceback.format_exc())))
        except (BrokenPipeError, OSError):
            pass


class _ProcHandle:
    """One forked shard process, spoken to over a duplex pipe.

    Promise and execute requests are sent to *all* shards before any
    reply is awaited, so shard windows genuinely overlap in wallclock.
    Every payload is an explicit pickled blob, which is what lets the
    handle meter IPC bytes exactly (``shard_stats`` observability).
    """

    def __init__(
        self, ctx, config, shard_index: int, capture_all: bool, intern: dict,
        plane=None,
    ) -> None:
        self.shard_index = shard_index
        parent, child = ctx.Pipe()
        self.conn = parent
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child, config, shard_index, capture_all, plane),
            daemon=True,
        )
        self.proc.start()
        child.close()
        self.ipc_bytes = 0
        # The intern dict is shared across every shard's codec so that
        # mirrored keys from different shards unify to identical objects
        # (keeps the merge's key comparisons shallow via the identity
        # shortcut instead of walking deep equal chains).
        self._codec = KeyCodec(intern)

    def _send(self, message) -> None:
        blob = pickle.dumps(message)
        self.ipc_bytes += len(blob)
        self.conn.send_bytes(blob)

    def _recv(self):
        try:
            blob = self.conn.recv_bytes()
        except EOFError:
            raise ShardCoherenceError(
                f"shard worker {self.shard_index} terminated mid-protocol "
                "(pipe closed before reply)"
            ) from None
        self.ipc_bytes += len(blob)
        kind, payload = pickle.loads(blob)
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def send_promise(self, ghosts: Sequence[GhostTx]) -> None:
        self._send(("promise", _pack_ghosts(self._codec, ghosts)))

    def recv_promise(self):
        table, peek, idx = self._recv()
        self._codec.extend(table)
        return peek, self._codec.decode(idx)

    def send_execute(self, horizon) -> None:
        idx = self._codec.encode(horizon)
        self._send(("execute", (self._codec.flush(), idx)))

    def recv_execute(self):
        table, executed, busy, packed, epoch = self._recv()
        return executed, busy, _unpack_ghosts(self._codec, table, packed), epoch

    def send_round(self, horizon, ghosts: Sequence[GhostTx]) -> None:
        codec = self._codec
        idx = codec.encode(horizon)
        packed = [
            replace(
                g,
                start_key=codec.encode(g.start_key),
                finish_key=codec.encode(g.finish_key),
            )
            for g in ghosts
        ]
        # One flush covering the horizon and every ghost key.
        self._send(("round", (codec.flush(), idx, packed)))

    def recv_round(self):
        table, executed, busy, packed, epoch, peek, kidx = self._recv()
        ghosts = _unpack_ghosts(self._codec, table, packed)
        return executed, busy, ghosts, epoch, peek, self._codec.decode(kidx)

    def finish(self, until: float) -> ShardResult:
        self._send(("finish", until))
        table, result = self._recv()
        self._codec.extend(table)
        result.records = [
            replace(r, key=self._codec.decode(r.key)) for r in result.records
        ]
        return result

    def close(self) -> None:
        try:
            self._send(("stop", None))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join(timeout=5)
        self.conn.close()


# -------------------------------------------------------------- coordination
def _resolve_ghosts(plane, ghosts: List[GhostTx]) -> List[GhostTx]:
    """Materialize NaN-compressed ghost positions from the shared plane.

    Runs at the barrier — every worker is blocked on its next request,
    so plane reads cannot race a publication (the producer published
    strictly before the reply that carried the ghost here).
    """
    if plane is None:
        return ghosts
    out = []
    for g in ghosts:
        if math.isnan(g.x):
            x, y = plane.resolve(g.sender_id, g.start)
            g = replace(g, x=x, y=y)
        out.append(g)
    return out


def _check_epoch(plane, shard_index: int, reported: int) -> None:
    """Defensive epoch barrier: the publication a reply claims must be
    visible to the coordinator before any ghost it carried is resolved."""
    if plane is None or not reported:
        return
    seen = plane.epoch(shard_index)
    if seen < reported:
        raise ShardCoherenceError(
            f"shared plane epoch for shard {shard_index} is {seen}, but its "
            f"reply reported {reported}: publication ordering was violated"
        )


def _effective_promises(promises: List, pending: List[List[GhostTx]]):
    """Compensate pre-delivery promises with pending-ghost floors.

    A piggybacked promise predates the ghosts queued for that shard; a
    ghost's influence is bounded below by its ``resume`` (completion +
    SIFS — DCF channel-busy only defers, responses fire off the
    mirrored ``phy.tx_end``), and its start key time lower-bounds the
    shard's post-delivery queue floor.
    """
    eff = []
    for (peek, key), ghosts in zip(promises, pending):
        for g in ghosts:
            if peek is None or g.start < peek:
                peek = g.start
            floor = (g.resume, -_CEIL, ())
            if floor < key:
                key = floor
        eff.append((peek, key))
    return eff


def _coordinate(
    handles: List, shards: int, until: float, piggyback: bool, plane
) -> Dict[str, object]:
    """Run promise/execute rounds to the horizon; returns protocol stats.

    ``critical_path_seconds`` is the sum over rounds of the slowest
    shard's busy time, i.e. the wallclock a fully parallel execution
    could achieve (reported by the benchmark alongside actual wallclock,
    which on a single-CPU host cannot show the speedup);
    ``busy_seconds_total`` sums every shard's execution time (critical /
    (total / shards) measures window balance).  ``per_shard_executed``
    is the deterministic load signal the adaptive-boundary calibration
    feeds to :func:`rebalanced_boundaries`.  ``ipc_messages`` counts
    logical protocol messages both directions (bootstrap promise
    included, finish/stop excluded); with piggybacking a steady-state
    round costs ``2 * shards`` messages instead of the legacy
    ``4 * shards``.
    """
    pending: List[List[GhostTx]] = [[] for _ in range(shards)]
    until_bound = (until, _CEIL, ())
    rounds = 0
    critical = 0.0
    busy_total = 0.0
    executed_by_shard = [0] * shards
    messages = 0
    promise_rounds = 0
    promises: List = []

    def _route(shard_index: int, out: List[GhostTx]) -> None:
        for ghost in _resolve_ghosts(plane, out):
            for target in ghost.targets:
                pending[target].append(ghost)

    if piggyback:
        # Bootstrap: one legacy promise round seeds the promise vector;
        # every later promise rides an execute reply.
        for handle in handles:
            handle.send_promise([])
        promises = [handle.recv_promise() for handle in handles]
        messages += 2 * shards
        promise_rounds += 1
        while True:
            eff = _effective_promises(promises, pending)
            peeks = [p for p, _ in eff if p is not None]
            floor = min(peeks) if peeks else None
            if floor is None or floor > until:
                break
            cushion = (floor + W_MAX, -_CEIL, ())
            for i, handle in enumerate(handles):
                # key_min: different shards' promise keys can ride
                # time-locked chains; native min() recurses to the roots.
                foreign = key_min(eff[j][1] for j in range(shards) if j != i)
                if foreign is None:
                    foreign = INF_KEY
                horizon = min(foreign, cushion, until_bound)
                handle.send_round(horizon, pending[i])
            delivered = any(pending)
            pending = [[] for _ in range(shards)]
            executed_total = 0
            slowest = 0.0
            for i, handle in enumerate(handles):
                executed, busy, out, epoch, peek, key = handle.recv_round()
                _check_epoch(plane, i, epoch)
                executed_total += executed
                executed_by_shard[i] += executed
                busy_total += busy
                if busy > slowest:
                    slowest = busy
                promises[i] = (peek, key)
                _route(i, out)
            messages += 2 * shards
            critical += slowest
            rounds += 1
            if executed_total == 0 and not delivered and not any(pending):
                raise RuntimeError(
                    "shard window protocol stalled: no shard could advance "
                    f"at t={floor!r} (round {rounds})"
                )
    else:
        while True:
            for i, handle in enumerate(handles):
                handle.send_promise(pending[i])
            promises = [handle.recv_promise() for handle in handles]
            messages += 2 * shards
            promise_rounds += 1
            pending = [[] for _ in range(shards)]
            peeks = [p for p, _ in promises if p is not None]
            floor = min(peeks) if peeks else None
            if floor is None or floor > until:
                break
            cushion = (floor + W_MAX, -_CEIL, ())
            for i, handle in enumerate(handles):
                foreign = key_min(
                    promises[j][1] for j in range(shards) if j != i
                )
                if foreign is None:
                    foreign = INF_KEY
                horizon = min(foreign, cushion, until_bound)
                handle.send_execute(horizon)
            executed_total = 0
            slowest = 0.0
            for i, handle in enumerate(handles):
                executed, busy, out, epoch = handle.recv_execute()
                _check_epoch(plane, i, epoch)
                executed_total += executed
                executed_by_shard[i] += executed
                busy_total += busy
                if busy > slowest:
                    slowest = busy
                _route(i, out)
            messages += 2 * shards
            critical += slowest
            rounds += 1
            if executed_total == 0 and not any(pending):
                raise RuntimeError(
                    "shard window protocol stalled: no shard could advance "
                    f"at t={floor!r} (round {rounds})"
                )
    return {
        "rounds": rounds,
        "critical_path_seconds": critical,
        "busy_seconds_total": busy_total,
        "per_shard_executed": executed_by_shard,
        "ipc_messages": messages,
        "promise_rounds": promise_rounds,
        # Steady-state messages per round: drop one promise round trip
        # (the piggyback bootstrap / the legacy trailing break round).
        "ipc_messages_per_round": (
            (messages - 2 * shards) / rounds if rounds else 0.0
        ),
    }


# --------------------------------------------------------------- cross check
def _compare_traces(reference, merged: List[SlimRecord]) -> None:
    """Record-by-record equivalence per the repo trace contract."""
    limit = min(len(reference), len(merged))
    for i in range(limit):
        ref = reference[i]
        got = merged[i]
        if (repr(ref.time), ref.category, ref.node) != (
            repr(got.time),
            got.category,
            got.node,
        ):
            raise ShardCoherenceError(
                f"trace divergence at record {i}: single engine "
                f"({ref.time!r}, {ref.category!r}, node={ref.node!r}) vs "
                f"sharded ({got.time!r}, {got.category!r}, node={got.node!r})"
            )
    if len(reference) != len(merged):
        raise ShardCoherenceError(
            f"trace length mismatch: single engine {len(reference)} records, "
            f"sharded {len(merged)} (first {limit} identical)"
        )


# --------------------------------------------------------------- entry point
def _make_handles(config, shards: int, cross: bool, capture_all: bool, plane):
    if cross or shards == 1:
        return [
            _InlineHandle(config, i, capture_all, plane=plane)
            for i in range(shards)
        ]
    ctx = multiprocessing.get_context("fork")
    intern: dict = {}
    return [
        _ProcHandle(ctx, config, i, capture_all, intern, plane=plane)
        for i in range(shards)
    ]


def _make_plane(config, shards: int):
    if (
        shards > 1
        and getattr(config, "shard_plane", True)
        and config.num_nodes > 0
        and plane_supported()
    ):
        return ShardPlane(config.num_nodes, shards)
    return None


def _calibrated_boundaries(config, shards: int, cross: bool, piggyback: bool):
    """Measure a calibration prefix under uniform splits; return
    load-equalized boundaries.

    The load signal is each shard's executed event count — unlike busy
    CPU seconds it is a pure function of config + seed, so the derived
    boundaries (and therefore the whole adaptive run) stay
    deterministic.  The calibration workers are then discarded; the
    production run rebuilds from scratch with the explicit boundaries,
    starting at t=0.
    """
    calib_until = config.sim_time * config.shard_calibration
    if calib_until <= 0.0:
        return None
    plane = _make_plane(config, shards)
    handles: List = []
    try:
        handles = _make_handles(config, shards, cross, False, plane)
        stats = _coordinate(handles, shards, calib_until, piggyback, plane)
    finally:
        for handle in handles:
            handle.close()
        if plane is not None:
            plane.destroy()
    loads = stats["per_shard_executed"]
    if not any(loads):
        return None
    return rebalanced_boundaries(0.0, config.width, shards, loads)


def run_sharded(config):
    """Execute ``config`` under the sharded runtime and merge the result.

    ``shard_mode="on"`` forks one process per shard (conservative
    windows overlap in wallclock); ``"cross"`` runs the shards inline
    *and* the unmodified single engine, comparing traces record by
    record.  Either way the returned :class:`ScenarioResult` is merged
    from the shards.
    """
    started = _wall.perf_counter()
    shards = config.shards
    cross = config.shard_mode == "cross"
    capture_all = cross or config.keep_trace
    piggyback = bool(getattr(config, "shard_piggyback", True))

    if (
        getattr(config, "shard_adaptive", False)
        and getattr(config, "shard_boundaries", None) is None
        and shards > 1
    ):
        boundaries = _calibrated_boundaries(config, shards, cross, piggyback)
        if boundaries is not None:
            config = replace(
                config, shard_boundaries=boundaries, shard_adaptive=False
            )

    plane = _make_plane(config, shards)
    handles: List = []
    try:
        handles = _make_handles(config, shards, cross, capture_all, plane)
        stats = _coordinate(handles, shards, config.sim_time, piggyback, plane)
        parts = [handle.finish(config.sim_time) for handle in handles]
        ipc_bytes = sum(getattr(h, "ipc_bytes", 0) for h in handles)
    finally:
        for handle in handles:
            handle.close()
        if plane is not None:
            plane.destroy()

    if cross:
        from repro.experiments.scenario import Scenario

        reference_cfg = replace(config, shard_mode="off", keep_trace=True)
        reference = Scenario(reference_cfg)
        reference.run()
        _compare_traces(
            reference.tracer.records, merge_records([p.records for p in parts])
        )

    result = merge_results(config, parts, _wall.perf_counter() - started)
    result.__dict__["shard_stats"] = {
        "shards": shards,
        "rounds": stats["rounds"],
        "critical_path_seconds": stats["critical_path_seconds"],
        "busy_seconds_total": stats["busy_seconds_total"],
        "transport": "inline" if (cross or shards == 1) else "fork",
        "events": sum(p.processed_events for p in parts),
        "piggyback": piggyback,
        "plane": plane is not None,
        "boundaries": getattr(config, "shard_boundaries", None),
        "promise_rounds": stats["promise_rounds"],
        "ipc_messages": stats["ipc_messages"],
        "ipc_messages_per_round": stats["ipc_messages_per_round"],
        "ipc_bytes": ipc_bytes,
    }
    return result
