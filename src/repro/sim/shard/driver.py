"""The conservative window protocol: promise / execute / barrier rounds.

Round structure (coordinator = this module; workers = one per shard,
inline objects for ``shard_mode="cross"``, forked processes for
``"on"``):

1. **Deliver + promise.**  Each worker first mirrors the ghost
   transmissions queued for it at the previous barrier, then reports
   ``(next event time, promise key)`` — a lower bound on the causal key
   of its earliest possible future transmission that can reach another
   shard (exposure-gated; see :meth:`ShardWorker.promise`).
2. **Horizon.**  Shard *i* may execute every event with key strictly
   below ``H_i = min(min_{j != i} promise_j, floor + W_MAX, until)``,
   where ``floor`` is the globally earliest pending event time.  The
   ``W_MAX`` cushion bounds interest-interval staleness and guarantees
   progress when every promise is infinite.
3. **Execute + collect.**  Workers run their window (in parallel under
   the process transport) and return outgoing ghosts, which the
   coordinator routes to their target shards for the next round.

Soundness: a shard's promise is a true lower bound (the MAC creates
every transmit site at least SIFS ahead — see :mod:`repro.sim.shard.
worker`), so every ghost produced in a round carries a key at or beyond
every *other* shard's executed horizon: ghosts always land in the
receiver's future, never its past (:meth:`KeyedSimulator.insert_ghost`
enforces this as a hard error).  Progress: the shard holding the
globally minimal pending key always finds every foreign promise
strictly beyond it (keys are unique; time floors add SIFS), so at least
one event executes per round.

``shard_mode="cross"`` additionally runs the unmodified single engine
on the same config and compares the merged shard trace record-by-record
(``(time, category, node)`` — the repository-wide trace-equivalence
contract, uids exempt per DET-006), raising :class:`ShardCoherenceError`
at the first divergence.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time as _wall
import traceback
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.sim.shard import ShardCoherenceError
from repro.sim.shard.keycodec import KeyCodec
from repro.sim.shard.merge import merge_records, merge_results
from repro.sim.shard.worker import (
    GhostTx,
    INF_KEY,
    ShardResult,
    ShardWorker,
    SlimRecord,
    W_MAX,
)

__all__ = ["run_sharded", "effective_jobs"]

#: Sorts above every real priority at a given time: ``(t, _CEIL)`` as a
#: horizon admits every real key with time <= t (inclusive horizons).
_CEIL = 2**60


def effective_jobs(jobs: int, shards: int, cpu_count: Optional[int] = None) -> int:
    """Cap the scenario-level worker pool so ``jobs x shards`` processes
    never exceed the machine.

    Precedence: the per-run shard count wins (a sharded run is one
    coherent unit and always gets its ``shards`` processes); the
    ``--jobs`` pool is clamped to ``cpu_count // shards``, floored at 1
    so progress is always possible.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, min(jobs, cpus // max(1, shards)))


# --------------------------------------------------------------- transports
def _pack_ghosts(codec: KeyCodec, ghosts: Sequence[GhostTx]):
    """Swap deep causal keys for table indices before pickling.

    Causal keys are linked chains whose nesting depth grows with the
    causal history; pickling them recurses per level and overflows on
    long runs.  See :mod:`repro.sim.shard.keycodec`.
    """
    packed = [
        replace(
            g,
            start_key=codec.encode(g.start_key),
            finish_key=codec.encode(g.finish_key),
        )
        for g in ghosts
    ]
    return codec.flush(), packed


def _unpack_ghosts(codec: KeyCodec, table, packed) -> List[GhostTx]:
    codec.extend(table)
    return [
        replace(
            g,
            start_key=codec.decode(g.start_key),
            finish_key=codec.decode(g.finish_key),
        )
        for g in packed
    ]


class _InlineHandle:
    """Same-process worker (cross mode, tests): calls are synchronous."""

    def __init__(self, config, shard_index: int, capture_all: bool) -> None:
        self.worker = ShardWorker(config, shard_index, capture_all)
        self.worker.start()
        self._reply: object = None

    def send_promise(self, ghosts: Sequence[GhostTx]) -> None:
        self.worker.deliver_ghosts(ghosts)
        self._reply = self.worker.promise()

    def recv_promise(self):
        return self._reply

    def send_execute(self, horizon) -> None:
        self._reply = self.worker.execute_window(horizon)

    def recv_execute(self):
        return self._reply

    def finish(self, until: float) -> ShardResult:
        return self.worker.finish(until)

    def close(self) -> None:
        pass


def _worker_main(conn, config, shard_index: int, capture_all: bool) -> None:
    """Entry point of a forked shard process: build, then serve rounds.

    Every key-bearing payload crosses the pipe codec-flattened (ghost
    start/finish keys, the promise key, the execute horizon, and each
    record's merge key) — naive pickling of the deeply nested causal
    keys recurses past the interpreter limit.
    """
    try:
        worker = ShardWorker(config, shard_index, capture_all)
        worker.start()
        # The child inherits the parent's entire heap via fork, and the
        # freshly built scenario graph is live for the whole run.  Move
        # both to the permanent generation so cyclic GC stops rescanning
        # them every collection — with a large parent heap that scan
        # otherwise dominates worker CPU (and therefore the busy metric).
        gc.freeze()
        # The window loop allocates acyclic objects almost exclusively
        # (key tuples, pooled frames/receptions), so the default gen-0
        # trigger fires thousands of collections that free nothing.
        # Raise the threshold so cycle detection still runs — leaked
        # cycles are eventually reclaimed — but at a rate the event loop
        # no longer notices.
        gc.set_threshold(200_000, 50, 50)
        codec = KeyCodec()
        while True:
            kind, payload = conn.recv()
            if kind == "promise":
                table, packed = payload
                worker.deliver_ghosts(_unpack_ghosts(codec, table, packed))
                peek, key = worker.promise()
                idx = codec.encode(key)
                conn.send(("ok", (codec.flush(), peek, idx)))
            elif kind == "execute":
                table, idx = payload
                codec.extend(table)
                executed, busy, out = worker.execute_window(codec.decode(idx))
                gtable, packed = _pack_ghosts(codec, out)
                conn.send(("ok", (gtable, executed, busy, packed)))
            elif kind == "finish":
                result = worker.finish(payload)
                result.records = [
                    replace(r, key=codec.encode(r.key)) for r in result.records
                ]
                conn.send(("ok", (codec.flush(), result)))
            elif kind == "stop":
                return
    except EOFError:  # coordinator died; nothing to report to
        return
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass


class _ProcHandle:
    """One forked shard process, spoken to over a duplex pipe.

    Promise and execute requests are sent to *all* shards before any
    reply is awaited, so shard windows genuinely overlap in wallclock.
    """

    def __init__(
        self, ctx, config, shard_index: int, capture_all: bool, intern: dict
    ) -> None:
        parent, child = ctx.Pipe()
        self.conn = parent
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child, config, shard_index, capture_all),
            daemon=True,
        )
        self.proc.start()
        child.close()
        # The intern dict is shared across every shard's codec so that
        # mirrored keys from different shards unify to identical objects
        # (keeps the merge's key comparisons shallow via the identity
        # shortcut instead of walking deep equal chains).
        self._codec = KeyCodec(intern)

    def _recv(self):
        kind, payload = self.conn.recv()
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def send_promise(self, ghosts: Sequence[GhostTx]) -> None:
        self.conn.send(("promise", _pack_ghosts(self._codec, ghosts)))

    def recv_promise(self):
        table, peek, idx = self._recv()
        self._codec.extend(table)
        return peek, self._codec.decode(idx)

    def send_execute(self, horizon) -> None:
        idx = self._codec.encode(horizon)
        self.conn.send(("execute", (self._codec.flush(), idx)))

    def recv_execute(self):
        table, executed, busy, packed = self._recv()
        return executed, busy, _unpack_ghosts(self._codec, table, packed)

    def finish(self, until: float) -> ShardResult:
        self.conn.send(("finish", until))
        table, result = self._recv()
        self._codec.extend(table)
        result.records = [
            replace(r, key=self._codec.decode(r.key)) for r in result.records
        ]
        return result

    def close(self) -> None:
        try:
            self.conn.send(("stop", None))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.terminate()
            self.proc.join(timeout=5)
        self.conn.close()


# -------------------------------------------------------------- coordination
def _coordinate(
    handles: List, shards: int, until: float
) -> Tuple[int, float, float]:
    """Run promise/execute rounds to the horizon.

    Returns ``(rounds, critical_path_seconds, busy_seconds_total)`` —
    the critical path is the sum over rounds of the slowest shard's busy
    time, i.e. the wallclock a fully parallel execution could achieve
    (reported by the benchmark alongside actual wallclock, which on a
    single-CPU host cannot show the speedup); the busy total sums every
    shard's execution time (critical / (total / shards) measures window
    balance).
    """
    pending: List[List[GhostTx]] = [[] for _ in range(shards)]
    until_bound = (until, _CEIL, ())
    rounds = 0
    critical = 0.0
    busy_total = 0.0
    while True:
        for i, handle in enumerate(handles):
            handle.send_promise(pending[i])
        promises = [handle.recv_promise() for handle in handles]
        pending = [[] for _ in range(shards)]
        peeks = [p for p, _ in promises if p is not None]
        floor = min(peeks) if peeks else None
        if floor is None or floor > until:
            break
        cushion = (floor + W_MAX, -_CEIL, ())
        for i, handle in enumerate(handles):
            foreign = min(
                (promises[j][1] for j in range(shards) if j != i),
                default=INF_KEY,
            )
            horizon = min(foreign, cushion, until_bound)
            handle.send_execute(horizon)
        executed_total = 0
        slowest = 0.0
        for i, handle in enumerate(handles):
            executed, busy, out = handle.recv_execute()
            executed_total += executed
            busy_total += busy
            if busy > slowest:
                slowest = busy
            for ghost in out:
                for target in ghost.targets:
                    pending[target].append(ghost)
        critical += slowest
        rounds += 1
        if executed_total == 0 and not any(pending):
            raise RuntimeError(
                "shard window protocol stalled: no shard could advance at "
                f"t={floor!r} (round {rounds})"
            )
    return rounds, critical, busy_total


# --------------------------------------------------------------- cross check
def _compare_traces(reference, merged: List[SlimRecord]) -> None:
    """Record-by-record equivalence per the repo trace contract."""
    limit = min(len(reference), len(merged))
    for i in range(limit):
        ref = reference[i]
        got = merged[i]
        if (repr(ref.time), ref.category, ref.node) != (
            repr(got.time),
            got.category,
            got.node,
        ):
            raise ShardCoherenceError(
                f"trace divergence at record {i}: single engine "
                f"({ref.time!r}, {ref.category!r}, node={ref.node!r}) vs "
                f"sharded ({got.time!r}, {got.category!r}, node={got.node!r})"
            )
    if len(reference) != len(merged):
        raise ShardCoherenceError(
            f"trace length mismatch: single engine {len(reference)} records, "
            f"sharded {len(merged)} (first {limit} identical)"
        )


# --------------------------------------------------------------- entry point
def run_sharded(config):
    """Execute ``config`` under the sharded runtime and merge the result.

    ``shard_mode="on"`` forks one process per shard (conservative
    windows overlap in wallclock); ``"cross"`` runs the shards inline
    *and* the unmodified single engine, comparing traces record by
    record.  Either way the returned :class:`ScenarioResult` is merged
    from the shards.
    """
    started = _wall.perf_counter()
    shards = config.shards
    cross = config.shard_mode == "cross"
    capture_all = cross or config.keep_trace

    handles: List = []
    try:
        if cross or shards == 1:
            handles = [
                _InlineHandle(config, i, capture_all) for i in range(shards)
            ]
        else:
            ctx = multiprocessing.get_context("fork")
            intern: dict = {}
            handles = [
                _ProcHandle(ctx, config, i, capture_all, intern)
                for i in range(shards)
            ]
        rounds, critical, busy_total = _coordinate(
            handles, shards, config.sim_time
        )
        parts = [handle.finish(config.sim_time) for handle in handles]
    finally:
        for handle in handles:
            handle.close()

    if cross:
        from repro.experiments.scenario import Scenario

        reference_cfg = replace(config, shard_mode="off", keep_trace=True)
        reference = Scenario(reference_cfg)
        reference.run()
        _compare_traces(
            reference.tracer.records, merge_records([p.records for p in parts])
        )

    result = merge_results(config, parts, _wall.perf_counter() - started)
    result.__dict__["shard_stats"] = {
        "shards": shards,
        "rounds": rounds,
        "critical_path_seconds": critical,
        "busy_seconds_total": busy_total,
        "transport": "inline" if (cross or shards == 1) else "fork",
        "events": sum(p.processed_events for p in parts),
    }
    return result
