"""One shard: a full scenario replica executing only its owned slice.

A :class:`ShardWorker` builds the *entire* scenario (placement, RNG
forks, mobility, routers, sources — bit-identical to the single engine
and to every sibling shard) on a :class:`~repro.sim.keyed.KeyedSimulator`
and then keeps only its *owned* nodes live: non-owned nodes' routers and
sources are started under :meth:`~repro.sim.keyed.KeyedSimulator.
suppress`, so their start events draw identical keys but are born dead.
Mobility waypoint rolls and table-purge ticks (tagged
:data:`~repro.sim.engine.PURE_ACTOR`) run for *every* node in every
shard — they touch no channel state and keep the dormant replicas'
positions exact, which is what lets each shard compute every other
shard's interest interval locally, with zero coordination.

Ownership is the node's **home column** at t=0 (static assignment keeps
the map globally computable); responsibility for the node never migrates
even as it roams, because its shard replays its full causal history.

The conservative window protocol (driven by :mod:`repro.sim.shard.
driver`) alternates promise / execute rounds; this module implements the
worker half: promise computation (see :meth:`ShardWorker.promise`),
bounded execution, and ghost mirroring via :class:`ShardBridge`.

Lookahead
---------
Radio propagation in the unit-disk medium is instantaneous, so the
usable lookahead is the MAC's interframe structure: the only four call
sites of ``phy.transmit`` are the ``mac.difs`` / ``mac.slot`` /
``mac.sifs_resp`` / ``mac.sifs_data`` event callbacks
(:data:`~repro.sim.keyed.TX_EVENT_NAMES`), and every path that *creates*
one of those schedules it at least SIFS (10 us) ahead (DIFS and slot
gaps are larger).  Hence a shard can promise, exactly:

* the full causal key of each pending transmit-site event (the
  transmission happens *at* that key), and
* ``t + SIFS`` for every other pending event at time ``t`` attributable
  to a node that could matter, including the ``end + SIFS`` of every
  in-flight (local or ghost) transmission, whose completion can trigger
  a SIFS-spaced CTS/ACK response.

Promises are *distance-scaled*: a node inside a (drift-widened) foreign
interest interval is *exposed* and contributes the exact keys above, but
an interior node is not skipped outright — its frame can trigger a
SIFS response or a forward by a node nearer the border, cascading
outward.  Influence travels at most one interference radius per
transmission and each hop costs at least one minimum frame airtime plus
SIFS, so an actor at distance ``d`` from the nearest foreign interval
contributes ``t + ceil(d / hop_range) * (min_airtime + SIFS)`` — distant
shards throttle each other only on the radio-propagation timescale of
the traffic between them.
"""

from __future__ import annotations

import itertools
import math
import time as _wall
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import repro.net.packet as _packet_mod
from repro.geo import vecops
from repro.geo.partition import ColumnPartition, Interval
from repro.net.mac.frames import MacFrame
from repro.sim.keyed import CausalKey, KeyedSimulator, key_cmp
from repro.sim.trace import TraceRecord

if vecops.HAVE_NUMPY:
    import numpy as np  # type: ignore[import-not-found]
else:  # pragma: no cover - scalar promise path covers numpy-free hosts
    np = None  # type: ignore[assignment]

__all__ = [
    "GhostTx",
    "ShardBridge",
    "ShardResult",
    "ShardWorker",
    "SlimRecord",
    "UID_STRIDE",
    "W_MAX",
    "worker_config",
]

#: Horizon cushion: no window extends more than this many simulated
#: seconds past the globally earliest pending event.  Bounds how stale
#: the drift-padded interest intervals can get (the pad covers
#: ``2 * vmax * W_MAX`` of movement) and guarantees progress even when
#: every shard's promise is infinite.
W_MAX = 0.05

#: Extra interest-interval padding (metres) on top of interference range
#: and worst-case drift — absorbs float slop in position interpolation.
_PAD_SLACK = 1.0

#: Packet-uid spacing between shards: each shard draws uids from its own
#: ``count(1 + shard_index * UID_STRIDE)`` so uids created in different
#: shards never collide (uids ride ghost frames across shards, and the
#: merged delivery collector matches ``app.send``/``app.recv`` on them).
UID_STRIDE = 10**12

#: Sorts below every real causal key at the same time (real priorities
#: are small ints); used to build "no event before time t" floor keys.
_FLOOR = -(2**60)

#: Sorts above every real priority: ``(until, _CEIL)`` admits every real
#: key with time <= until (the run horizon is inclusive).
_CEIL = 2**60

#: A key no real event ever reaches ("infinite" promise).
INF_KEY: CausalKey = (float("inf"), _CEIL, ())


@dataclass(frozen=True)
class GhostTx:
    """A cross-shard transmission announcement.

    Shipped by the owner shard at the window barrier; the receiving
    shard mirrors it as two ghost events: fan-out at ``start_key`` (the
    epsilon-successor of the transmitting MAC event's key — after the
    transmit event itself, before any of its same-instant children) and
    completion at ``finish_key`` (the owner's ``phy.tx_end`` key,
    verbatim, so receiver-side responses draw single-engine keys).
    """

    src_shard: int
    targets: Tuple[int, ...]
    sender_id: int
    x: float
    y: float
    frame: MacFrame
    start: float
    end: float
    start_key: CausalKey
    finish_key: CausalKey
    #: Earliest causal-influence time at the receiver: the mirrored
    #: completion fires at ``end`` and the fastest reply is SIFS-spaced.
    #: The piggybacking coordinator uses this to compensate a promise
    #: computed before the ghost was delivered (see the driver).
    resume: float = float("inf")


@dataclass(frozen=True)
class SlimRecord:
    """A trace record reduced to what the merge needs (picklable)."""

    key: tuple
    time: float
    category: str
    node: Optional[int]
    packet_uid: Optional[int] = None
    packet_kind: Optional[str] = None
    packet_size: Optional[int] = None


@dataclass
class ShardResult:
    """Everything one worker contributes to the merged result."""

    shard_index: int
    records: List[SlimRecord]
    router_stats: Dict[int, Dict[str, int]]
    collisions: int
    frames_sent: int
    fault_counters: Dict[str, float]
    processed_events: int = 0


class ShardBridge:
    """The medium's hook into the shard runtime.

    :meth:`note_local_tx` is called by :meth:`RadioMedium.transmit` for
    every local transmission; the bridge decides which foreign shards
    the footprint can reach (their drift-padded interest intervals
    contain the sender) and queues a :class:`GhostTx` for the barrier.
    It also keeps the in-flight completion list the promise scan uses.
    """

    def __init__(self, worker: "ShardWorker") -> None:
        self._worker = worker
        self.outgoing: List[GhostTx] = []

    def note_local_tx(self, tx, frame, affected, finish_event) -> None:
        worker = self._worker
        worker.inflight.append((finish_event, tx.sender_pos.x))
        exec_key = worker.sim._exec_key
        assert exec_key is not None, "transmission outside event execution"
        targets = tuple(
            s
            for s, interval in enumerate(worker.current_intervals)
            if s != worker.shard_index
            and ColumnPartition.in_interval(tx.sender_pos.x, interval)
        )
        if not targets:
            return
        time_, priority, ckey = exec_key
        self.outgoing.append(
            GhostTx(
                src_shard=worker.shard_index,
                targets=targets,
                sender_id=tx.sender_id,
                x=tx.sender_pos.x,
                y=tx.sender_pos.y,
                frame=frame,
                start=tx.start,
                end=tx.end,
                start_key=(time_, priority, ckey + (2,)),
                finish_key=finish_event.key,
                resume=tx.end + worker.sifs,
            )
        )
        # A cross-border transmission caps the rest of this window: the
        # foreign side will only see the ghost at the next barrier, and
        # its earliest possible reply (a SIFS-spaced response to the
        # mirrored completion) lands at end + SIFS — this shard must not
        # execute past that point until the reply round has happened.
        # From the next round on the foreign promise itself (which
        # counts mirrored in-flight completions) holds the line.
        barrier = (tx.end + worker.sifs, _FLOOR, ())
        if worker.window_barrier is None or barrier < worker.window_barrier:
            worker.window_barrier = barrier


def worker_config(config):
    """The scenario config a shard worker actually builds.

    * ``shard_mode="off"`` — workers step their engine directly; the
      config must not re-dispatch into the sharded driver.
    * ``pool_mode="off"`` — ghost frames outlive the owner's tx window
      and may be shared across shards (inline transport), so frames must
      never be recycled (PR 7 proved off == on byte-identical).
    * cross-verification modes drop to their fast halves: the verifiers
      compare against *all* radios, which an ownership-filtered fan-out
      legitimately no longer matches.
    * ``scheduler_mode`` is irrelevant here (the worker injects a
      :class:`KeyedSimulator`, whose backend follows ``keyed_queue``);
      pinned to ``"heap"`` only to keep configs canonical.
    * No retention, no sniffer: the worker ships records itself.
    """
    return replace(
        config,
        shard_mode="off",
        pool_mode="off",
        scheduler_mode="heap",
        spatial_mode="array" if config.spatial_mode == "cross" else config.spatial_mode,
        medium_index="grid" if config.medium_index == "cross" else config.medium_index,
        keep_trace=False,
        with_sniffer=False,
    )


class ShardWorker:
    """One shard of a sharded run (usable inline or in a worker process)."""

    def __init__(
        self, config, shard_index: int, capture_all: bool, plane=None
    ) -> None:
        # Import here: repro.experiments.scenario imports this package's
        # __init__ for mode validation, so a module-level import back
        # into it would be circular.
        from repro.experiments.scenario import Scenario

        self.config = config
        self.shard_index = shard_index
        self.shards = config.shards
        self.capture_all = capture_all
        self.sifs = 10e-6  # overwritten from the built nodes' params below

        #: Per-shard packet-uid counter (disjoint ranges across shards).
        self._uid_counter = itertools.count(1 + shard_index * UID_STRIDE)
        with self._uid_scope():
            self.sim = KeyedSimulator(
                queue_mode=getattr(config, "keyed_queue", "slim")
            )
            self.scenario = Scenario(worker_config(config), sim=self.sim)
        nodes = self.scenario.nodes
        if nodes:
            self.sifs = nodes[0].mac.params.sifs

        # Static home-column ownership from the (replicated, identical)
        # t=0 placement.  Every shard computes the same map; explicit
        # (possibly load-rebalanced) boundaries override equal widths.
        self.partition = ColumnPartition(
            0.0,
            config.width,
            self.shards,
            boundaries=getattr(config, "shard_boundaries", None),
        )
        self.owned_by: List[FrozenSet[int]] = [frozenset() for _ in range(self.shards)]
        assign: List[set] = [set() for _ in range(self.shards)]
        for node in nodes:
            column = self.partition.column_of(node.mobility.position_at(0.0).x)
            assign[column].add(node.node_id)
        self.owned_by = [frozenset(s) for s in assign]
        self.owned: FrozenSet[int] = self.owned_by[shard_index]

        vmax = 0.0 if config.static else config.max_speed
        self._pad = config.interference_range + 2.0 * vmax * W_MAX + _PAD_SLACK
        #: Exposure tests widen foreign intervals by the *sender's* own
        #: possible drift over one window: a node just outside a foreign
        #: interval could cross into it before it transmits, and its
        #: promise must already have covered that transmission (the ghost
        #: past-key guard makes any miss a hard error, not a silent
        #: divergence).
        self._own_drift = vmax * W_MAX + 0.5 * _PAD_SLACK
        #: Cascade-floor geometry: one transmission moves channel
        #: influence at most one interference radius (plus drift), and
        #: triggering the *next* transmission in a chain costs at least
        #: the shortest possible frame airtime plus SIFS (responses and
        #: forwards fire off ``phy.tx_end``, never off a tx start).
        params = (
            self.scenario.nodes[0].mac.params
            if self.scenario.nodes
            else None
        )
        if params is not None:
            min_airtime = min(
                params.control_duration(params.ack_bytes),
                params.control_duration(params.cts_bytes),
                params.control_duration(params.rts_bytes),
                params.data_duration(0),
                params.data_duration(0, broadcast=True),
            )
        else:  # pragma: no cover - degenerate empty scenario
            min_airtime = 0.0
        self._hop_cost = min_airtime + self.sifs if params else self.sifs
        self._hop_range = (
            config.interference_range + 2.0 * vmax * W_MAX + _PAD_SLACK
        )
        self.current_intervals: List[Interval] = [None] * self.shards

        #: Scripted teleports break the bounded-drift assumption the
        #: interval pad and distance-scaled floors rest on, so they get
        #: worst-case treatment: a teleporting node is permanently
        #: *exposed* (its promise floors never take distance credit) and
        #: its owner's interest interval always covers every scripted
        #: destination, so transmissions near a future landing spot are
        #: mirrored even before the jump happens.
        self._teleport_nodes: FrozenSet[int] = frozenset(
            entry[1] for entry in config.teleports
        )
        self._teleport_xs: List[List[float]] = [[] for _ in range(self.shards)]
        for entry in config.teleports:
            owner = self.partition.column_of(
                nodes[entry[1]].mobility.position_at(0.0).x
            )
            self._teleport_xs[owner].append(entry[2])

        #: Vectorized promise geometry.  The promise round evaluates
        #: every replica's position (interest intervals span *all*
        #: shards' nodes) once per round; the scalar loop is O(nodes)
        #: interpreter round trips and dominated sharded wallclock.  The
        #: medium's array index already maintains batch leg kernels for
        #: exactly these mobility models, and its ``positions_at`` is
        #: bitwise-equal to scalar ``position_at``, so min/max folds and
        #: distance floors computed on the arrays match the scalar path
        #: IEEE-op for IEEE-op.  Falls back to the scalar loops when the
        #: array backend is off (``spatial_mode="obj"`` or no numpy).
        self._aindex = getattr(self.scenario.medium, "_aindex", None)
        self._shard_rows: Optional[List] = None
        if self._aindex is not None and np is not None:
            row_by_node = self._aindex._row_by_node
            if all(n.node_id in row_by_node for n in nodes):
                self._shard_rows = [
                    np.fromiter(
                        (row_by_node[nid] for nid in sorted(owned)),
                        dtype=np.intp,
                        count=len(owned),
                    )
                    if owned
                    else None
                    for owned in self.owned_by
                ]
                self._own_sorted: List[int] = sorted(self.owned)
                self._own_rows = self._shard_rows[shard_index]
                self._own_teleport = np.fromiter(
                    (nid in self._teleport_nodes for nid in self._own_sorted),
                    dtype=bool,
                    count=len(self._own_sorted),
                )

        #: Shared-memory position plane (optional).  Publication needs
        #: the array backend; a worker without it never publishes or
        #: compresses, and since compression is a per-producer decision
        #: (the coordinator only resolves ghosts that arrive as NaN),
        #: mixed-capability runs stay correct without negotiation.
        self.plane = plane
        self.plane_epoch = 0
        self._plane_ids = None
        if (
            plane is not None
            and self._shard_rows is not None
            and self._own_rows is not None
            and all(nid < plane.num_nodes for nid in self._own_sorted)
        ):
            self._plane_ids = np.fromiter(
                self._own_sorted, dtype=np.intp, count=len(self._own_sorted)
            )

        #: Pending completion events of in-flight transmissions — local
        #: ``phy.tx_end`` and mirrored ghost finishes — paired with the
        #: transmitter's x position, so the promise scan can grant the
        #: hop-chain lookahead to completions far from every border.
        #: Lazily pruned (executed events read as cancelled).
        self.inflight: List = []
        #: Set by the bridge when a window emits a cross-border ghost:
        #: the window must not run past the earliest possible foreign
        #: reply to it (see :meth:`ShardBridge.note_local_tx`).
        self.window_barrier: Optional[CausalKey] = None
        self.bridge = ShardBridge(self)
        self.scenario.medium.set_shard_context(self.sim, self.owned, self.bridge)
        injector = self.scenario.fault_injector
        if injector is not None:
            injector.scope_guard = self._fault_scope
        self.records: List[SlimRecord] = []
        self._owned_sources = [
            src for src in self.scenario.sources if src.node.node_id in self.owned
        ]
        self._subscribe_capture()
        self._started = False

    # ------------------------------------------------------------ plumbing
    @contextmanager
    def _uid_scope(self) -> Iterator[None]:
        """Route packet-uid draws to this shard's disjoint range.

        The counter is a module global (uids must be process-unique);
        with several inline workers interleaving in one process, each
        swaps its own counter in around build and execution.
        """
        saved = _packet_mod._uid_counter
        _packet_mod._uid_counter = self._uid_counter
        try:
            yield
        finally:
            _packet_mod._uid_counter = saved

    def _fault_scope(self, node_id: int):
        """Foreign crash/recover runs for state parity, schedules nothing."""
        if node_id in self.owned:
            return _null_context()
        return self.sim.suppress()

    def _subscribe_capture(self) -> None:
        tracer = self.scenario.tracer
        if self.capture_all:
            tracer.subscribe("", self._capture)
        else:
            # The exact categories a keep_trace=False single engine still
            # constructs records for (its collectors subscribe to these).
            for category in ("app.send", "app.recv", "phy.tx"):
                tracer.subscribe(category, self._capture)

    def _capture(self, record: TraceRecord) -> None:
        # The key is drawn for *every* captured record — emission
        # counters must advance exactly as they do in sibling shards —
        # but only records this shard owns are kept (foreign fault
        # events replay everywhere for state parity; node-less records
        # are shard 0's).
        key = self.sim.record_key()
        node = record.node
        if node is None:
            if self.shard_index != 0:
                return
        elif node not in self.owned:
            return
        data = record.data
        packet = data.get("packet_obj")
        self.records.append(
            SlimRecord(
                key=key,
                time=record.time,
                category=record.category,
                node=node,
                packet_uid=data.get("packet_uid"),
                packet_kind=data.get("packet_kind"),
                packet_size=packet.size_bytes() if packet is not None else None,
            )
        )

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Replay the single engine's start sequence, suppressing foreign
        nodes' schedules (identical build keys either way)."""
        assert not self._started
        self._started = True
        with self._uid_scope():
            for node in self.scenario.nodes:
                if node.node_id in self.owned:
                    node.start()
                else:
                    with self.sim.suppress():
                        node.start()
            for source in self.scenario.sources:
                if source.node.node_id in self.owned:
                    source.start()
                else:
                    with self.sim.suppress():
                        source.start()
            injector = self.scenario.fault_injector
            if injector is not None:
                injector.arm()

    # ------------------------------------------------------------- promises
    def intervals(self) -> List[Interval]:
        """Drift-padded x-extents of every shard's owned nodes, evaluated
        on this shard's local replicas (identical across shards up to
        bounded drift, which the pad covers)."""
        t = self._eval_time()
        if self._shard_rows is not None:
            # One batch kernel call for every replica's position, then
            # per-shard min/max gathers — bitwise equal to the scalar
            # fold (positions_at matches position_at, and min/max picks
            # the same representatives).
            x, _y = self._aindex.positions_at(t)
            out: List[Interval] = []
            for shard, rows in enumerate(self._shard_rows):
                if rows is None:
                    out.append(None)
                    continue
                xs = x[rows]
                lo = float(xs.min())
                hi = float(xs.max())
                for tx in self._teleport_xs[shard]:
                    if tx < lo:
                        lo = tx
                    if tx > hi:
                        hi = tx
                out.append((lo - self._pad, hi + self._pad))
            self.current_intervals = out
            return out
        nodes = self.scenario.nodes
        out = []
        for shard, owned in enumerate(self.owned_by):
            lo = None
            hi = None
            for nid in owned:
                x = nodes[nid].mobility.position_at(t).x
                if lo is None or x < lo:
                    lo = x
                if hi is None or x > hi:
                    hi = x
            for x in self._teleport_xs[shard]:
                # Scripted destinations count for the whole run: a jump
                # is not bounded drift, so the interval must already
                # cover the landing spot when the window spans it.
                if lo is None or x < lo:
                    lo = x
                if hi is None or x > hi:
                    hi = x
            out.append(None if lo is None else (lo - self._pad, hi + self._pad))
        self.current_intervals = out
        return out

    def _eval_time(self) -> float:
        head = self.sim.peek_key()
        return head[0] if head is not None else self.sim.now

    def peek_time(self) -> Optional[float]:
        head = self.sim.peek_key()
        return head[0] if head is not None else None

    def promise(self) -> Tuple[Optional[float], CausalKey]:
        """``(next event time, promise key)`` for this round.

        The promise key lower-bounds the key of this shard's earliest
        possible future transmission *that can affect another shard*.
        """
        self.intervals()
        drift = self._own_drift
        foreign = [
            (iv[0] - drift, iv[1] + drift)
            for s, iv in enumerate(self.current_intervals)
            if s != self.shard_index and iv is not None
        ]
        nodes = self.scenario.nodes
        t = self._eval_time()
        best: CausalKey = INF_KEY
        if foreign:
            sifs = self.sifs
            hop_cost = self._hop_cost
            hop_range = self._hop_range
            exposed = set()
            # Every owned actor gets a floor.  Exposed actors (inside a
            # drift-widened foreign interval) can transmit across the
            # border directly: their pending transmit sites count at
            # their exact keys, anything else at +SIFS.  Unexposed
            # actors can still *cascade* into a border transmission —
            # their frame triggers a SIFS response or a forward by a
            # node closer to the border — but influence travels at most
            # one interference radius per transmission and every hop
            # costs at least one minimum frame airtime plus SIFS, so
            # distance buys lookahead.
            if self._shard_rows is not None:
                if self._own_rows is not None:
                    x, _y = self._aindex.positions_at(t)
                    xs = x[self._own_rows]
                    dist = None
                    for lo, hi in foreign:
                        d = np.maximum(lo - xs, xs - hi)
                        dist = d if dist is None else np.minimum(dist, d, out=dist)
                    np.maximum(dist, 0.0, out=dist)
                    # Teleporting nodes never earn distance credit: a
                    # scripted jump can move them to a border instantly.
                    exposed_mask = (dist <= 0.0) | self._own_teleport
                    bonus = np.ceil(dist / hop_range) * hop_cost
                    bonus[exposed_mask] = sifs
                    bonus_list = bonus.tolist()
                    next_time = self.sim.actor_next_time
                    best_t = math.inf
                    for i, nid in enumerate(self._own_sorted):
                        earliest = next_time(nid)
                        if earliest is not None:
                            ft = earliest + bonus_list[i]
                            if ft < best_t:
                                best_t = ft
                    if best_t < math.inf:
                        best = (best_t, _FLOOR, ())
                    exposed = set(
                        itertools.compress(self._own_sorted, exposed_mask.tolist())
                    )
            else:
                for nid in sorted(self.owned):
                    earliest = self.sim.actor_next_time(nid)
                    x = nodes[nid].mobility.position_at(t).x
                    dist = min(max(lo - x, x - hi, 0.0) for lo, hi in foreign)
                    if dist <= 0.0 or nid in self._teleport_nodes:
                        # Teleporting nodes never earn distance credit: a
                        # scripted jump can move them to a border instantly.
                        exposed.add(nid)
                        bonus = sifs
                    else:
                        bonus = math.ceil(dist / hop_range) * hop_cost
                    if earliest is not None:
                        floor = (earliest + bonus, _FLOOR, ())
                        if floor < best:
                            best = floor
            sentinel = self.sim.tx_sentinel_floor(
                lambda actor: actor is None or actor in exposed
            )
            if sentinel is not None and key_cmp(sentinel, best) < 0:
                best = sentinel
        # Untracked events and in-flight completions are counted even
        # with no node exposed: a completing transmission can trigger a
        # SIFS response from a node that *becomes* relevant, and events
        # with no attribution are conservatively global.
        untracked = self.sim.untracked_next_time()
        if untracked is not None:
            floor = (untracked + self.sifs, _FLOOR, ())
            if floor < best:
                best = floor
        live: List = []
        for ev, tx_x in self.inflight:
            if ev.cancelled and ev.key[0] <= self.sim.now:
                continue
            live.append((ev, tx_x))
            # The SIFS responder to a completing transmission sits within
            # one interference radius of the (fixed) transmit site, so
            # distance to the border buys the same hop-chain lookahead as
            # an unexposed actor — minus the first hop, whose airtime the
            # in-flight frame has already paid.
            bonus = self.sifs
            if foreign:
                d = min(max(lo - tx_x, tx_x - hi, 0.0) for lo, hi in foreign)
                if d > self._hop_range:
                    bonus += (
                        math.ceil((d - self._hop_range) / self._hop_range)
                        * self._hop_cost
                    )
            floor = (ev.key[0] + bonus, _FLOOR, ())
            if floor < best:
                best = floor
        self.inflight = live
        return self.peek_time(), best

    # ------------------------------------------------------------ ghost I/O
    def deliver_ghosts(self, ghosts: Sequence[GhostTx]) -> None:
        """Mirror foreign transmissions announced at the last barrier."""
        medium = self.scenario.medium
        sim = self.sim
        from repro.geo.vec import Position

        for g in ghosts:
            pos = Position(g.x, g.y)
            cell: dict = {}

            def _start(g=g, pos=pos, cell=cell) -> None:
                cell["v"] = medium.apply_ghost_start(
                    g.sender_id, pos, g.frame, g.start, g.end
                )

            def _finish(cell=cell) -> None:
                tx, affected = cell["v"]
                medium.apply_ghost_finish(tx, affected)

            sim.insert_ghost(g.start_key, _start, "phy.ghost_start")
            finish_event = sim.insert_ghost(g.finish_key, _finish, "phy.tx_end")
            self.inflight.append((finish_event, g.x))

    # ------------------------------------------------------------ execution
    def execute_window(self, horizon: CausalKey) -> Tuple[int, float, List[GhostTx]]:
        """Execute every pending event with key < ``horizon``.

        Returns ``(events executed, busy CPU seconds, outgoing
        ghosts)``.  The busy time feeds the critical-path metric (the
        sum over windows of the slowest shard's busy time — the
        wall-clock a fully parallel execution could achieve).  CPU time,
        not wall time: when worker processes outnumber cores the OS
        time-slices them, and a descheduled worker is not doing work the
        critical path should charge for.
        """
        sim = self.sim
        executed = 0
        self.window_barrier = None
        started = _wall.process_time()
        with self._uid_scope():
            while True:
                head = sim.peek_key()
                # key_cmp: the horizon embeds foreign chains that can be
                # time-locked with the local head for thousands of links
                # (shared slot grid); the native comparison recurses.
                if head is None or key_cmp(head, horizon) >= 0:
                    break
                if (
                    self.window_barrier is not None
                    and key_cmp(head, self.window_barrier) >= 0
                ):
                    break
                sim.execute_next()
                executed += 1
        busy = _wall.process_time() - started
        out = self.bridge.outgoing
        self.bridge.outgoing = []
        if self._plane_ids is not None:
            # Publish owned legs at the barrier — strictly before the
            # round reply, which is what makes the coordinator's plane
            # reads race-free — then compress the positions of outgoing
            # ghosts the published legs can reproduce bit-exactly.
            self.plane_epoch = self.plane.publish_legs(
                self.shard_index,
                self._plane_ids,
                self._aindex._legs,
                self._own_rows,
            )
            out = [
                replace(g, x=math.nan, y=math.nan)
                if self.plane.resolvable(g.sender_id, g.start)
                else g
                for g in out
            ]
        return executed, busy, out

    def execute_round(
        self, horizon: CausalKey, ghosts: Sequence[GhostTx]
    ) -> Tuple[int, float, List[GhostTx], Optional[float], CausalKey]:
        """One piggybacked round: deliver, execute, then re-promise.

        Folding the promise into the execute reply halves the
        steady-state IPC round trips.  The returned promise is computed
        *before* the next round's ghosts arrive; the coordinator
        compensates with each pending ghost's ``resume`` floor (a ghost
        can only defer existing events or trigger SIFS-spaced responses
        to its completion, never create anything earlier — see the
        driver's soundness note).
        """
        self.deliver_ghosts(ghosts)
        executed, busy, out = self.execute_window(horizon)
        peek, key = self.promise()
        return executed, busy, out, peek, key

    # ------------------------------------------------------------- results
    def finish(self, until: float) -> ShardResult:
        """Close the run at the horizon and extract this shard's share."""
        if self.sim.now < until:
            self.sim._now = until
        injector = self.scenario.fault_injector
        if injector is not None:
            injector.finalize(self.sim.now)
        stats: Dict[int, Dict[str, int]] = {}
        collisions = 0
        for node in self.scenario.nodes:
            if node.node_id not in self.owned:
                continue
            stats[node.node_id] = dict(vars(node.router.stats))
            collisions += node.phy.frames_collided
        return ShardResult(
            shard_index=self.shard_index,
            records=self.records,
            router_stats=stats,
            collisions=collisions,
            frames_sent=self.scenario.medium.frames_sent,
            fault_counters=dict(self.scenario.fault_metrics.counters()),
            processed_events=self.sim.processed_events,
        )


@contextmanager
def _null_context() -> Iterator[None]:
    yield
