"""Sharded multi-process simulation: column partitions, one engine each.

The arena is split into vertical column shards
(:class:`repro.geo.partition.ColumnPartition`).  Each shard runs a full
:class:`repro.sim.keyed.KeyedSimulator` replica of the scenario in which
only the *owned* nodes (home column at t=0) are live — every other
node's replica is built identically (same RNG draws, same event keys)
but dormant.  Shards advance in conservative time windows bounded by
exchanged *promises* (earliest possible future transmission), and every
transmission whose sender is foreign but whose footprint reaches an
owned node is mirrored as a *ghost* at the exact event key the owning
shard used — so carrier sense, collisions, and capture at shard borders
are byte-identical to the single-engine run.

``shard_mode`` on :class:`repro.experiments.scenario.ScenarioConfig`:

* ``"off"``   — single engine (the exact seed path; default),
* ``"on"``    — sharded execution (in-process or multi-process),
* ``"cross"`` — sharded and single-engine side by side; the first trace
  divergence raises :class:`ShardCoherenceError`.

This package keeps its import surface light: ``ScenarioConfig``
validation imports :func:`validate_shard_mode` from here, and the
heavyweight driver (which itself imports the scenario module) is only
loaded lazily from :meth:`Scenario.run`.
"""

from __future__ import annotations

__all__ = ["SHARD_MODES", "ShardCoherenceError", "validate_shard_mode"]

SHARD_MODES = ("off", "on", "cross")


class ShardCoherenceError(AssertionError):
    """Sharded and single-engine executions diverged.

    Raised by ``shard_mode="cross"`` at the *first* differing trace
    record (or differing record count), with both sides' views in the
    message.  Inherits :class:`AssertionError`: a coherence failure is a
    broken invariant, not an input error.
    """


def validate_shard_mode(mode: str) -> str:
    """Validate and return ``mode`` (one of :data:`SHARD_MODES`)."""
    if mode not in SHARD_MODES:
        raise ValueError(f"shard_mode must be one of {SHARD_MODES}, got {mode!r}")
    return mode
