"""Merging per-shard outputs back into one :class:`ScenarioResult`.

The workers ship key-stamped :class:`~repro.sim.shard.worker.SlimRecord`
streams (each already in causal-key order — execution order is key
order) plus per-owned-node counters.  The merge:

* k-way merges the record streams by causal key, which by the ordering
  theorem (:mod:`repro.sim.keyed`) is exactly the single engine's
  emission order;
* replays the merged stream through a fresh tracer wired to the *real*
  metric collectors, so delivery fraction, latency, and overhead are
  computed by the same code as a single-engine run;
* sums per-node counters (each node is owned by exactly one shard) and
  reconciles the fault ledger (lifecycle counters replicate identically
  in every shard for state parity — taken from shard 0; per-receiver
  loss counters and delivery-despite-faults counts are partial — summed).
"""

from __future__ import annotations

import heapq
from functools import cmp_to_key
from typing import Dict, Iterable, List, Sequence

from repro.experiments.scenario import ScenarioConfig, ScenarioResult
from repro.metrics.collectors import DeliveryCollector, OverheadCollector
from repro.metrics.stats import summarize
from repro.routing.base import RouterStats
from repro.sim.keyed import key_cmp
from repro.sim.shard.worker import ShardResult, SlimRecord
from repro.sim.trace import Tracer

__all__ = ["merge_records", "merge_results", "PacketShim"]


class PacketShim:
    """Stands in for the packet object in replayed ``phy.tx`` records.

    The overhead collector only reads ``kind`` and ``size_bytes()``;
    shipping these two numbers instead of the live packet keeps ghost
    records transport-agnostic (picklable, no cross-shard aliasing).
    """

    __slots__ = ("kind", "_size")

    def __init__(self, kind: str, size: int) -> None:
        self.kind = kind
        self._size = size

    def size_bytes(self) -> int:
        return self._size


_KEY_ORDER = cmp_to_key(key_cmp)


def merge_records(streams: Sequence[Sequence[SlimRecord]]) -> List[SlimRecord]:
    """K-way merge of per-shard record streams by causal key.

    Ordered by :func:`~repro.sim.keyed.key_cmp` rather than native
    tuple comparison: records from different shards at equal times can
    carry time-locked chains whose native comparison recurses one frame
    per link (same hazard as the driver's promise mins).
    """
    return list(heapq.merge(*streams, key=lambda r: _KEY_ORDER(r.key)))


#: Lifecycle fields every shard counts identically (each replays every
#: crash/recover for state parity) — taken from shard 0, not summed.
_REPLICATED_FAULT_FIELDS = ("crashes", "recoveries", "downtime_s")
#: Derived field recomputed from the summed inputs.
_DERIVED_FAULT_FIELDS = ("mean_burst_length",)


def _merge_fault_counters(parts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    parts = list(parts)
    merged: Dict[str, float] = dict(parts[0])
    for other in parts[1:]:
        for key, value in other.items():
            if key in _REPLICATED_FAULT_FIELDS or key in _DERIVED_FAULT_FIELDS:
                continue
            merged[key] = merged.get(key, 0) + value
    if merged.get("bursts_completed"):
        merged["mean_burst_length"] = round(
            merged["burst_drops_total"] / merged["bursts_completed"], 6
        )
    else:
        merged["mean_burst_length"] = 0.0
    return merged


def merge_results(
    config: ScenarioConfig,
    parts: Sequence[ShardResult],
    wallclock_seconds: float,
) -> ScenarioResult:
    """Assemble the single :class:`ScenarioResult` from all shards."""
    ordered = sorted(parts, key=lambda p: p.shard_index)
    merged = merge_records([p.records for p in ordered])

    # Replay through the real collectors (same wiring order as Scenario).
    tracer = Tracer(keep=config.keep_trace)
    delivery = DeliveryCollector(tracer)
    overhead = OverheadCollector(tracer)
    for record in merged:
        if record.category == "phy.tx":
            packet_obj = (
                PacketShim(record.packet_kind, record.packet_size)
                if record.packet_size is not None
                else None
            )
            tracer.emit(
                record.time,
                record.category,
                node=record.node,
                packet_uid=record.packet_uid,
                packet_kind=record.packet_kind,
                packet_obj=packet_obj,
            )
        elif record.packet_uid is not None:
            tracer.emit(
                record.time,
                record.category,
                node=record.node,
                packet_uid=record.packet_uid,
                packet_kind=record.packet_kind,
            )
        else:
            tracer.emit(record.time, record.category, node=record.node)

    totals = RouterStats()
    by_node: Dict[int, Dict[str, int]] = {}
    for part in ordered:
        by_node.update(part.router_stats)
    for node_id in sorted(by_node):
        stats = by_node[node_id]
        for field_name in vars(totals):
            setattr(totals, field_name, getattr(totals, field_name) + stats[field_name])

    collisions = sum(p.collisions for p in ordered)
    frames_on_air = sum(p.frames_sent for p in ordered)
    latencies = delivery.latencies
    bytes_by_kind = {
        kind: counter.bytes for kind, counter in overhead.by_kind.items()
    }
    frames_by_kind = {
        kind: counter.frames for kind, counter in overhead.by_kind.items()
    }
    fault_counters: Dict[str, float] = {}
    if config.loss_model != "none" or (
        config.fault_plan is not None and config.fault_plan
    ):
        fault_counters = _merge_fault_counters(p.fault_counters for p in ordered)
    result = ScenarioResult(
        config=config,
        sent=delivery.sent,
        delivered=delivery.delivered,
        delivery_fraction=delivery.delivery_fraction,
        mean_latency=delivery.mean_latency,
        latency=summarize(latencies) if latencies else None,
        router_totals=totals,
        frames_on_air=frames_on_air,
        collisions=collisions,
        wallclock_seconds=wallclock_seconds,
        bytes_by_kind=bytes_by_kind,
        frames_by_kind=frames_by_kind,
        fault_counters=fault_counters,
    )
    # Stash the merged trace for cross-mode comparison and tests.
    result.__dict__["merged_tracer"] = tracer
    return result
