"""Portable encoding for causal keys crossing process boundaries.

Causal keys are linked structures: a runtime ckey embeds its parent's
full key, which embeds *its* ckey, and so on back to a build-phase root.
In-process this is cheap — parents are shared by reference, and tuple
comparison short-circuits element equality on identity — but the chains
grow with causal depth (thousands of links over a long run), so both
pickling them and *structurally* comparing two non-identical copies
recurse per level and overflow the interpreter limit.

This module flattens key DAGs iteratively.  A :class:`KeyCodec` sits at
each pipe endpoint and serves both directions with one shared object
universe:

* :meth:`encode` canonicalizes a key bottom-up with an explicit stack
  (memoised by identity), then emits one *shallow* descriptor per node
  not yet in the pipe's table — shared ancestry crosses each pipe once,
  ever.  Fresh descriptors ship with the message via :meth:`flush`.
* :meth:`extend` ingests the peer's descriptors, rebuilding nodes
  bottom-up and **interning** them by structure.  Because encoding
  registers the same intern entries, a key that embeds history this
  endpoint already owns decodes to the *original local objects*: a
  sentinel horizon built on a ghost this shard emitted compares against
  local heap keys identity-shallow instead of walking thousands of
  structurally-equal links.

Both directions of a pipe append to one index space; the strict
request/reply lockstep of the shard protocol keeps the two endpoint
tables aligned entry-for-entry (each message ships exactly the entries
its sender appended).  The coordinator passes one shared ``intern``
dict to every shard's codec so mirrored keys arriving from *different*
shards also unify before the record streams are merged.

Node shapes (distinguished by length — a full key is always a 3-tuple,
a ckey never is):

* full key  ``(time, priority, ckey)``
* build ckey ``(0, index)``
* runtime ckey ``(1, parent_full_key, scope, k)`` — plus a trailing
  ``2`` for ghost-start epsilon keys
* empty ckey ``()`` — floor/ceiling bounds
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["KeyCodec"]

#: Descriptor kinds (first element of a table entry).
_KIND_KEY = 0  # full key: (0, time, priority, ckey_index | -1 for ())
_KIND_BUILD = 1  # build ckey: (1, index)
_KIND_RUNTIME = 2  # runtime ckey: (2, parent_key_index, scope, k, ghost_flag)


def _sub(node: tuple) -> Optional[tuple]:
    """The embedded node that must be handled before ``node``."""
    if len(node) == 3:  # full key -> its ckey (empty ckey is terminal)
        return node[2] if node[2] else None
    if len(node) >= 4:  # runtime ckey -> its parent full key
        return node[1]
    return None  # build ckey / empty


def _rebuild(node: tuple, canonical_sub: tuple) -> tuple:
    n = len(node)
    if n == 3:
        return (node[0], node[1], canonical_sub)
    rebuilt = (1, canonical_sub, node[2], node[3])
    return rebuilt + (2,) if n == 5 else rebuilt


class KeyCodec:
    """One per pipe endpoint; encode and decode share one universe."""

    def __init__(self, intern: Optional[Dict[tuple, tuple]] = None) -> None:
        self._nodes: List[tuple] = []  # object per table index (decode)
        self._index: Dict[int, int] = {}  # id(canonical) -> first index
        self._canon: Dict[int, tuple] = {}  # id(seen) -> canonical twin
        self._pin: List[tuple] = []  # keeps ids in _canon valid
        self._fresh: List[tuple] = []  # descriptors since last flush()
        self._intern: Dict[tuple, tuple] = {} if intern is None else intern

    # ------------------------------------------------------------- plumbing
    def _probe(self, node: tuple) -> tuple:
        """Structural identity of ``node`` (its sub-node, if any, must
        already be canonical so ``id`` is a sound proxy for structure)."""
        n = len(node)
        if n == 3:
            return (_KIND_KEY, node[0], node[1], id(node[2]) if node[2] else 0)
        if n == 2:
            return (_KIND_BUILD, node[1])
        return (
            _KIND_RUNTIME,
            id(node[1]),
            node[2],
            node[3],
            1 if n == 5 else 0,
        )

    def _describe(self, node: tuple) -> tuple:
        """Shallow wire descriptor of a canonical node whose ancestry is
        already registered in the table."""
        index = self._index
        n = len(node)
        if n == 3:
            ck = node[2]
            return (_KIND_KEY, node[0], node[1], index[id(ck)] if ck else -1)
        if n == 2:
            return (_KIND_BUILD, node[1])
        return (
            _KIND_RUNTIME,
            index[id(node[1])],
            node[2],
            node[3],
            1 if n == 5 else 0,
        )

    def _canonical(self, key: tuple) -> tuple:
        """Resolve ``key`` to its one canonical twin, interning any new
        structure along the chain."""
        cmap = self._canon
        intern = self._intern
        chain: List[tuple] = []
        cur: Optional[tuple] = key
        while cur is not None and id(cur) not in cmap:
            chain.append(cur)
            cur = _sub(cur)
        for node in chain[::-1]:
            sub = _sub(node)
            shaped = node
            if sub is not None:
                canonical_sub = cmap[id(sub)]
                if canonical_sub is not sub:
                    shaped = _rebuild(node, canonical_sub)
            probe = self._probe(shaped)
            canonical = intern.get(probe)
            if canonical is None:
                canonical = intern[probe] = shaped
            cmap[id(node)] = canonical
            self._pin.append(node)
        return cmap[id(key)]

    # --------------------------------------------------------------- encode
    def encode(self, key: Optional[tuple]) -> Optional[int]:
        """Return ``key``'s table index, appending fresh descriptors for
        any not-yet-shipped ancestry (collect them with :meth:`flush`)."""
        if key is None:
            return None
        canonical = self._canonical(key)
        index = self._index
        chain: List[tuple] = []
        cur: Optional[tuple] = canonical
        while cur is not None and id(cur) not in index:
            chain.append(cur)
            cur = _sub(cur)
        for node in chain[::-1]:
            index[id(node)] = len(self._nodes)
            self._nodes.append(node)
            self._fresh.append(self._describe(node))
        return index[id(canonical)]

    def flush(self) -> List[tuple]:
        fresh, self._fresh = self._fresh, []
        return fresh

    # --------------------------------------------------------------- decode
    def extend(self, table: List[tuple]) -> None:
        """Ingest the peer's fresh descriptors, in send order."""
        nodes = self._nodes
        index = self._index
        cmap = self._canon
        intern = self._intern
        for desc in table:
            kind = desc[0]
            if kind == _KIND_KEY:
                _, t, prio, ci = desc
                ck = nodes[ci] if ci >= 0 else ()
                probe: tuple = (_KIND_KEY, t, prio, id(ck) if ci >= 0 else 0)
                node = intern.get(probe)
                if node is None:
                    node = intern[probe] = (t, prio, ck)
            elif kind == _KIND_BUILD:
                probe = (_KIND_BUILD, desc[1])
                node = intern.get(probe)
                if node is None:
                    node = intern[probe] = (0, desc[1])
            else:
                _, pi, scope, k, ghost = desc
                parent = nodes[pi]
                probe = (_KIND_RUNTIME, id(parent), scope, k, ghost)
                node = intern.get(probe)
                if node is None:
                    node = (1, parent, scope, k)
                    if ghost:
                        node += (2,)
                    intern[probe] = node
            index.setdefault(id(node), len(nodes))
            cmap.setdefault(id(node), node)
            nodes.append(node)

    def decode(self, index: Optional[int]) -> Optional[tuple]:
        if index is None:
            return None
        return self._nodes[index]
