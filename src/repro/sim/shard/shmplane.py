"""Shared-memory position plane for the sharded runtime.

A :class:`ShardPlane` is one ``multiprocessing.shared_memory`` block
holding the PR 7 :class:`~repro.geo.vecops.LegArrays` leg parameters of
every node, indexed by **node id**, plus one publication epoch slot per
shard.  The driver creates it before forking; workers inherit the
mapped object through the ``fork`` start method (nothing is pickled or
re-attached, so the resource tracker sees exactly one owner and the
driver's ``finally`` block is the single unlink site).

Write protocol (the epoch barrier)
----------------------------------
Rows are partitioned by ownership: shard ``i`` writes only the rows of
nodes it owns, and only from :meth:`publish_legs` — the *publication
helper*, the one sanctioned write site (lint rule DET-015 flags any
other write to plane-backed arrays).  A worker publishes at its window
barrier, strictly before sending its round reply; the coordinator reads
only after receiving that reply.  The pipe message is therefore the
happens-before edge, and because row sets are disjoint no two processes
ever write the same bytes.  The per-shard epoch counter (bumped last in
:meth:`publish_legs`) is a defensive check on top: the coordinator
verifies the epoch it observes is at least the one the reply reports,
turning any ordering violation into a :class:`~repro.sim.shard.
ShardCoherenceError` instead of a silent trace divergence.

Ghost position compression
--------------------------
A :class:`~repro.sim.shard.worker.GhostTx` carries the sender position
``(x, y)`` at transmission start.  When the sender's *published* leg
was already current at ``g.start`` (``depart[id] <= g.start``), that
position is recomputable from the plane bit-for-bit — the scalar
formula in :meth:`resolve` mirrors ``vecops.batch_position_at``
IEEE-op for IEEE-op — so the producer ships NaN instead and the
coordinator resolves it at the barrier (no worker is executing, so the
read cannot race a publication).  Fixed rows (``depart = +inf``) and
any leg rolled after ``g.start`` fail the guard and keep their inline
floats; correctness never depends on the compression firing.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.geo import vecops

if vecops.HAVE_NUMPY:
    import numpy as np  # type: ignore[import-not-found]
    from multiprocessing import shared_memory as _shm_mod
else:  # pragma: no cover - plane is numpy-only by construction
    np = None  # type: ignore[assignment]
    _shm_mod = None  # type: ignore[assignment]

__all__ = ["ShardPlane", "plane_supported"]

#: The leg parameters a position resolution needs, in plane layout
#: order.  Matches the :class:`~repro.geo.vecops.LegArrays` attribute
#: names so :meth:`publish_legs` can gather generically.
PLANE_FIELDS: Tuple[str, ...] = (
    "ox", "oy", "gx", "gy", "depart", "arrive", "span", "dgx", "dgy",
)


def plane_supported() -> bool:
    """The plane needs numpy (and the OS shm support bundled with it)."""
    return vecops.HAVE_NUMPY


class ShardPlane:
    """Leg parameters of every node in one shared-memory block."""

    def __init__(self, num_nodes: int, shards: int) -> None:
        if not plane_supported():  # pragma: no cover - guarded by callers
            raise RuntimeError("ShardPlane requires numpy")
        if num_nodes < 1 or shards < 1:
            raise ValueError(
                f"need >=1 nodes and shards, got {num_nodes}/{shards}"
            )
        self.num_nodes = num_nodes
        self.shards = shards
        floats = len(PLANE_FIELDS) * num_nodes
        size = floats * 8 + shards * 8
        # Auto-generated segment name: unique per block without baking
        # process identity (DET-014) into anything sim-visible.
        self._shm = _shm_mod.SharedMemory(create=True, size=size)
        self.name = self._shm.name
        buf = self._shm.buf
        self._fields = {}
        for k, field in enumerate(PLANE_FIELDS):
            view = np.ndarray(
                (num_nodes,), dtype=np.float64, buffer=buf,
                offset=k * num_nodes * 8,
            )
            self._fields[field] = view
        self._epochs = np.ndarray(
            (shards,), dtype=np.int64, buffer=buf, offset=floats * 8
        )
        # Unpublished rows must never satisfy the resolution guard
        # (depart <= t), so they start at +inf like fixed rows.
        self._fields["depart"].fill(np.inf)
        self._fields["arrive"].fill(-np.inf)
        self._epochs.fill(0)

    # ------------------------------------------------------------ publication
    def publish_legs(self, shard_index: int, ids, legs, rows) -> int:
        """Publish shard ``shard_index``'s owned rows; returns the new epoch.

        ``ids`` are the owned node ids (plane rows) and ``rows`` the
        matching :class:`LegArrays` row indices — both in the same
        order.  This is the **only** sanctioned write site for
        plane-backed arrays (DET-015); it runs at the window barrier,
        before the worker's reply, which is what makes the coordinator's
        subsequent reads race-free.
        """
        fields = self._fields
        for field in PLANE_FIELDS:
            fields[field][ids] = getattr(legs, field)[rows]
        epoch = int(self._epochs[shard_index]) + 1
        self._epochs[shard_index] = epoch
        return epoch

    def epoch(self, shard_index: int) -> int:
        return int(self._epochs[shard_index])

    # ------------------------------------------------------------- resolution
    def resolvable(self, node_id: int, t: float) -> bool:
        """True when the published leg was already current at ``t``.

        Legs only roll forward in time, so ``depart <= t`` means the
        leg published at the barrier is the same leg that produced the
        position at ``t`` — resolution is then bit-exact.  Fixed and
        never-published rows carry ``depart = +inf`` and always fail.
        """
        return bool(self._fields["depart"][node_id] <= t)

    def resolve(self, node_id: int, t: float) -> Tuple[float, float]:
        """Position of ``node_id`` at ``t`` from its published leg.

        Scalar replica of ``vecops.batch_position_at`` for one row, in
        the same precedence order (interpolate, then the ``t >= arrive``
        target sweep, then the ``t <= depart`` origin sweep — origin
        wins last): float64 multiply/divide/add on the identical
        operands, hence bitwise-equal results.
        """
        fields = self._fields
        depart = fields["depart"][node_id]
        if t <= depart:
            return float(fields["ox"][node_id]), float(fields["oy"][node_id])
        if t >= fields["arrive"][node_id]:
            return float(fields["gx"][node_id]), float(fields["gy"][node_id])
        frac = (t - depart) / fields["span"][node_id]
        return (
            float(fields["dgx"][node_id] * frac + fields["ox"][node_id]),
            float(fields["dgy"][node_id] * frac + fields["oy"][node_id]),
        )

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Drop the numpy views and unmap the block (keeps the segment)."""
        if self._shm is None:
            return
        self._fields = {}
        self._epochs = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass

    def destroy(self) -> None:
        """Unmap *and* unlink the segment — the creator's finally-path.

        Idempotent and exception-safe: callable after a worker crash,
        a :class:`ShardCoherenceError`, or a normal finish alike.
        """
        shm = self._shm
        if shm is None:
            return
        self.close()
        self._shm = None
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
