"""Discrete-event simulation engine.

The engine is the substrate every other subsystem runs on: the wireless
medium, the 802.11 MAC, routing agents, traffic sources, and mobility all
schedule events against a single :class:`Simulator` instance.

Design notes
------------
* Events are kept in a binary heap ordered by ``(time, priority, seq)``.
  The monotonically increasing sequence number makes ordering fully
  deterministic: two events scheduled for the same instant fire in the
  order they were scheduled (unless an explicit priority says otherwise).
* Cancellation is *lazy*: :meth:`Simulator.cancel` marks the event and the
  main loop skips cancelled entries when they surface.  This keeps both
  ``schedule`` and ``cancel`` O(log n) / O(1).
* Time is a float in **seconds** of simulated time.  MAC-level code deals
  in microseconds; helpers in :mod:`repro.net.mac.constants` convert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and act as handles
    for cancellation.  They should not be constructed directly.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None]
    name: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when it reaches the queue head."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name or self.callback!r} @ {self.time:.6f}s, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._stopped = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (skipped cancellations excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including lazily cancelled)."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.  Lower ``priority`` values
        fire earlier among events at the same time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f} < now {self._now:.9f}"
            )
        self._seq += 1
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback, name=name)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event; ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    # ---------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.
        After returning, :attr:`now` equals the time of the last executed
        event, or ``until`` when a horizon was given and reached.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.cancelled = True  # consumed; handle can no longer cancel
                event.callback()
                self._processed += 1
                executed += 1
            else:
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    # ------------------------------------------------------------- inspection
    def iter_pending(self) -> Iterator[Event]:
        """Yield pending events in an unspecified order (inspection only)."""
        return (e for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}s, pending={self.pending_events})"


def call_later(sim: Simulator, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
    """Convenience wrapper binding ``*args`` into a scheduled call."""
    return sim.schedule(delay, lambda: fn(*args), name=getattr(fn, "__name__", ""))
