"""Discrete-event simulation engine.

The engine is the substrate every other subsystem runs on: the wireless
medium, the 802.11 MAC, routing agents, traffic sources, and mobility all
schedule events against a single :class:`Simulator` instance.

Design notes
------------
* The heap holds ``(time, priority, seq, event)`` tuples.  Ordering is
  decided entirely by the leading floats/ints — the monotonically
  increasing sequence number is unique, so tuple comparison never reaches
  the :class:`Event` object and the heap skips Python-level ``__lt__``
  dispatch on every sift (a measurable win: the engine pushes/pops one
  tuple per MAC timer, per frame, per mobility leg).
* :class:`Event` is a ``__slots__`` class (no per-event ``__dict__``):
  events are the most-allocated object in a run.
* Cancellation is *lazy*: :meth:`Event.cancel` marks the event and the
  main loop skips cancelled entries when they surface.  This keeps both
  ``schedule`` and ``cancel`` O(log n) / O(1).  A cached live-event
  counter keeps :attr:`Simulator.pending_events` O(1) instead of an
  O(n) queue scan.
* Time is a float in **seconds** of simulated time.  MAC-level code deals
  in microseconds; helpers in :mod:`repro.net.mac.constants` convert.

Clock contract of :meth:`Simulator.run`
---------------------------------------
``now`` is clamped to ``until`` **only when the horizon is actually
reached** — the queue drained below ``until``, or the next event lies
beyond it.  When the run is cut short by ``max_events`` or
:meth:`Simulator.stop`, ``now`` stays at the last executed event so a
subsequent ``run()`` resumes mid-stream without skipping simulated time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and act as handles
    for cancellation.  They should not be constructed directly.
    """

    __slots__ = ("time", "priority", "seq", "callback", "name", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
        _sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        self._sim = _sim

    def cancel(self) -> None:
        """Mark this event so it is skipped when it reaches the queue head."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name or self.callback!r} @ {self.time:.6f}s, {state})"


#: Heap entry: ordering fields first, the event payload last (never compared).
_HeapEntry = Tuple[float, int, int, Event]


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_HeapEntry] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._stopped = False
        self._live = 0  # non-cancelled events in the queue (O(1) pending count)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (skipped cancellations excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still pending (cancelled ones excluded) — O(1)."""
        return self._live

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.  Lower ``priority`` values
        fire earlier among events at the same time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f} < now {self._now:.9f}"
            )
        self._seq += 1
        event = Event(time, priority, self._seq, callback, name, _sim=self)
        heapq.heappush(self._queue, (time, priority, self._seq, event))
        self._live += 1
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event; ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    # ---------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.

        Clock contract (see module docstring): after returning,

        * if the horizon was *reached* — the queue drained below ``until``
          or the next pending event lies beyond it — :attr:`now` equals
          ``until``;
        * if the run stopped early via ``max_events`` or :meth:`stop`,
          :attr:`now` stays at the time of the last executed event (events
          at that very instant may still be pending) so that calling
          :meth:`run` again resumes exactly where this run left off;
        * with no horizon, :attr:`now` is the time of the last executed
          event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        try:
            while queue:
                if self._stopped:
                    break
                time, _priority, _seq, event = queue[0]
                if event.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(queue)
                self._now = time
                event.cancelled = True  # consumed; handle can no longer cancel
                self._live -= 1
                event.callback()
                self._processed += 1
                executed += 1
            else:
                # Queue drained.  A drain *after* stop() still counts as an
                # interrupted run: leave the clock at the last executed event
                # so resumption scheduling stays relative to it.
                if until is not None and not self._stopped and self._now < until:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event finishes.

        The clock stays at the interrupting event's time; :meth:`run` may
        be called again to resume (see the clock contract above).
        """
        self._stopped = True

    # ------------------------------------------------------------- inspection
    def iter_pending(self) -> Iterator[Event]:
        """Yield pending events in an unspecified order (inspection only)."""
        return (entry[3] for entry in self._queue if not entry[3].cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}s, pending={self.pending_events})"


def call_later(sim: Simulator, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
    """Convenience wrapper binding ``*args`` into a scheduled call."""
    return sim.schedule(delay, lambda: fn(*args), name=getattr(fn, "__name__", ""))
