"""Discrete-event simulation engine.

The engine is the substrate every other subsystem runs on: the wireless
medium, the 802.11 MAC, routing agents, traffic sources, and mobility all
schedule events against a single :class:`Simulator` instance.

Design notes
------------
* The pending-event queue is a pluggable **scheduler backend** (see
  :mod:`repro.sim.timerwheel`), selected by ``scheduler_mode``:

  - ``"heap"``  — a ``heapq`` of ``(time, priority, seq, event)`` tuples.
    Ordering is decided entirely by the leading floats/ints — the
    monotonically increasing sequence number is unique, so tuple
    comparison never reaches the :class:`Event` object.
  - ``"wheel"`` — a two-level hierarchical timer wheel (near buckets at
    MAC-slot granularity + far-future overflow heap): O(1) scheduling
    into the near window and pops that cost bucket occupancy instead of
    log(total backlog).  Pop order — and therefore every trace byte —
    is identical to the heap by construction.
  - ``"cross"`` — both backends in lockstep, comparing
    ``(time, priority, seq)`` and event identity on every pop and
    raising :class:`SchedulerCoherenceError` on divergence: the
    per-pop equivalence proof.

* :class:`Event` is a ``__slots__`` class (no per-event ``__dict__``):
  events are the most-allocated object in a run.  Events never need to
  be comparable — every backend orders raw key tuples, so there is no
  ``__lt__`` to dispatch (the once-vestigial implementation is gone).
* Cancellation is *lazy*: :meth:`Event.cancel` marks the event and the
  backend skips cancelled entries when they surface.  This keeps both
  ``schedule`` and ``cancel`` cheap.  A cached live-event counter keeps
  :attr:`Simulator.pending_events` O(1) instead of an O(n) queue scan.
  On top of that, the engine **compacts** the backlog (rebuilds the
  backend without dead entries) whenever more than half of a large
  backlog is cancelled — MAC-heavy runs cancel most of their timers, and
  compaction bounds the memory those corpses would otherwise hold until
  their original expiry.
* Time is a float in **seconds** of simulated time.  MAC-level code deals
  in microseconds; helpers in :mod:`repro.net.mac.constants` convert.

Clock contract of :meth:`Simulator.run`
---------------------------------------
``now`` is clamped to ``until`` **only when the horizon is actually
reached** — the queue drained below ``until``, or the next event lies
beyond it.  When the run is cut short by ``max_events`` or
:meth:`Simulator.stop`, ``now`` stays at the last executed event so a
subsequent ``run()`` resumes mid-stream without skipping simulated time.
The contract holds identically under every scheduler backend (tested
parametrized over all modes).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from repro.sim.timerwheel import (
    SCHEDULER_MODES,
    SchedulerCoherenceError,
    make_scheduler,
    validate_scheduler_mode,
)

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "SchedulerCoherenceError",
    "SCHEDULER_MODES",
    "call_later",
    "PURE_ACTOR",
    "MEDIUM_ACTOR",
]

#: Compaction trigger: rebuild the backend once the backlog exceeds this
#: size *and* more than half of it is cancelled.  Small queues never pay
#: the O(n) rebuild; large churny ones amortize it against the >n/2 dead
#: entries removed.
COMPACT_MIN_BACKLOG = 512

#: Actor tag for events that provably never lead to a transmission
#: (mobility waypoint rolls, routing-table purge ticks).  The sharded
#: runtime's promise computation skips them entirely.
PURE_ACTOR = -2

#: Actor tag for medium ``phy.tx_end`` events, which run receiver-side
#: code at *many* nodes.  The sharded runtime tracks these through its
#: in-flight transmission list instead of the per-actor index.
MEDIUM_ACTOR = -3


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and act as handles
    for cancellation.  They should not be constructed directly.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "name", "cancelled", "_sim",
        # Sharded execution (repro.sim.keyed / repro.sim.shard): the causal
        # sort key and the acting node.  Plain Simulator never assigns or
        # reads them (unset slots cost nothing); KeyedSimulator sets both.
        "key", "actor",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
        _sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        self._sim = _sim

    def cancel(self) -> None:
        """Mark this event so it is skipped when it reaches the queue head."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._live -= 1
                sim._maybe_compact()

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name or self.callback!r} @ {self.time:.6f}s, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    ``scheduler_mode`` selects the queue backend (``"heap"`` — the
    default — ``"wheel"``, or ``"cross"``); outcomes and traces are
    byte-identical in every mode.  ``wheel_resolution`` /
    ``wheel_slots`` tune the near wheel (defaults: 802.11 slot time x
    1024 buckets ~= 20.5 ms horizon).

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        scheduler_mode: str = "heap",
        wheel_resolution: Optional[float] = None,
        wheel_slots: Optional[int] = None,
    ) -> None:
        self._now = float(start_time)
        validate_scheduler_mode(scheduler_mode)
        kwargs: Dict[str, Any] = {}
        if wheel_resolution is not None:
            kwargs["resolution"] = wheel_resolution
        if wheel_slots is not None:
            kwargs["slots"] = wheel_slots
        self._sched = make_scheduler(scheduler_mode, self._now, **kwargs)
        self._seq = 0
        self._running = False
        self._processed = 0
        self._stopped = False
        self._live = 0  # non-cancelled events in the queue (O(1) pending count)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def scheduler_mode(self) -> str:
        """The active scheduler backend (``heap`` | ``wheel`` | ``cross``)."""
        return self._sched.mode

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (skipped cancellations excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still pending (cancelled ones excluded) — O(1)."""
        return self._live

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
        actor: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.  Lower ``priority`` values
        fire earlier among events at the same time.

        ``actor`` attributes the event to a node for the sharded runtime's
        conservative-lookahead bookkeeping (see :mod:`repro.sim.keyed`);
        the plain simulator accepts and ignores it so call sites stay
        backend-agnostic.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, name=name, actor=actor
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
        actor: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f} < now {self._now:.9f}"
            )
        self._seq += 1
        event = Event(time, priority, self._seq, callback, name, _sim=self)
        self._sched.push((time, priority, self._seq, event))
        self._live += 1
        return event

    def _maybe_compact(self) -> None:
        """Cancelled-entry compaction: when more than half of a large
        backlog is dead, rebuild the backend without the corpses.

        Triggered from :meth:`Event.cancel` — the only operation that can
        grow the dead fraction.  Purely count-driven, hence deterministic;
        live pop order is unaffected.  Each compaction removes more than
        half the backlog, so the O(n) rebuild amortizes to O(1) per
        cancellation."""
        backlog = len(self._sched)
        if backlog > COMPACT_MIN_BACKLOG and (backlog - self._live) * 2 > backlog:
            self._sched.compact()

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event; ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    # ---------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue empties, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.

        Clock contract (see module docstring): after returning,

        * if the horizon was *reached* — the queue drained below ``until``
          or the next pending event lies beyond it — :attr:`now` equals
          ``until``;
        * if the run stopped early via ``max_events`` or :meth:`stop`,
          :attr:`now` stays at the time of the last executed event (events
          at that very instant may still be pending) so that calling
          :meth:`run` again resumes exactly where this run left off;
        * with no horizon, :attr:`now` is the time of the last executed
          event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        sched = self._sched
        drained = False
        try:
            while not self._stopped:
                head = sched.peek()
                if head is None:
                    drained = True
                    break
                time = head[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                sched.pop()
                event = head[3]
                self._now = time
                event.cancelled = True  # consumed; handle can no longer cancel
                self._live -= 1
                event.callback()
                self._processed += 1
                executed += 1
            if drained:
                # Queue drained.  A drain *after* stop() still counts as an
                # interrupted run: leave the clock at the last executed event
                # so resumption scheduling stays relative to it.
                if until is not None and not self._stopped and self._now < until:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event finishes.

        The clock stays at the interrupting event's time; :meth:`run` may
        be called again to resume (see the clock contract above).
        """
        self._stopped = True

    # ------------------------------------------------------------- inspection
    def iter_pending(self) -> Iterator[Event]:
        """Yield pending events in an unspecified order (inspection only)."""
        return self._sched.iter_events()

    def scheduler_stats(self) -> Dict[str, int]:
        """Backend telemetry: backlog (live + dead), compactions, and —
        for the wheel — ready/wheel/overflow occupancy and re-bases."""
        stats = dict(self._sched.stats())
        stats["pending"] = self._live
        stats["processed"] = self._processed
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}s, pending={self.pending_events}, "
            f"scheduler={self.scheduler_mode})"
        )


def call_later(
    sim: Simulator,
    delay: float,
    fn: Callable[..., Any],
    *args: Any,
    priority: int = 0,
    name: Optional[str] = None,
) -> Event:
    """Convenience wrapper binding ``*args`` into a scheduled call.

    ``priority`` and ``name`` pass through to :meth:`Simulator.schedule`
    (they were previously dropped, so helpers scheduled through this
    wrapper lost their intended same-instant ordering); ``name`` defaults
    to the callable's ``__name__``.
    """
    return sim.schedule(
        delay,
        lambda: fn(*args),
        priority=priority,
        name=name if name is not None else getattr(fn, "__name__", ""),
    )
