"""Deterministic random-number streams.

A simulation run must be reproducible from a single seed, yet individual
subsystems (mobility, traffic, MAC backoff, crypto nonces, ...) must not
perturb each other's streams when one of them draws a different number of
variates.  :class:`RngRegistry` derives an independent, stable
``random.Random`` stream per named subsystem from the master seed.

The determinism contract (mechanized by ``repro.analysis``'s DET rules):

1. Every stream of randomness is a ``random.Random`` obtained from a
   registry (``node.rng(name)`` / ``RngRegistry.stream``) or seeded from
   a value that is itself derived from the master seed.  This module is
   the **only** place allowed to construct ``random.Random`` (DET-002);
   the process-global ``random`` module is never drawn from (DET-001).
2. Simulated time comes from ``sim.now``, never the wall clock or OS
   entropy — no ``time.time``/``datetime.now``/``uuid4``/``os.urandom``
   in simulation code (DET-003).
3. Float sim-times are never compared with ``==``/``!=`` (DET-004), and
   event-ordering never depends on set iteration order (DET-005).

Run ``python -m repro.analysis src tests`` (CI does) to check the tree.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed for ``name`` from ``master_seed``.

    Uses SHA-256 over ``master_seed || name`` so that streams are
    independent of registration order and of each other.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams.

    Example
    -------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("mobility")
    >>> b = rngs.stream("traffic")
    >>> a is rngs.stream("mobility")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose master seed is derived from ``name``.

        Useful to give each simulated node its own registry so per-node
        subsystem streams stay independent across nodes.
        """
        return RngRegistry(derive_seed(self.seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
