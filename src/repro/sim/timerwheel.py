"""Scheduler backends: binary heap, hierarchical timer wheel, cross-check.

The :class:`~repro.sim.engine.Simulator` delegates its pending-event
queue to one of the backends in this module, selected by the
``scheduler_mode`` knob (``"heap"`` | ``"wheel"`` | ``"cross"``):

* :class:`HeapScheduler` — the original ``heapq`` of
  ``(time, priority, seq, event)`` tuples.  O(log n) per push/pop with a
  small C constant; the baseline every other backend must match
  *exactly*.
* :class:`TimerWheelScheduler` — a two-level hierarchical timer wheel in
  the NS-2 calendar-queue tradition: a near-horizon wheel of
  ``slots`` buckets, each ``resolution`` seconds wide (default: the
  802.11 slot time, so DIFS/SIFS/backoff/NAV/frame timers — the dense
  short-horizon mass of every MANET run — land in near buckets with an
  O(1) ``list.append``), plus a far-future overflow heap for hello
  beacons, mobility legs and traffic deadlines.  Expired buckets drain
  through a small *ready* heap, so per-event pop cost scales with bucket
  occupancy, not with the total backlog.
* :class:`CrossScheduler` — drives a wheel and a heap in lockstep from
  the same entry stream and compares ``(time, priority, seq)`` *and*
  event identity on every peek/pop, raising
  :class:`SchedulerCoherenceError` on the first divergence.  One passing
  run is a per-pop equivalence proof, the same pattern as the medium's
  grid-vs-brute ``"cross"`` and the crypto cache's recompute-and-compare
  mode.

Exact-order argument for the wheel
----------------------------------
Entries carry their full ordering key ``(time, priority, seq)``.  The
wheel only *batches* them: an entry is binned by ``tick(time) =
int(time / resolution)`` and every bucket is drained in ascending tick
order into the ready heap, which orders by the full key.  ``tick`` is a
monotone map (float division by a positive constant preserves ``<=``),
so for a ready entry *r* and a still-binned entry *b*:
``tick(r) <= drained_tick < tick(b)`` implies ``r.time < b.time``
(equal times would force equal ticks).  Hence the ready heap's minimum
is always the global minimum and pop order is identical to the heap
backend's — byte-identical traces follow, and ``cross`` mode re-proves
it on every pop.

Cancellation and compaction
---------------------------
Cancellation stays lazy (an :class:`~repro.sim.engine.Event` is flagged
and skipped when it surfaces), but both backends additionally support
**compaction**: ``compact()`` rebuilds the containers without the dead
entries.  The engine triggers it when more than half the backlog is
cancelled and the backlog is large — MAC-heavy runs cancel most of
their timers (every frozen backoff, every answered CTS/ACK wait), and
without compaction those corpses linger until their original expiry.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event

__all__ = [
    "SCHEDULER_MODES",
    "DEFAULT_RESOLUTION",
    "DEFAULT_SLOTS",
    "SchedulerCoherenceError",
    "HeapScheduler",
    "TimerWheelScheduler",
    "CrossScheduler",
    "make_scheduler",
]

SCHEDULER_MODES = ("heap", "wheel", "cross")

#: Near-wheel bucket width: the 802.11 slot time (20 us).  DIFS, SIFS,
#: backoff slots, frame durations and control timeouts all resolve to a
#: handful of ticks, which is exactly the dense regime the wheel wins in.
DEFAULT_RESOLUTION = 20e-6

#: Near-wheel bucket count.  1024 x 20 us ~= 20.5 ms of horizon — wider
#: than any single MAC exchange (DATA + timeouts << 10 ms), so the whole
#: DCF state machine lives in near buckets while beacons/mobility go to
#: the overflow heap.
DEFAULT_SLOTS = 1024

#: Queue entry: ordering key first, the event payload last (never compared
#: by the heaps — ``seq`` is unique, so tuple comparison always resolves
#: before reaching the Event).
Entry = Tuple[float, int, int, "Event"]


class SchedulerCoherenceError(AssertionError):
    """Cross mode found the wheel and heap backends disagreeing on a pop."""


def validate_scheduler_mode(mode: str) -> str:
    """Return ``mode`` if valid, else raise ``ValueError``."""
    if mode not in SCHEDULER_MODES:
        raise ValueError(f"scheduler_mode must be one of {SCHEDULER_MODES}, got {mode!r}")
    return mode


def make_scheduler(
    mode: str,
    start_time: float = 0.0,
    resolution: float = DEFAULT_RESOLUTION,
    slots: int = DEFAULT_SLOTS,
):
    """Build the backend for ``mode`` (see :data:`SCHEDULER_MODES`)."""
    validate_scheduler_mode(mode)
    if mode == "heap":
        return HeapScheduler()
    if mode == "wheel":
        return TimerWheelScheduler(start_time, resolution=resolution, slots=slots)
    return CrossScheduler(
        TimerWheelScheduler(start_time, resolution=resolution, slots=slots),
        HeapScheduler(),
    )


class HeapScheduler:
    """The baseline ``heapq`` backend (PR 2's tuple-keyed heap)."""

    mode = "heap"

    __slots__ = ("_queue", "compactions")

    def __init__(self) -> None:
        self._queue: List[Entry] = []
        self.compactions = 0

    def push(self, entry: Entry) -> None:
        heappush(self._queue, entry)

    def peek(self) -> Optional[Entry]:
        """The live head entry, discarding cancelled entries that surface."""
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heappop(queue)
            else:
                return head
        return None

    def pop(self) -> Optional[Entry]:
        """Remove and return the live head entry (``None`` when drained)."""
        head = self.peek()
        if head is not None:
            heappop(self._queue)
        return head

    def compact(self) -> None:
        """Rebuild the heap without cancelled entries (heapify is O(n))."""
        self._queue = [entry for entry in self._queue if not entry[3].cancelled]
        heapify(self._queue)
        self.compactions += 1

    def iter_events(self) -> Iterator["Event"]:
        """Live events in unspecified order (inspection only)."""
        return (entry[3] for entry in self._queue if not entry[3].cancelled)

    def __len__(self) -> int:
        """Backlog size *including* not-yet-collected cancelled entries."""
        return len(self._queue)

    def stats(self) -> Dict[str, int]:
        return {"backlog": len(self._queue), "compactions": self.compactions}


class TimerWheelScheduler:
    """Two-level hierarchical timer wheel (near buckets + overflow heap).

    Structure (all entries are full ``(time, priority, seq, event)``
    tuples):

    ``_ready``
        A small heap holding every entry whose tick is already drained
        (``tick <= _drained``).  Pops come from here; its minimum is the
        global minimum (see the module docstring's exactness argument).
    ``_wheel``
        ``slots`` bucket lists covering ticks ``[_base, _base + slots)``.
        Scheduling into the window is an O(1) append; a per-bucket
        occupancy heap (``_occupied``) finds the next non-empty bucket
        without scanning empty ones.
    ``_overflow``
        A heap of entries beyond the window.  When the wheel runs dry it
        *re-bases* directly onto the overflow minimum's tick and migrates
        every overflow entry inside the new window — so sparse phases
        (pure beacon traffic) jump instead of stepping bucket by bucket.
    """

    mode = "wheel"

    __slots__ = (
        "resolution",
        "slots",
        "_inv_resolution",
        "_wheel",
        "_wheel_count",
        "_occupied",
        "_ready",
        "_overflow",
        "_base",
        "_horizon",
        "_drained",
        "compactions",
        "rebases",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        resolution: float = DEFAULT_RESOLUTION,
        slots: int = DEFAULT_SLOTS,
    ) -> None:
        if resolution <= 0.0:
            raise ValueError("resolution must be positive")
        if slots < 2:
            raise ValueError("need at least two wheel slots")
        self.resolution = resolution
        self.slots = slots
        self._inv_resolution = 1.0 / resolution
        self._wheel: List[List[Entry]] = [[] for _ in range(slots)]
        self._wheel_count = 0  # entries currently binned in wheel buckets
        self._occupied: List[int] = []  # heap of (possibly stale) occupied ticks
        self._ready: List[Entry] = []  # entries with tick <= _drained
        self._overflow: List[Entry] = []  # entries with tick >= _base + slots
        base = int(start_time * self._inv_resolution)
        self._base = base  # wheel window start tick
        self._horizon = base + slots  # first tick beyond the window
        self._drained = base - 1  # highest tick already drained into _ready
        self.compactions = 0
        self.rebases = 0

    # -------------------------------------------------------------- mutation
    def push(self, entry: Entry) -> None:
        # Branches ordered by hot-path frequency (MAC profile: short
        # near-window timers dominate), with the window end precomputed
        # in ``_horizon`` so the common case costs one multiply, two
        # compares, and a list append.
        tick = int(entry[0] * self._inv_resolution)
        if tick > self._drained:
            if tick < self._horizon:
                bucket = self._wheel[tick % self.slots]
                if not bucket:
                    heappush(self._occupied, tick)
                bucket.append(entry)
                self._wheel_count += 1
            else:
                heappush(self._overflow, entry)
        else:
            # The entry's bucket has already been drained (same-instant or
            # sub-resolution scheduling): it competes in the ready heap.
            heappush(self._ready, entry)

    def peek(self) -> Optional[Entry]:
        """The live minimum entry, discarding cancelled ones that surface."""
        ready = self._ready
        while True:
            while ready:
                head = ready[0]
                if head[3].cancelled:
                    heappop(ready)
                else:
                    return head
            if not self._advance():
                return None

    def pop(self) -> Optional[Entry]:
        # Open-coded rather than peek()-then-remove: corpses surfacing at
        # the ready minimum are discarded by the same heappop that would
        # have removed them anyway, halving per-entry Python work on the
        # drain path.
        ready = self._ready
        while True:
            while ready:
                head = heappop(ready)
                if not head[3].cancelled:
                    return head
            if not self._advance():
                return None

    # ------------------------------------------------------------- advancing
    def _advance(self) -> bool:
        """Drain the next non-empty bucket into the ready heap.

        Returns ``False`` when the whole queue is empty.  May deliver a
        bucket of entries that all turn out cancelled — the peek loop
        simply advances again.
        """
        if self._wheel_count == 0:
            # Wheel dry: collect dead overflow heads, then re-base the
            # window directly onto the overflow minimum (sparse phases
            # jump, they do not step bucket by bucket).
            overflow = self._overflow
            while overflow and overflow[0][3].cancelled:
                heappop(overflow)
            if not overflow:
                return False
            base = int(overflow[0][0] * self._inv_resolution)
            horizon = base + self.slots
            self._base = base
            self._horizon = horizon
            self._drained = base - 1
            self._occupied = []
            self.rebases += 1
            wheel = self._wheel
            occupied = self._occupied
            inv_resolution = self._inv_resolution
            # Migrate only the overflow *head* entries inside the new
            # window.  The overflow heap orders by the full key and
            # ``tick`` is monotone in time, so once the head's tick
            # reaches the horizon every deeper entry is past it too —
            # migration costs O(migrated x log overflow), never a full
            # scan of the far-future population.
            while overflow:
                head = overflow[0]
                if head[3].cancelled:
                    heappop(overflow)
                    continue
                tick = int(head[0] * inv_resolution)
                if tick >= horizon:
                    break
                heappop(overflow)
                bucket = wheel[tick % self.slots]
                if not bucket:
                    heappush(occupied, tick)
                bucket.append(head)
                self._wheel_count += 1
            # _wheel_count > 0 now: the overflow minimum itself migrated.
        occupied = self._occupied
        wheel = self._wheel
        ready = self._ready
        while occupied:
            tick = heappop(occupied)
            bucket = wheel[tick % self.slots]
            if not bucket:
                continue  # stale occupancy marker (bucket emptied by compact)
            for entry in bucket:
                if not entry[3].cancelled:
                    heappush(ready, entry)
            self._wheel_count -= len(bucket)
            del bucket[:]  # reuse the list object across rotations
            self._drained = tick
            return True
        # Occupancy heap exhausted but the count says entries remain —
        # impossible unless internal invariants broke.
        raise AssertionError("timer wheel occupancy desynchronized")  # pragma: no cover

    # ------------------------------------------------------------ compaction
    def compact(self) -> None:
        """Rebuild every container without cancelled entries."""
        live_ready = [entry for entry in self._ready if not entry[3].cancelled]
        heapify(live_ready)
        self._ready = live_ready
        wheel_count = 0
        for bucket in self._wheel:
            if bucket:
                bucket[:] = [entry for entry in bucket if not entry[3].cancelled]
                wheel_count += len(bucket)
        # Stale occupancy markers (now-empty buckets) are skipped lazily
        # by _advance; re-heapifying here would not change pop order.
        self._wheel_count = wheel_count
        live_overflow = [entry for entry in self._overflow if not entry[3].cancelled]
        heapify(live_overflow)
        self._overflow = live_overflow
        self.compactions += 1

    # ------------------------------------------------------------ inspection
    def iter_events(self) -> Iterator["Event"]:
        """Live events in unspecified order (inspection only)."""
        for entry in self._ready:
            if not entry[3].cancelled:
                yield entry[3]
        for bucket in self._wheel:
            for entry in bucket:
                if not entry[3].cancelled:
                    yield entry[3]
        for entry in self._overflow:
            if not entry[3].cancelled:
                yield entry[3]

    def __len__(self) -> int:
        """Backlog size *including* not-yet-collected cancelled entries.

        Derived O(1) from the container sizes rather than maintained as
        a counter — keeping a counter honest costs an attribute
        load+store on *every* push, pop, and lazy discard, measurably
        the single largest interpreter overhead on the churn hot path.
        """
        return len(self._ready) + self._wheel_count + len(self._overflow)

    def stats(self) -> Dict[str, int]:
        return {
            "backlog": len(self),
            "ready": len(self._ready),
            "wheel": self._wheel_count,
            "overflow": len(self._overflow),
            "compactions": self.compactions,
            "rebases": self.rebases,
        }


class CrossScheduler:
    """Drive a wheel and a heap in lockstep; any divergence raises.

    Every push goes to both backends; every peek/pop compares the full
    ordering key ``(time, priority, seq)`` *and* the event identity, so
    one passing run proves pop-order equivalence for that exact event
    stream.  Compaction compacts both (it never changes live order, and
    the next pops re-verify that).
    """

    mode = "cross"

    __slots__ = ("wheel", "heap")

    def __init__(self, wheel: TimerWheelScheduler, heap: HeapScheduler) -> None:
        self.wheel = wheel
        self.heap = heap

    def push(self, entry: Entry) -> None:
        self.wheel.push(entry)
        self.heap.push(entry)

    def _check(self, ours: Optional[Entry], reference: Optional[Entry], op: str) -> None:
        if ours is None and reference is None:
            return
        if (
            ours is None
            or reference is None
            or ours[:3] != reference[:3]
            or ours[3] is not reference[3]
        ):
            raise SchedulerCoherenceError(
                f"scheduler divergence on {op}: wheel produced "
                f"{ours and ours[:3]}, heap produced {reference and reference[:3]}"
            )

    def peek(self) -> Optional[Entry]:
        ours = self.wheel.peek()
        reference = self.heap.peek()
        self._check(ours, reference, "peek")
        return ours

    def pop(self) -> Optional[Entry]:
        ours = self.wheel.pop()
        reference = self.heap.pop()
        self._check(ours, reference, "pop")
        return ours

    def compact(self) -> None:
        self.wheel.compact()
        self.heap.compact()

    def iter_events(self) -> Iterator["Event"]:
        return self.heap.iter_events()

    def __len__(self) -> int:
        return len(self.heap)

    def stats(self) -> Dict[str, int]:
        stats = dict(self.wheel.stats())
        stats["heap_backlog"] = len(self.heap)
        return stats
