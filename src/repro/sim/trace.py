"""Structured event tracing.

A :class:`Tracer` collects typed trace records emitted by any simulation
component.  Traces power the metric collectors, the adversary modules (a
sniffer is just a consumer of PHY traces within radio range), and debugging.

Hot-path design
---------------
``emit`` runs once per simulated event across the whole stack (every
frame, every MAC timer decision, every routing hop), so its constant
factor is engine-level:

* **Interned categories.**  Every category string is ``sys.intern``-ed on
  first sight, so the per-category dispatch dict below resolves by
  pointer comparison and retained records share one string object per
  category.
* **Per-category dispatch cache.**  Subscribers are bucketed by the
  first dotted segment of their prefix (``"mac."`` subscriptions are
  never scanned for a ``phy.tx`` record); the matching callback tuple
  per category — or a muted marker — is computed once and memoized, so
  a hot ``emit`` is one dict lookup, not a prefix scan.  The cache is
  instance-held (it dies with the tracer) and is invalidated by
  ``subscribe``/``mute``/``unmute``.
* **Zero-allocation drop path.**  When retention is off (``keep=False``)
  and no subscriber matches, ``emit`` returns before the
  :class:`TraceRecord` is ever constructed — benchmark-style runs used
  to allocate (and immediately drop) a frozen dataclass per event.
* **`enabled_for` guard.**  Emitters with expensive payloads ask
  ``tracer.enabled_for(category)`` first and skip building the payload
  dict entirely when nobody is listening (see the MAC and medium hot
  paths).

``mute`` uses the same *prefix* semantics as ``subscribe``/``filter``:
``mute("mac.")`` drops ``mac.drop`` too (it used to match only the exact
category, a long-standing asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from sys import intern as _intern
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer"]

#: Dispatch-cache marker for "this category is muted".  Distinct from the
#: empty tuple (= live but subscriber-less, still retained when keep=True).
_MUTED = False

_Subscriber = Tuple[str, Callable[["TraceRecord"], None]]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``category`` is a short dotted tag (``"phy.tx"``, ``"mac.drop"``,
    ``"route.forward"``, ``"app.recv"``); ``node`` is the emitting node id
    (or ``None`` for global records); ``data`` carries event-specific fields.
    """

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` objects and dispatches to subscribers.

    Subscribers (e.g. metric collectors, adversary sniffers) register a
    callback per category prefix and receive records as they are emitted,
    so online analyses never need the full in-memory log.  Retention of the
    full log is optional (``keep=False`` for long benchmark runs).
    """

    def __init__(self, keep: bool = True) -> None:
        self.keep = keep
        self.records: List[TraceRecord] = []
        #: All subscriptions in registration order (the dispatch order).
        self._subscribers: List[_Subscriber] = []
        #: Dotted prefixes bucketed by their first segment; prefixes that
        #: cannot pin a first segment (no ``"."``) go to the global list.
        self._buckets: Dict[str, List[Tuple[int, str, Callable[[TraceRecord], None]]]] = {}
        self._unbucketed: List[Tuple[int, str, Callable[[TraceRecord], None]]] = []
        self._muted: List[str] = []
        #: interned category -> tuple of matching callbacks, or ``_MUTED``.
        self._dispatch: Dict[str, Any] = {}

    # ------------------------------------------------------------- resolution
    def _resolve(self, category: str) -> Any:
        """Compute (and memoize) the dispatch entry for ``category``."""
        category = _intern(category)
        entry: Any
        if any(category.startswith(m) for m in self._muted):
            entry = _MUTED
        else:
            head, _, _ = category.partition(".")
            matches = [
                (order, callback)
                for order, prefix, callback in self._unbucketed
                if category.startswith(prefix)
            ]
            matches += [
                (order, callback)
                for order, prefix, callback in self._buckets.get(head, ())
                if category.startswith(prefix)
            ]
            matches.sort()  # registration order across both pools
            entry = tuple(callback for _, callback in matches)
        self._dispatch[category] = entry
        return entry

    def enabled_for(self, category: str) -> bool:
        """Would emitting ``category`` have any effect right now?

        ``False`` when the category is muted, or when it is neither
        retained (``keep=False``) nor matched by any subscriber — hot
        emitters use this to skip building payload dicts entirely.
        """
        callbacks = self._dispatch.get(category)
        if callbacks is None:
            callbacks = self._resolve(category)
        if callbacks is _MUTED:
            return False
        return self.keep or bool(callbacks)

    # ----------------------------------------------------------------- emit
    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Record an event. ``data`` keys are event-specific payload fields."""
        callbacks = self._dispatch.get(category)
        if callbacks is None:
            callbacks = self._resolve(category)
            category = _intern(category)
        if callbacks is _MUTED:
            return
        if not callbacks and not self.keep:
            return  # zero-allocation drop path: no TraceRecord at all
        record = TraceRecord(time=time, category=category, node=node, data=data)
        if self.keep:
            self.records.append(record)
        for callback in callbacks:
            callback(record)

    # ------------------------------------------------------------ subscribe
    def subscribe(self, prefix: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record whose category starts with ``prefix``."""
        order = len(self._subscribers)
        self._subscribers.append((prefix, callback))
        head, dot, _ = prefix.partition(".")
        if dot:
            # A dotted prefix pins the record's first segment exactly.
            self._buckets.setdefault(head, []).append((order, prefix, callback))
        else:
            # ``""`` or a partial head ("ma" matches both "mac.*" and
            # "mavericks.*"): consult for every category.
            self._unbucketed.append((order, prefix, callback))
        self._dispatch.clear()

    def mute(self, prefix: str) -> None:
        """Drop records whose category starts with ``prefix`` (hot-path
        suppression; same prefix semantics as :meth:`subscribe`)."""
        if prefix not in self._muted:
            self._muted.append(prefix)
        self._dispatch.clear()

    def unmute(self, prefix: str) -> None:
        if prefix in self._muted:
            self._muted.remove(prefix)
        self._dispatch.clear()

    # -------------------------------------------------------------- queries
    def filter(self, prefix: str) -> Iterator[TraceRecord]:
        """Yield retained records whose category starts with ``prefix``."""
        return (r for r in self.records if r.category.startswith(prefix))

    def count(self, prefix: str) -> int:
        """Number of retained records under ``prefix``."""
        return sum(1 for _ in self.filter(prefix))

    def clear(self) -> None:
        self.records.clear()

    def categories(self) -> Dict[str, int]:
        """Histogram of retained record categories."""
        hist: Dict[str, int] = {}
        for record in self.records:
            hist[record.category] = hist.get(record.category, 0) + 1
        return hist

    def dispatch_stats(self) -> Dict[str, int]:
        """Fast-path telemetry: cached categories, subscriber count,
        bucketed vs global subscriptions, mute prefixes, retained records."""
        return {
            "cached_categories": len(self._dispatch),
            "subscribers": len(self._subscribers),
            "bucketed": sum(len(v) for v in self._buckets.values()),
            "unbucketed": len(self._unbucketed),
            "muted_prefixes": len(self._muted),
            "retained_records": len(self.records),
        }

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
