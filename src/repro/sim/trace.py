"""Structured event tracing.

A :class:`Tracer` collects typed trace records emitted by any simulation
component.  Traces power the metric collectors, the adversary modules (a
sniffer is just a consumer of PHY traces within radio range), and debugging.

Records are plain dataclasses, cheap to emit and filter.  Tracing of a
category can be disabled entirely so hot paths pay one dict lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``category`` is a short dotted tag (``"phy.tx"``, ``"mac.drop"``,
    ``"route.forward"``, ``"app.recv"``); ``node`` is the emitting node id
    (or ``None`` for global records); ``data`` carries event-specific fields.
    """

    time: float
    category: str
    node: Optional[int]
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` objects and dispatches to subscribers.

    Subscribers (e.g. metric collectors, adversary sniffers) register a
    callback per category prefix and receive records as they are emitted,
    so online analyses never need the full in-memory log.  Retention of the
    full log is optional (``keep=False`` for long benchmark runs).
    """

    def __init__(self, keep: bool = True) -> None:
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._subscribers: List[tuple[str, Callable[[TraceRecord], None]]] = []
        self._muted: set[str] = set()

    # ----------------------------------------------------------------- emit
    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Record an event. ``data`` keys are event-specific payload fields."""
        if category in self._muted:
            return
        record = TraceRecord(time=time, category=category, node=node, data=data)
        if self.keep:
            self.records.append(record)
        for prefix, callback in self._subscribers:
            if category.startswith(prefix):
                callback(record)

    # ------------------------------------------------------------ subscribe
    def subscribe(self, prefix: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record whose category starts with ``prefix``."""
        self._subscribers.append((prefix, callback))

    def mute(self, category: str) -> None:
        """Drop records of an exact category (hot-path suppression)."""
        self._muted.add(category)

    def unmute(self, category: str) -> None:
        self._muted.discard(category)

    # -------------------------------------------------------------- queries
    def filter(self, prefix: str) -> Iterator[TraceRecord]:
        """Yield retained records whose category starts with ``prefix``."""
        return (r for r in self.records if r.category.startswith(prefix))

    def count(self, prefix: str) -> int:
        """Number of retained records under ``prefix``."""
        return sum(1 for _ in self.filter(prefix))

    def clear(self) -> None:
        self.records.clear()

    def categories(self) -> Dict[str, int]:
        """Histogram of retained record categories."""
        hist: Dict[str, int] = {}
        for record in self.records:
            hist[record.category] = hist.get(record.category, 0) + 1
        return hist

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
