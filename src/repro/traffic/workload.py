"""Workload construction: the paper's flow pattern, parameterized.

``make_paper_flows`` reproduces the evaluation's "30 CBR traffic flows
originated by 20 sending nodes": 20 distinct senders are drawn, then 30
flows are dealt over them (so some senders run two flows), each toward a
uniformly chosen distinct destination.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.traffic.cbr import CbrFlow

__all__ = ["make_paper_flows", "make_flows"]


def make_flows(
    node_ids: Sequence[int],
    identities: Sequence[str],
    num_flows: int,
    num_senders: int,
    rng: random.Random,
    rate_pps: float = 4.0,
    payload_bytes: int = 64,
    start_window: tuple[float, float] = (5.0, 30.0),
    stop_time: float | None = None,
) -> List[CbrFlow]:
    """Draw a CBR workload.

    ``node_ids[i]`` must be the node whose identity is ``identities[i]``.
    Flow start times are uniform in ``start_window`` so sources ramp up
    gradually (the NS-2 CMU convention).
    """
    if num_senders > len(node_ids):
        raise ValueError("more senders than nodes")
    if num_senders < 1 or num_flows < 1:
        raise ValueError("need at least one sender and one flow")
    if len(node_ids) < 2:
        raise ValueError("need at least two nodes for traffic")
    senders = rng.sample(list(node_ids), num_senders)
    flows: List[CbrFlow] = []
    for i in range(num_flows):
        src = senders[i % num_senders]
        dest_index = rng.randrange(len(node_ids))
        while node_ids[dest_index] == src:
            dest_index = rng.randrange(len(node_ids))
        flows.append(
            CbrFlow(
                src_node_id=src,
                dest_identity=identities[dest_index],
                rate_pps=rate_pps,
                payload_bytes=payload_bytes,
                start_time=rng.uniform(*start_window),
                stop_time=stop_time,
            )
        )
    return flows


def make_paper_flows(
    node_ids: Sequence[int],
    identities: Sequence[str],
    rng: random.Random,
    start_window: tuple[float, float] = (5.0, 30.0),
    stop_time: float | None = None,
) -> List[CbrFlow]:
    """The evaluation workload: 30 flows from 20 senders, 64 B @ 4 pps."""
    return make_flows(
        node_ids,
        identities,
        num_flows=30,
        num_senders=20,
        rng=rng,
        rate_pps=4.0,
        payload_bytes=64,
        start_window=start_window,
        stop_time=stop_time,
    )
