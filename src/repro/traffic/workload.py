"""Workload construction: the paper's flow pattern, parameterized.

``make_paper_flows`` reproduces the evaluation's "30 CBR traffic flows
originated by 20 sending nodes": 20 distinct senders are drawn, then 30
flows are dealt over them (so some senders run two flows), each toward a
uniformly chosen distinct destination.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.traffic.cbr import CbrFlow

__all__ = ["make_paper_flows", "make_flows"]


def make_flows(
    node_ids: Sequence[int],
    identities: Sequence[str],
    num_flows: int,
    num_senders: int,
    rng: random.Random,
    rate_pps: float = 4.0,
    payload_bytes: int = 64,
    start_window: tuple[float, float] = (5.0, 30.0),
    stop_time: float | None = None,
    positions: Optional[Sequence[Tuple[float, float]]] = None,
    locality: Optional[float] = None,
) -> List[CbrFlow]:
    """Draw a CBR workload.

    ``node_ids[i]`` must be the node whose identity is ``identities[i]``.
    Flow start times are uniform in ``start_window`` so sources ramp up
    gradually (the NS-2 CMU convention).

    With ``locality`` set, each destination is drawn uniformly among the
    nodes whose ``positions`` entry lies within that distance of the
    sender's, instead of uniformly over the whole field (a sender with
    no neighbour in range falls back to the next node id, keeping the
    flow count exact).  ``locality=None`` runs the original draw with an
    untouched rng call sequence — existing seeds stay byte-identical.
    """
    if num_senders > len(node_ids):
        raise ValueError("more senders than nodes")
    if num_senders < 1 or num_flows < 1:
        raise ValueError("need at least one sender and one flow")
    if len(node_ids) < 2:
        raise ValueError("need at least two nodes for traffic")
    if locality is not None and (positions is None or len(positions) != len(node_ids)):
        raise ValueError("locality needs one position per node id")
    senders = rng.sample(list(node_ids), num_senders)
    index_of = {nid: i for i, nid in enumerate(node_ids)}
    near: Dict[int, List[int]] = {}  # src -> candidate dest indices
    flows: List[CbrFlow] = []
    for i in range(num_flows):
        src = senders[i % num_senders]
        if locality is not None:
            cands = near.get(src)
            if cands is None:
                sx, sy = positions[index_of[src]]
                reach = locality * locality
                cands = near[src] = [
                    j
                    for j, (x, y) in enumerate(positions)
                    if node_ids[j] != src and (x - sx) ** 2 + (y - sy) ** 2 <= reach
                ]
            if cands:
                dest_index = cands[rng.randrange(len(cands))]
            else:
                dest_index = (index_of[src] + 1) % len(node_ids)
        else:
            dest_index = rng.randrange(len(node_ids))
            while node_ids[dest_index] == src:
                dest_index = rng.randrange(len(node_ids))
        flows.append(
            CbrFlow(
                src_node_id=src,
                dest_identity=identities[dest_index],
                rate_pps=rate_pps,
                payload_bytes=payload_bytes,
                start_time=rng.uniform(*start_window),
                stop_time=stop_time,
            )
        )
    return flows


def make_paper_flows(
    node_ids: Sequence[int],
    identities: Sequence[str],
    rng: random.Random,
    start_window: tuple[float, float] = (5.0, 30.0),
    stop_time: float | None = None,
) -> List[CbrFlow]:
    """The evaluation workload: 30 flows from 20 senders, 64 B @ 4 pps."""
    return make_flows(
        node_ids,
        identities,
        num_flows=30,
        num_senders=20,
        rng=rng,
        rate_pps=4.0,
        payload_bytes=64,
        start_window=start_window,
        stop_time=stop_time,
    )
