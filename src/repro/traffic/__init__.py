"""Traffic generation: CBR flows and the paper's workload."""

from repro.traffic.cbr import CbrFlow, CbrSource
from repro.traffic.workload import make_flows, make_paper_flows

__all__ = ["CbrFlow", "CbrSource", "make_flows", "make_paper_flows"]
