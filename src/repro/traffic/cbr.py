"""Constant-bit-rate traffic sources.

The paper's workload: "30 CBR traffic flows originated by 20 sending
nodes".  Each flow emits fixed-size packets at a fixed rate from a start
time until a stop time, the standard CBR source of the NS-2 CMU
scenarios (64-byte payloads at 2 Kbit/s, i.e. 4 packets/s).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.net.node import Node
from repro.sim.engine import Simulator

__all__ = ["CbrFlow", "CbrSource"]


@dataclass(frozen=True)
class CbrFlow:
    """A flow description (pure data; sources execute them)."""

    src_node_id: int
    dest_identity: str
    rate_pps: float = 4.0
    payload_bytes: int = 64
    start_time: float = 0.0
    stop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.stop_time is not None and self.stop_time < self.start_time:
            raise ValueError("stop_time before start_time")


class CbrSource:
    """Drives one flow on its source node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        flow: CbrFlow,
        rng: Optional[random.Random] = None,
    ) -> None:
        if node.node_id != flow.src_node_id:
            raise ValueError("flow source does not match node")
        self.sim = sim
        self.node = node
        self.flow = flow
        self.rng = rng or node.rng(f"cbr:{flow.dest_identity}")
        self.packets_sent = 0
        self._interval = 1.0 / flow.rate_pps

    def start(self) -> None:
        """Arm the first transmission (with sub-interval jitter so flows
        sharing a start time do not synchronize their channel access)."""
        delay = max(0.0, self.flow.start_time - self.sim.now)
        delay += self.rng.uniform(0.0, self._interval)
        # actor tag: start() runs at build time, outside any event.
        self.sim.schedule(delay, self._tick, name="cbr.tick", actor=self.node.node_id)

    def _tick(self) -> None:
        if self.flow.stop_time is not None and self.sim.now > self.flow.stop_time:
            return
        router = self.node.router
        if router is not None:
            router.send_data(self.flow.dest_identity, self.flow.payload_bytes)
            self.packets_sent += 1
        self.sim.schedule(self._interval, self._tick, name="cbr.tick")
