"""Figure 1 harness: delivery fraction and latency vs node density.

The paper's evaluation (Section 5.2) plots, against the number of nodes
in the fixed 1500 x 300 m field:

* **Fig 1(a)** packet delivery fraction for GPSR-Greedy, AGFW (with
  network-layer ACK) and AGFW-noACK;
* **Fig 1(b)** mean end-to-end data latency for GPSR-Greedy and AGFW.

Expected shapes (what we validate, not absolute NS-2 numbers):
AGFW-ACK tracks GPSR-Greedy closely in (a) while AGFW-noACK is far below
and degrades with density; in (b) the schemes are comparable up to
moderate density (the paper calls out 112 nodes) with GPSR-Greedy's
latency rising steeply beyond it as RTS/CTS contention bites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.parallel import parallel_map
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults.plan import FaultPlan
from repro.sim.rng import derive_seed

__all__ = [
    "Fig1Point",
    "DEFAULT_NODE_COUNTS",
    "FIG1_SCHEMES",
    "run_fig1",
    "format_fig1a",
    "format_fig1b",
]

DEFAULT_NODE_COUNTS: Tuple[int, ...] = (50, 75, 100, 112, 130, 150)
FIG1_SCHEMES: Tuple[str, ...] = ("gpsr", "agfw", "agfw-noack")


@dataclass(frozen=True)
class Fig1Point:
    """One (scheme, density) measurement."""

    scheme: str
    num_nodes: int
    delivery_fraction: float
    mean_latency_ms: float
    sent: int
    delivered: int
    collisions: int


def _run_fig1_point(cfg: ScenarioConfig) -> Fig1Point:
    """Worker for one (scheme, density) cell — top-level so it pickles.

    Builds its own Simulator/RngRegistry from ``cfg`` (inside
    :func:`run_scenario`); shares nothing with sibling points.
    """
    result = run_scenario(cfg)
    return Fig1Point(
        scheme=cfg.protocol,
        num_nodes=cfg.num_nodes,
        delivery_fraction=result.delivery_fraction,
        mean_latency_ms=result.mean_latency * 1000.0,
        sent=result.sent,
        delivered=result.delivered,
        collisions=result.collisions,
    )


def run_fig1(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    schemes: Sequence[str] = FIG1_SCHEMES,
    sim_time: float = 900.0,
    seed: int = 1,
    base: ScenarioConfig | None = None,
    jobs: int = 1,
    churn: Optional[Tuple[float, Optional[float]]] = None,
) -> List[Fig1Point]:
    """Run the full density sweep and return all points.

    ``sim_time`` scales the run length: benchmarks use short horizons
    (the traffic window shrinks proportionally), the full reproduction
    uses the paper's 900 s.  Each point gets a child seed derived from
    ``seed`` and its (scheme, count) label, so points are statistically
    independent and, crucially, *identical whether the sweep runs
    serially or fanned over ``jobs`` worker processes* — the point's
    whole random state is a pure function of its config.

    ``churn`` is ``(rate, mean_downtime)`` to run the whole sweep under
    seeded node churn (``mean_downtime=None`` defaults to a tenth of the
    run); each point gets its own :class:`~repro.faults.FaultPlan` from
    a child seed, so the default ``churn=None`` path is byte-identical
    to the pre-fault harness.
    """
    template = base if base is not None else ScenarioConfig()
    start_hi = min(30.0, max(3.0, sim_time / 10.0))
    downtime = None
    if churn is not None:
        downtime = churn[1] if churn[1] is not None else max(sim_time / 10.0, 0.5)
    configs = []
    for scheme in schemes:
        for count in node_counts:
            cfg = replace(
                template,
                protocol=scheme,
                num_nodes=count,
                sim_time=sim_time,
                seed=derive_seed(seed, f"fig1:{scheme}:{count}"),
                traffic_start=(1.0, start_hi),
            )
            if churn is not None:
                plan = FaultPlan.churn(
                    range(count),
                    sim_time=sim_time,
                    seed=derive_seed(seed, f"fig1:churn:{scheme}:{count}"),
                    rate=churn[0],
                    mean_downtime=downtime,
                )
                cfg = replace(cfg, fault_plan=plan)
            configs.append(cfg)
    return parallel_map(
        _run_fig1_point,
        configs,
        jobs=jobs,
        shards=template.shards if template.shard_mode == "on" else 1,
        describe=lambda c: f"fig1:{c.protocol}:n={c.num_nodes}:seed={c.seed}",
    )


def _series(points: Iterable[Fig1Point]) -> Dict[str, Dict[int, Fig1Point]]:
    table: Dict[str, Dict[int, Fig1Point]] = {}
    for point in points:
        table.setdefault(point.scheme, {})[point.num_nodes] = point
    return table


def format_fig1a(points: Sequence[Fig1Point]) -> str:
    """The Fig 1(a) series as an aligned text table (one row per density)."""
    table = _series(points)
    schemes = [s for s in FIG1_SCHEMES if s in table]
    counts = sorted({p.num_nodes for p in points})
    header = "nodes  " + "  ".join(f"{s:>11}" for s in schemes)
    lines = [
        "Figure 1(a): packet delivery fraction vs node count",
        header,
    ]
    for count in counts:
        cells = []
        for scheme in schemes:
            point = table[scheme].get(count)
            cells.append(f"{point.delivery_fraction:11.3f}" if point else " " * 11)
        lines.append(f"{count:>5}  " + "  ".join(cells))
    return "\n".join(lines)


def format_fig1b(points: Sequence[Fig1Point]) -> str:
    """The Fig 1(b) series (latency, ms); AGFW-noACK omitted as in the paper."""
    table = _series(points)
    schemes = [s for s in ("gpsr", "agfw") if s in table]
    counts = sorted({p.num_nodes for p in points})
    header = "nodes  " + "  ".join(f"{s:>11}" for s in schemes)
    lines = [
        "Figure 1(b): end-to-end data latency (ms) vs node count",
        header,
    ]
    for count in counts:
        cells = []
        for scheme in schemes:
            point = table[scheme].get(count)
            cells.append(f"{point.mean_latency_ms:11.2f}" if point else " " * 11)
        lines.append(f"{count:>5}  " + "  ".join(cells))
    return "\n".join(lines)
