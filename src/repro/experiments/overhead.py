"""Overhead experiments: the byte/CPU cost of anonymity.

Two analyses from the paper's Sections 4 and 5:

* **AANT overhead** — "the larger the set of ambiguous signers, the
  stronger the anonymity, but with more certificates to transmit."
  :func:`aant_overhead_table` computes hello wire sizes versus ring size
  k, for both certificate-attachment and serial-number modes, from the
  calibrated cost model (and can cross-check against real ring-signature
  byte sizes).
* **ALS vs DLM** — "the performance is expected to be similar to the
  original location service ... one might also expect it to elegantly
  degrade a bit."  :func:`run_location_service_comparison` runs the same
  update/query workload over both services on the same static topology
  and reports message counts, bytes, success rates, and crypto ops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.agfw import AgfwRouter, AntHello
from repro.core.als import AlsAgent, AlsConfig
from repro.core.config import AgfwConfig
from repro.crypto.certificates import CertificateAuthority, KeyStore
from repro.crypto.ring_signature import ring_sign
from repro.crypto.timing import DEFAULT_COST_MODEL, CryptoCostModel
from repro.experiments.parallel import parallel_map
from repro.geo.grid import Grid
from repro.geo.region import Region
from repro.geo.vec import Position
from repro.location.dlm import DlmAgent, DlmConfig
from repro.location.service import OracleLocationService
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node
from repro.routing.gpsr import GpsrConfig, GpsrRouter
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = [
    "AantOverheadRow",
    "aant_overhead_table",
    "format_aant_overhead",
    "LocationServiceReport",
    "run_location_service_comparison",
    "format_location_service_comparison",
]

_PLAIN_HELLO_BYTES = 46  # AntHello header without any auth attachment


@dataclass(frozen=True)
class AantOverheadRow:
    """Hello cost at one ring size."""

    ring_size: int  # k decoys (anonymity set is k+1)
    hello_bytes_with_certs: int
    hello_bytes_with_serials: int
    sign_cost_ms: float
    verify_cost_ms: float


def aant_overhead_table(
    ring_sizes: Sequence[int] = (1, 2, 4, 8, 12, 16),
    cost_model: CryptoCostModel = DEFAULT_COST_MODEL,
) -> List[AantOverheadRow]:
    """Hello wire size and crypto cost as a function of ring size k."""
    rows: List[AantOverheadRow] = []
    for k in ring_sizes:
        members = k + 1
        rows.append(
            AantOverheadRow(
                ring_size=k,
                hello_bytes_with_certs=_PLAIN_HELLO_BYTES
                + cost_model.aant_hello_extra_bytes(members, attach_certificates=True),
                hello_bytes_with_serials=_PLAIN_HELLO_BYTES
                + cost_model.aant_hello_extra_bytes(members, attach_certificates=False),
                sign_cost_ms=cost_model.ring_sign_cost(members) * 1000,
                verify_cost_ms=cost_model.ring_verify_cost(members) * 1000,
            )
        )
    return rows


def format_aant_overhead(rows: Sequence[AantOverheadRow]) -> str:
    lines = [
        "AANT hello overhead vs ring size (anonymity set = k+1)",
        f"{'k':>4}  {'bytes (certs)':>14}  {'bytes (serials)':>16}  "
        f"{'sign ms':>8}  {'verify ms':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.ring_size:>4}  {row.hello_bytes_with_certs:>14}  "
            f"{row.hello_bytes_with_serials:>16}  {row.sign_cost_ms:>8.2f}  "
            f"{row.verify_cost_ms:>10.2f}"
        )
    return "\n".join(lines)


def measured_ring_signature_bytes(k: int, key_bits: int = 512, seed: int = 5) -> int:
    """Cross-check: the byte size of a *real* RST ring signature at ring
    size k+1 (glue + one domain element per member)."""
    rng = random.Random(seed)
    from repro.crypto.rsa import generate_keypair

    keys = [generate_keypair(key_bits, rng) for _ in range(k + 1)]
    ring = [key.public() for key in keys]
    signature = ring_sign(b"hello", ring, 0, keys[0], rng)
    return signature.byte_size()


# --------------------------------------------------------------------- ALS
@dataclass(frozen=True)
class LocationServiceReport:
    """One service's cost/effectiveness on the shared workload."""

    service: str
    lookups: int
    lookups_answered: int
    messages: int
    bytes: int
    crypto_ops: int
    crypto_time_ms: float


def _build_static_network(
    num_nodes: int, seed: int, protocol: str
) -> tuple[Simulator, List[Node], Grid, Tracer]:
    """A connected static field for service-layer comparisons."""
    sim = Simulator()
    tracer = Tracer(keep=False)
    medium = RadioMedium(sim, tracer)
    region = Region.of_size(1500.0, 300.0)
    grid = Grid.with_cell_size(region, 300.0)
    rngs = RngRegistry(seed)
    placement = rngs.stream("placement")
    nodes: List[Node] = []
    oracle = OracleLocationService(sim)
    for node_id in range(num_nodes):
        node = Node(
            sim, node_id, medium, StaticMobility(region.random_position(placement)),
            rngs, tracer,
        )
        if protocol == "gpsr":
            node.attach_router(GpsrRouter(node, oracle, GpsrConfig(), tracer))
        else:
            node.attach_router(AgfwRouter(node, oracle, AgfwConfig(), tracer))
        nodes.append(node)
    oracle.register_all(nodes)
    return sim, nodes, grid, tracer


def _run_service_point(task: tuple) -> LocationServiceReport:
    """Worker for one service's run of the shared lookup workload.

    Top-level (picklable) and self-contained: it builds its own
    Simulator/network from the task parameters, so DLM and ALS runs can
    execute in separate processes with results identical to serial.
    """
    service_name, num_nodes, seed, num_lookups, warmup, include_index, senders_per_node = task
    sim, nodes, grid, _tracer = _build_static_network(
        num_nodes, seed, protocol="gpsr" if service_name == "dlm" else "agfw"
    )
    rng = random.Random(seed + 1)
    pair_rng = random.Random(seed + 2)
    pairs = []
    for _ in range(num_lookups):
        a, b = pair_rng.sample(range(num_nodes), 2)
        pairs.append((a, b))
    agents = []
    for index, node in enumerate(nodes):
        if service_name == "dlm":
            agent = DlmAgent(node, node.router, grid, DlmConfig())
        else:
            agent = AlsAgent(
                node, node.router, grid, AlsConfig(include_index=include_index)
            )
            others = [n.identity for n in nodes if n.identity != node.identity]
            if senders_per_node is None:
                anticipated = others
            else:
                anticipated = rng.sample(others, min(senders_per_node, len(others)))
                # Lookups must be answerable: anticipate the requesters
                # that will actually query this node.
                for requester, target in pairs:
                    if target == index:
                        requester_id = nodes[requester].identity
                        if requester_id not in anticipated:
                            anticipated.append(requester_id)
            agent.potential_senders = anticipated
        agents.append(agent)
    for node in nodes:
        node.start()
    for agent in agents:
        agent.start()

    answered = {"n": 0}

    def _schedule_lookups() -> None:
        for offset, (a, b) in enumerate(pairs):
            requester = nodes[a]
            target = nodes[b]

            def _go(requester=requester, target=target) -> None:
                def _done(position) -> None:
                    if position is not None:
                        answered["n"] += 1

                requester.router.location_service.lookup(  # type: ignore[union-attr]
                    requester, target.identity, _done
                )

            sim.schedule(warmup + offset * 0.5, _go, name="exp.lookup")

    _schedule_lookups()
    sim.run(until=warmup + num_lookups * 0.5 + 10.0)

    return LocationServiceReport(
        service=service_name,
        lookups=num_lookups,
        lookups_answered=answered["n"],
        messages=sum(a.messages_sent for a in agents),
        bytes=sum(a.bytes_sent for a in agents),
        crypto_ops=sum(getattr(a, "crypto_ops", 0) for a in agents),
        crypto_time_ms=sum(getattr(a, "crypto_time_charged", 0.0) for a in agents)
        * 1000,
    )


def run_location_service_comparison(
    num_nodes: int = 60,
    seed: int = 11,
    num_lookups: int = 20,
    warmup: float = 15.0,
    include_index: bool = True,
    senders_per_node: Optional[int] = None,
    jobs: int = 1,
) -> List[LocationServiceReport]:
    """The same lookup workload over DLM (cleartext) and ALS (anonymous).

    Both run over a dense static field so service behaviour, not routing
    luck, dominates.  ``senders_per_node`` bounds how many potential
    requesters each ALS updater anticipates (None = everyone, the paper's
    stated worst case for update overhead).  Lookup pairs are drawn so
    the anticipated-senders constraint is honoured.  The two service
    runs are independent simulations; ``jobs > 1`` runs them in parallel
    with identical results.
    """
    tasks = [
        (service_name, num_nodes, seed, num_lookups, warmup, include_index, senders_per_node)
        for service_name in ("dlm", "als")
    ]
    return parallel_map(_run_service_point, tasks, jobs=jobs)


def format_location_service_comparison(reports: Sequence[LocationServiceReport]) -> str:
    lines = [
        "Location service overhead: DLM (cleartext) vs ALS (anonymous)",
        f"{'metric':<24}" + "".join(f"{r.service:>14}" for r in reports),
    ]

    def row(label: str, getter) -> str:
        return f"{label:<24}" + "".join(f"{getter(r):>14}" for r in reports)

    lines.append(row("lookups answered", lambda r: f"{r.lookups_answered}/{r.lookups}"))
    lines.append(row("service messages", lambda r: r.messages))
    lines.append(row("service bytes", lambda r: r.bytes))
    lines.append(row("crypto operations", lambda r: r.crypto_ops))
    lines.append(row("crypto time (ms)", lambda r: f"{r.crypto_time_ms:.1f}"))
    return "\n".join(lines)
