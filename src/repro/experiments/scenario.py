"""Scenario construction: the paper's simulation model, parameterized.

Defaults reproduce Section 5.1: nodes uniformly placed in a 1500 x 300 m
field, 250 m nominal radio range, random waypoint at up to 20 m/s with a
60 s pause time, 30 CBR flows from 20 senders, 900 s of simulated time.
The ``protocol`` field selects the scheme under test:

* ``"gpsr"``        — GPSR-Greedy (unicast data, RTS/CTS + MAC ACK),
* ``"agfw"``        — AGFW with network-layer ACKs,
* ``"agfw-noack"``  — the paper's ablation: AGFW without ACKs.

Use :func:`run_scenario` for one-shot runs; :func:`build_scenario` when
you need to attach sniffers or poke at nodes before running.
"""

from __future__ import annotations

import time as _wall
from dataclasses import dataclass, field as dc_field, fields as dc_fields, is_dataclass
from typing import Dict, List, Optional

from repro.adversary.sniffer import GlobalSniffer
from repro.core.aant import AantAuthenticator
from repro.core.agfw import AgfwRouter
from repro.core.config import AantConfig, AgfwConfig
from repro.crypto.cache import validate_cache_mode
from repro.crypto.certificates import CertificateAuthority
from repro.faults.loss import make_loss_process, validate_loss_model
from repro.faults.plan import FaultInjector, FaultPlan
from repro.geo.region import Region
from repro.geo.vec import Position
from repro.location.service import OracleLocationService
from repro.metrics.collectors import DeliveryCollector, OverheadCollector
from repro.metrics.faults import FaultMetrics
from repro.metrics.stats import Summary, summarize
from repro.net.medium import RadioMedium, validate_spatial_mode
from repro.net.pool import validate_pool_mode
from repro.net.mobility import RandomWaypointMobility, StaticMobility
from repro.net.node import Node
from repro.routing.base import RouterStats
from repro.routing.gpsr import GpsrConfig, GpsrRouter
from repro.sim.engine import Simulator
from repro.sim.shard import validate_shard_mode
from repro.sim.timerwheel import validate_scheduler_mode
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.traffic.cbr import CbrSource
from repro.traffic.workload import make_flows

__all__ = ["ScenarioConfig", "Scenario", "ScenarioResult", "build_scenario", "run_scenario"]

PROTOCOLS = ("gpsr", "agfw", "agfw-noack")


@dataclass
class ScenarioConfig:
    """Everything that defines one simulation run."""

    protocol: str = "gpsr"
    num_nodes: int = 50
    width: float = 1500.0
    height: float = 300.0
    radio_range: float = 250.0
    interference_range: float = 550.0
    sim_time: float = 900.0
    seed: int = 1
    # Medium fan-out strategy: "grid" (spatial index, default), "brute"
    # (full O(N) scan), or "cross" (grid verified against brute on every
    # query).  Outcome-identical by construction; see repro.geo.spatial.
    medium_index: str = "grid"
    # Event-queue backend: "wheel" (hierarchical timer wheel, default),
    # "heap" (heapq reference), or "cross" (both in lockstep, raising
    # SchedulerCoherenceError on any pop divergence).  Pop order — and
    # therefore every trace byte — is identical in all three modes; see
    # repro.sim.timerwheel.
    scheduler_mode: str = "wheel"
    # Spatial backend: "array" (numpy batch classification, default —
    # silently falls back to "obj" without numpy or with
    # medium_index="brute"), "obj" (object-graph grid), or "cross" (array
    # verified against the scalar computation on every transmission).
    # Bitwise-identical traces in all three; see repro.geo.spatial_array.
    spatial_mode: str = "array"
    # Frame/reception pooling: "on" (recycle, default), "off" (the exact
    # pre-pool allocation path), or "cross" (recycle + scrub/verify every
    # object across the free boundary).  See repro.net.pool.
    pool_mode: str = "on"
    # Sharded execution: "off" (single engine, default), "on" (column
    # shards, one engine per shard in a worker process, conservative
    # window synchronization), or "cross" (sharded inline + single engine
    # side by side, raising ShardCoherenceError on the first trace
    # divergence).  See repro.sim.shard.
    shard_mode: str = "off"
    # Number of column shards when shard_mode != "off".
    shards: int = 2
    # Keyed-engine queue backend inside shard workers: "slim" (timer
    # wheel + per-actor append lists — one bucket append per schedule)
    # or "threeheap" (the original three-heap reference; identical pop
    # order and traces, kept for the churn-equivalence proof).
    keyed_queue: str = "slim"
    # Fold promise announcements into execute replies (one IPC round
    # trip per steady-state round instead of two).  Trace-invariant;
    # False selects the legacy split promise/execute rounds.
    shard_piggyback: bool = True
    # Shared-memory position plane: workers publish owned leg arrays at
    # each barrier and ghost positions cross the pipes NaN-compressed.
    # Trace-invariant; auto-disabled without numpy or the array index.
    shard_plane: bool = True
    # Explicit inner column boundaries (shards - 1 strictly increasing
    # x positions), e.g. from committed calibration stats.  None keeps
    # equal-width columns.  Trace-invariant: ownership moves between
    # shards but the merged trace is a pure function of config + seed.
    shard_boundaries: Optional[tuple] = None
    # Derive boundaries automatically from a calibration prefix run
    # (per-shard executed-event counts — deterministic, unlike busy CPU
    # seconds), then rebuild and run from t=0 with the derived splits.
    shard_adaptive: bool = False
    # Fraction of sim_time the calibration prefix covers.
    shard_calibration: float = 0.1

    # Mobility (paper defaults); static=True pins nodes for debugging.
    min_speed: float = 1.0
    max_speed: float = 20.0
    pause_time: float = 60.0
    static: bool = False

    # Placement: "uniform" (paper default — any node anywhere in the
    # field) or "clusters" (node_id % num_clusters picks one of
    # num_clusters equally spaced vertical bands; the node starts — and
    # keeps all its waypoints — within cluster_radius of that band's
    # center line).  The community model for sharded-execution studies:
    # clusters much narrower than their pitch leave radio-silent border
    # corridors between shard columns.
    placement: str = "uniform"
    num_clusters: int = 8
    cluster_radius: float = 400.0

    # Workload (paper defaults).
    num_flows: int = 30
    num_senders: int = 20
    rate_pps: float = 4.0
    payload_bytes: int = 128  # paper leaves CBR size unstated; 128 B puts the
    # channel in the contention regime where Figure 1's density effects live
    traffic_start: tuple[float, float] = (5.0, 30.0)
    # When set, each flow's destination is drawn uniformly among nodes
    # whose *initial* position is within this many meters of the
    # sender's, instead of uniformly over the whole field.  None keeps
    # the paper's draw (and its exact rng call sequence).
    flow_locality: Optional[float] = None

    # Location service: Figure 1 uses the oracle (the paper "did not
    # incorporate ALS so as to focus on the major routing part").
    oracle_staleness: float = 0.0

    # Protocol extras.
    aant_ring_size: Optional[int] = None  # enable modeled ring-signed hellos
    agfw_overrides: Dict[str, object] = dc_field(default_factory=dict)
    gpsr_overrides: Dict[str, object] = dc_field(default_factory=dict)
    real_crypto: bool = False  # run actual RSA/ring signatures
    # Crypto fast path (real crypto only): "on" memoizes deterministic
    # verify/open results, "off" recomputes everything, "cross" runs both
    # and asserts per-call equality.  Outcome-identical by construction;
    # see repro.crypto.cache.
    crypto_cache_mode: str = "on"

    # Faults (defaults = the exact seed behaviour; see repro.faults).
    # loss_model: "none" | "bernoulli" | "gilbert" | "distance" — a seeded
    # per-reception channel loss process at every receiver.
    loss_model: str = "none"
    loss_rate: float = 0.0
    loss_params: Dict[str, float] = dc_field(default_factory=dict)
    # A FaultPlan of crash/recover/pause/churn events (picklable, so it
    # ships through --jobs pools); None = no lifecycle faults.
    fault_plan: Optional[FaultPlan] = None
    # Scripted teleports: (time, node_id, x, y) tuples applied as normal
    # simulation events (deterministic, replicated in sharded runs).
    # Requires static=True — waypoint mobility owns its own trajectory.
    teleports: tuple = ()

    # Instrumentation.
    keep_trace: bool = False
    with_sniffer: bool = False

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"protocol must be one of {PROTOCOLS}")
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.sim_time <= 0:
            raise ValueError("sim_time must be positive")
        validate_cache_mode(self.crypto_cache_mode)
        validate_scheduler_mode(self.scheduler_mode)
        validate_spatial_mode(self.spatial_mode)
        validate_pool_mode(self.pool_mode)
        validate_loss_model(self.loss_model)
        if self.loss_model == "none" and (self.loss_rate or self.loss_params):
            raise ValueError(
                "loss_rate / loss_params require a loss_model other than 'none'"
            )
        if self.placement not in ("uniform", "clusters"):
            raise ValueError("placement must be 'uniform' or 'clusters'")
        if self.placement == "clusters":
            if self.num_clusters < 1:
                raise ValueError("num_clusters must be >= 1")
            if self.cluster_radius <= 0:
                raise ValueError("cluster_radius must be positive")
        if self.flow_locality is not None and self.flow_locality <= 0:
            raise ValueError("flow_locality must be positive")
        validate_shard_mode(self.shard_mode)
        if self.teleports:
            if not self.static:
                raise ValueError(
                    "teleports require static=True (waypoint mobility owns "
                    "its own trajectory)"
                )
            for entry in self.teleports:
                t, node_id, _x, _y = entry
                if t < 0:
                    raise ValueError(f"teleport time must be >= 0: {entry}")
                if not (0 <= node_id < self.num_nodes):
                    raise ValueError(f"teleport targets unknown node: {entry}")
        if self.keyed_queue not in ("slim", "threeheap"):
            raise ValueError("keyed_queue must be 'slim' or 'threeheap'")
        if self.shard_mode != "off":
            if self.shards < 1:
                raise ValueError("shards must be >= 1")
            if self.with_sniffer:
                # The sniffer subscribes to one process's tracer; a merged
                # multi-engine trace has no single live stream to tap.
                raise ValueError("with_sniffer is incompatible with shard_mode != 'off'")
            if not 0.0 <= self.shard_calibration <= 1.0:
                raise ValueError("shard_calibration must be within [0, 1]")
            if self.shard_boundaries is not None:
                # Delegate shape/ordering checks to the partition (the
                # authority on split geometry) so configs fail fast.
                from repro.geo.partition import ColumnPartition

                ColumnPartition(
                    0.0, self.width, self.shards,
                    boundaries=tuple(self.shard_boundaries),
                )

    def canonical_dict(self) -> Dict[str, object]:
        """A JSON-stable encoding of this config for content addressing.

        The campaign layer (:mod:`repro.campaign`) keys its result store
        on a digest of this form, so it must be a pure function of the
        config's *values*: dataclasses (including nested
        :class:`~repro.faults.plan.FaultPlan` schedules) flatten to
        tagged dicts with sorted field names, tuples become lists, and
        dict keys are stringified and sorted.  Two configs that would
        simulate identically encode identically across processes,
        machines, and interpreter restarts.
        """
        return _canonical_value(self)  # type: ignore[return-value]


def _canonical_value(value: object) -> object:
    if is_dataclass(value) and not isinstance(value, type):
        encoded: Dict[str, object] = {
            name: _canonical_value(getattr(value, name))
            for name in sorted(f.name for f in dc_fields(value))
        }
        encoded["__type__"] = type(value).__qualname__
        return encoded
    if isinstance(value, (tuple, list)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _canonical_value(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"config field of type {type(value).__name__} has no canonical "
        f"encoding: {value!r}"
    )


@dataclass
class ScenarioResult:
    """What one run produced."""

    config: ScenarioConfig
    sent: int
    delivered: int
    delivery_fraction: float
    mean_latency: float
    latency: Optional[Summary]
    router_totals: RouterStats
    frames_on_air: int
    collisions: int
    wallclock_seconds: float
    bytes_by_kind: Dict[str, int] = dc_field(default_factory=dict)
    frames_by_kind: Dict[str, int] = dc_field(default_factory=dict)
    #: repro.metrics.faults counters — empty when no impairment was
    #: configured, so pre-faults result dictionaries stay unchanged.
    fault_counters: Dict[str, float] = dc_field(default_factory=dict)

    @property
    def goodput_bytes(self) -> int:
        """Application payload bytes actually delivered end-to-end."""
        return self.delivered * self.config.payload_bytes

    @property
    def overhead_ratio(self) -> float:
        """Total network-layer bytes on the air per delivered payload byte —
        the byte price of the scheme (anonymity headers, beacons, ACKs,
        retransmissions all included)."""
        goodput = self.goodput_bytes
        total = sum(self.bytes_by_kind.values())
        return total / goodput if goodput else float("inf")

    def row(self) -> str:
        """One human-readable result line."""
        return (
            f"{self.config.protocol:>10}  n={self.config.num_nodes:<4} "
            f"pdf={self.delivery_fraction:6.3f}  "
            f"latency={self.mean_latency * 1000:8.2f} ms  "
            f"({self.delivered}/{self.sent})"
        )


class Scenario:
    """A fully wired simulation, ready to run."""

    def __init__(self, config: ScenarioConfig, sim: Optional[Simulator] = None) -> None:
        self.config = config
        # Shard workers inject a KeyedSimulator; the default path builds
        # the plain engine exactly as before.
        self.sim = sim if sim is not None else Simulator(scheduler_mode=config.scheduler_mode)
        self.tracer = Tracer(keep=config.keep_trace)
        self.delivery = DeliveryCollector(self.tracer)
        self.overhead = OverheadCollector(self.tracer)
        self.sniffer: Optional[GlobalSniffer] = (
            GlobalSniffer(self.tracer) if config.with_sniffer else None
        )
        self.medium = RadioMedium(
            self.sim,
            self.tracer,
            radio_range=config.radio_range,
            interference_range=config.interference_range,
            index_mode=config.medium_index,
            spatial_mode=config.spatial_mode,
            pool_mode=config.pool_mode,
        )
        self.region = Region.of_size(config.width, config.height)
        self.rngs = RngRegistry(config.seed)
        self.oracle = OracleLocationService(self.sim, staleness=config.oracle_staleness)
        self.ca: Optional[CertificateAuthority] = None
        self.nodes: List[Node] = []
        self.sources: List[CbrSource] = []
        self.fault_metrics = FaultMetrics()
        self.fault_injector: Optional[FaultInjector] = None
        self._build()

    # ------------------------------------------------------------- building
    def _node_region(self, node_id: int) -> Region:
        """The region a node lives in: the whole field, or its cluster band."""
        cfg = self.config
        if cfg.placement != "clusters":
            return self.region
        pitch = cfg.width / cfg.num_clusters
        cx = (node_id % cfg.num_clusters + 0.5) * pitch
        return Region(
            max(0.0, cx - cfg.cluster_radius),
            0.0,
            min(cfg.width, cx + cfg.cluster_radius),
            cfg.height,
        )

    def _build(self) -> None:
        cfg = self.config
        placement_rng = self.rngs.stream("placement")
        starts: List[Position] = []
        for node_id in range(cfg.num_nodes):
            home = self._node_region(node_id)
            start = home.random_position(placement_rng)
            starts.append(start)
            if cfg.static:
                mobility = StaticMobility(start)
            else:
                mobility = RandomWaypointMobility(
                    self.sim,
                    home,
                    self.rngs.fork(f"mob:{node_id}").stream("rwp"),
                    start=start,
                    min_speed=cfg.min_speed,
                    max_speed=cfg.max_speed,
                    pause_time=cfg.pause_time,
                )
            node = Node(self.sim, node_id, self.medium, mobility, self.rngs, self.tracer)
            self.nodes.append(node)
        self.oracle.register_all(self.nodes)

        # Scripted teleports run as ordinary simulation events in
        # canonical (time, node_id) order, so sequence numbers — and the
        # sharded engines' causal keys — are a pure function of the
        # config.  StaticMobility.move_to notifies subscribers (radio
        # position, spatial index, fan-out memo) exactly like any other
        # position change.
        for tp_time, tp_node, tp_x, tp_y in sorted(cfg.teleports):
            node = self.nodes[tp_node]

            def _teleport(n=node, x=tp_x, y=tp_y, at=tp_time) -> None:
                n.mobility.move_to(Position(x, y))
                self.tracer.emit(at, "mob.teleport", node=n.node_id)

            self.sim.schedule_at(
                tp_time, _teleport, name="mob.teleport", actor=tp_node
            )

        # Channel impairment: one loss process per receiver, each on its
        # own per-purpose derived stream, so loss draws at one node never
        # perturb another node's chain (byte-identical across --jobs
        # pools).  With loss_model="none" nothing is created at all — the
        # reception path runs the exact seed instructions.
        if cfg.loss_model != "none":
            loss_rngs = self.rngs.fork("faults")
            for node in self.nodes:
                node.phy.set_loss_process(
                    make_loss_process(
                        cfg.loss_model,
                        cfg.loss_rate,
                        cfg.loss_params,
                        rng=loss_rngs.stream(f"loss:{node.node_id}"),
                        metrics=self.fault_metrics,
                        radio_range=cfg.radio_range,
                    )
                )
        if cfg.fault_plan is not None and cfg.fault_plan:
            self.fault_injector = FaultInjector(
                self.sim, self.nodes, cfg.fault_plan, self.fault_metrics, self.tracer
            )

        if cfg.real_crypto:
            self._provision_pki()

        for node in self.nodes:
            node.attach_router(self._make_router(node))

        # Clamp the ramp-up window into the run: short benchmark horizons
        # reuse the paper's (5, 30) default without further ceremony.
        window_cap = max(cfg.sim_time / 3.0, 0.1)
        start_window = (
            min(cfg.traffic_start[0], window_cap),
            min(cfg.traffic_start[1], window_cap),
        )
        flows = make_flows(
            [n.node_id for n in self.nodes],
            [n.identity for n in self.nodes],
            num_flows=cfg.num_flows,
            num_senders=min(cfg.num_senders, cfg.num_nodes),
            rng=self.rngs.stream("workload"),
            rate_pps=cfg.rate_pps,
            payload_bytes=cfg.payload_bytes,
            start_window=start_window,
            stop_time=cfg.sim_time,
            positions=[(p.x, p.y) for p in starts],
            locality=cfg.flow_locality,
        )
        by_id = {n.node_id: n for n in self.nodes}
        for flow in flows:
            self.sources.append(CbrSource(self.sim, by_id[flow.src_node_id], flow))

    def _provision_pki(self) -> None:
        """Enroll every node with the offline CA and pre-share certificates
        (the paper: nodes 'retrieve enough of them before entering')."""
        from repro.crypto.certificates import KeyStore

        self.ca = CertificateAuthority(
            rng=self.rngs.stream("ca"), cache_mode=self.config.crypto_cache_mode
        )
        stores = []
        for node in self.nodes:
            key, cert = self.ca.enroll(node.identity)
            stores.append(KeyStore(node.identity, key, cert))
        all_certs = [s.certificate for s in stores]
        for node, store in zip(self.nodes, stores):
            store.add_all(all_certs)
            node.keystore = store

    def _make_router(self, node: Node):
        cfg = self.config
        if cfg.protocol == "gpsr":
            gpsr_cfg = GpsrConfig(radio_range=cfg.radio_range, **cfg.gpsr_overrides)
            return GpsrRouter(node, self.oracle, gpsr_cfg, self.tracer)
        overrides = dict(cfg.agfw_overrides)
        if cfg.protocol == "agfw-noack":
            overrides["enable_ack"] = False
        if cfg.real_crypto:
            overrides.setdefault("crypto_mode", "real")
        overrides.setdefault("crypto_cache_mode", cfg.crypto_cache_mode)
        agfw_cfg = AgfwConfig(radio_range=cfg.radio_range, **overrides)
        authenticator = None
        if cfg.aant_ring_size is not None:
            aant_cfg = AantConfig(ring_size=cfg.aant_ring_size)
            agfw_cfg.aant = aant_cfg
            authenticator = AantAuthenticator(
                aant_cfg,
                mode="real" if cfg.real_crypto else "modeled",
                cost_model=agfw_cfg.cost_model,
                keystore=node.keystore,
                ca=self.ca,
                rng=node.rng("aant"),
                cache_mode=cfg.crypto_cache_mode,
            )
        return AgfwRouter(node, self.oracle, agfw_cfg, self.tracer, authenticator=authenticator)

    # -------------------------------------------------------------- running
    def run(self) -> ScenarioResult:
        if self.config.shard_mode != "off":
            # Lazy import: the driver imports this module back (workers
            # rebuild the scenario from the config), so binding it at
            # module import time would be circular.
            from repro.sim.shard.driver import run_sharded

            return run_sharded(self.config)
        return self._run_single()

    def _run_single(self) -> ScenarioResult:
        """The single-engine run loop (the exact seed path)."""
        started = _wall.perf_counter()
        for node in self.nodes:
            node.start()
        for source in self.sources:
            source.start()
        if self.fault_injector is not None:
            self.fault_injector.arm()
        self.sim.run(until=self.config.sim_time)
        if self.fault_injector is not None:
            self.fault_injector.finalize(self.sim.now)
        wallclock = _wall.perf_counter() - started

        totals = RouterStats()
        for node in self.nodes:
            stats = node.router.stats  # type: ignore[union-attr]
            for field_name in vars(totals):
                setattr(
                    totals, field_name,
                    getattr(totals, field_name) + getattr(stats, field_name),
                )
        collisions = sum(n.phy.frames_collided for n in self.nodes)
        latencies = self.delivery.latencies
        bytes_by_kind = {
            kind: counter.bytes for kind, counter in self.overhead.by_kind.items()
        }
        frames_by_kind = {
            kind: counter.frames for kind, counter in self.overhead.by_kind.items()
        }
        fault_counters: Dict[str, float] = {}
        if self.config.loss_model != "none" or self.fault_injector is not None:
            fault_counters = dict(self.fault_metrics.counters())
        return ScenarioResult(
            config=self.config,
            sent=self.delivery.sent,
            delivered=self.delivery.delivered,
            delivery_fraction=self.delivery.delivery_fraction,
            mean_latency=self.delivery.mean_latency,
            latency=summarize(latencies) if latencies else None,
            router_totals=totals,
            frames_on_air=self.medium.frames_sent,
            collisions=collisions,
            wallclock_seconds=wallclock,
            bytes_by_kind=bytes_by_kind,
            frames_by_kind=frames_by_kind,
            fault_counters=fault_counters,
        )


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Wire up (but do not run) a scenario."""
    return Scenario(config)


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build and run a scenario in one call."""
    return Scenario(config).run()
