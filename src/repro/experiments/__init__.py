"""Experiment harness: scenario builder and per-figure reproductions."""

from repro.experiments.fig1 import (
    DEFAULT_NODE_COUNTS,
    FIG1_SCHEMES,
    Fig1Point,
    format_fig1a,
    format_fig1b,
    run_fig1,
)
from repro.experiments.scenario import (
    Scenario,
    ScenarioConfig,
    ScenarioResult,
    build_scenario,
    run_scenario,
)

__all__ = [
    "DEFAULT_NODE_COUNTS",
    "FIG1_SCHEMES",
    "Fig1Point",
    "format_fig1a",
    "format_fig1b",
    "run_fig1",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "build_scenario",
    "run_scenario",
]
