"""Fault sweep: Fig-1-style delivery-vs-impairment curves.

The paper's reliability claim (Sections 3.2 & 5, Fig 1) is that AGFW's
broadcast-only MAC plus network-layer ACK/retransmission matches 802.11
unicast delivery *under failure*.  The density sweep stresses that claim
with hidden-terminal collisions only; this sweep stresses it with the
two fault axes of :mod:`repro.faults`:

* **channel loss** — every receiver runs a seeded loss process
  (Bernoulli / Gilbert–Elliott / distance) at the PHY boundary;
* **node churn** — a seeded :class:`~repro.faults.FaultPlan` crashes and
  reboots nodes throughout the run.

Expected qualitative ordering (what the CI-facing tests assert): at
every dose AGFW-ACK ≫ AGFW-noACK, and at mild doses GPSR ≈ AGFW-ACK.
Under heavy impairment AGFW-ACK *overtakes* GPSR: 802.11 unicast gives
up after its bounded link-layer retry budget, while the network-layer
ACK machinery keeps retransmitting (and re-routing on give-up).  Either
way the conclusion is the same — the retransmission machinery, not the
MAC, is what survives impairment, and the noACK ablation loses packets
silently.

Every point runs under a child seed derived from its (axis, scheme,
label) cell, so the sweep is byte-identical whether it runs serially or
fanned over ``--jobs`` worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import parallel_map
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.faults.plan import FaultPlan
from repro.sim.rng import derive_seed

__all__ = [
    "FaultPoint",
    "FAULT_SCHEMES",
    "run_faults_sweep",
    "format_faults_sweep",
]

FAULT_SCHEMES: Tuple[str, ...] = ("gpsr", "agfw", "agfw-noack")

_Item = Tuple[str, str, ScenarioConfig]


@dataclass(frozen=True)
class FaultPoint:
    """One (scheme, impairment dose) measurement."""

    scheme: str
    axis: str  # "loss" | "churn"
    label: str  # human-readable dose, e.g. "bernoulli p=0.30"
    delivery_fraction: float
    mean_latency_ms: float
    sent: int
    delivered: int
    loss_fraction: float
    drops_injected: int
    crashes: int
    downtime_s: float
    deliveries_during_downtime: int


def _run_fault_point(item: _Item) -> FaultPoint:
    """Worker for one sweep cell — top-level so it pickles."""
    axis, label, cfg = item
    result = run_scenario(cfg)
    fc = result.fault_counters
    draws = fc.get("loss_draws", 0)
    return FaultPoint(
        scheme=cfg.protocol,
        axis=axis,
        label=label,
        delivery_fraction=result.delivery_fraction,
        mean_latency_ms=result.mean_latency * 1000.0,
        sent=result.sent,
        delivered=result.delivered,
        loss_fraction=(fc.get("drops_injected", 0) / draws) if draws else 0.0,
        drops_injected=int(fc.get("drops_injected", 0)),
        crashes=int(fc.get("crashes", 0)),
        downtime_s=float(fc.get("downtime_s", 0.0)),
        deliveries_during_downtime=int(fc.get("deliveries_during_downtime", 0)),
    )


def run_faults_sweep(
    loss_rates: Sequence[float] = (0.1, 0.3, 0.5),
    loss_model: str = "bernoulli",
    churn_rates: Sequence[float] = (1.0, 3.0),
    mean_downtime: Optional[float] = None,
    schemes: Sequence[str] = FAULT_SCHEMES,
    num_nodes: int = 50,
    sim_time: float = 20.0,
    seed: int = 1,
    jobs: int = 1,
    base: ScenarioConfig | None = None,
) -> List[FaultPoint]:
    """Run the loss axis and the churn axis for every scheme.

    ``loss_rates`` doses the channel (under ``loss_model``);
    ``churn_rates`` is the expected number of crashes per node over the
    run, with downtimes averaging ``mean_downtime`` seconds (default:
    ``sim_time / 10``).  Each cell gets a child seed derived from its
    label, so points are independent and identical under any ``jobs``.
    """
    template = base if base is not None else ScenarioConfig()
    downtime = mean_downtime if mean_downtime is not None else max(sim_time / 10.0, 0.5)
    start_hi = min(30.0, max(3.0, sim_time / 10.0))
    items: List[_Item] = []
    for scheme in schemes:
        for rate in loss_rates:
            label = f"{loss_model} p={rate:.2f}"
            items.append(
                (
                    "loss",
                    label,
                    replace(
                        template,
                        protocol=scheme,
                        num_nodes=num_nodes,
                        sim_time=sim_time,
                        seed=derive_seed(seed, f"faults:loss:{scheme}:{label}"),
                        traffic_start=(1.0, start_hi),
                        loss_model=loss_model,
                        loss_rate=rate,
                    ),
                )
            )
        for rate in churn_rates:
            label = f"churn r={rate:.1f}"
            point_seed = derive_seed(seed, f"faults:churn:{scheme}:{label}")
            plan = FaultPlan.churn(
                range(num_nodes),
                sim_time=sim_time,
                seed=point_seed,
                rate=rate,
                mean_downtime=downtime,
            )
            items.append(
                (
                    "churn",
                    label,
                    replace(
                        template,
                        protocol=scheme,
                        num_nodes=num_nodes,
                        sim_time=sim_time,
                        seed=point_seed,
                        traffic_start=(1.0, start_hi),
                        fault_plan=plan,
                    ),
                )
            )
    return parallel_map(
        _run_fault_point,
        items,
        jobs=jobs,
        shards=template.shards if template.shard_mode == "on" else 1,
        describe=lambda it: f"faults:{it[0]}:{it[2].protocol}:{it[1]}:seed={it[2].seed}",
    )


def _series(points: Sequence[FaultPoint]) -> Dict[Tuple[str, str], Dict[str, FaultPoint]]:
    table: Dict[Tuple[str, str], Dict[str, FaultPoint]] = {}
    for point in points:
        table.setdefault((point.axis, point.label), {})[point.scheme] = point
    return table


def format_faults_sweep(points: Sequence[FaultPoint]) -> str:
    """Delivery fraction per impairment dose, one column per scheme,
    plus the measured dose (so every curve states what produced it)."""
    table = _series(points)
    schemes = [s for s in FAULT_SCHEMES if any(s in row for row in table.values())]
    header = f"{'impairment':<18}" + "".join(f"{s:>12}" for s in schemes) + "   dose"
    lines = ["Robustness: packet delivery fraction vs impairment", header]
    seen: List[Tuple[str, str]] = []
    for point in points:  # preserve sweep order, one row per dose
        key = (point.axis, point.label)
        if key in seen:
            continue
        seen.append(key)
        row = table[key]
        cells = "".join(
            f"{row[s].delivery_fraction:12.3f}" if s in row else " " * 12
            for s in schemes
        )
        sample = next(iter(row.values()))
        if point.axis == "loss":
            dose = f"loss={sample.loss_fraction:.3f} ({sample.drops_injected} drops)"
        else:
            dose = f"crashes={sample.crashes} down={sample.downtime_s:.1f}s"
        lines.append(f"{point.label:<18}{cells}   {dose}")
    return "\n".join(lines)
