"""Order-preserving parallel map for experiment sweeps.

Every experiment point (one ``(scheme, node count, seed)`` cell of a
sweep) is an *independent* simulation: the worker builds its own
:class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.rng.RngRegistry` from the point's config, so nothing
is shared between points but the immutable config objects.  That makes a
sweep embarrassingly parallel — and, because :func:`parallel_map`
preserves submission order exactly (``pool.map`` semantics), the
*formatted output of a sweep is byte-identical for any job count*,
including ``jobs=1`` which never touches :mod:`multiprocessing` at all.

Workers inherit no simulation state: the only module-level mutables in
the tree are uid counters (allowed by DET-006 precisely because their
values never influence control flow or formatted output), so a point
computes the same result in a forked child, a spawned child, or inline.
The same holds for the scheduler backend: every ``scheduler_mode``
(``heap`` | ``wheel`` | ``cross``) pops events in the identical order,
so sweep output is byte-identical across backends *and* job counts.

``fork`` is preferred when the platform offers it (cheap, inherits the
imported tree); ``spawn`` is the fallback elsewhere.  Worker functions
and items must be picklable top-level callables either way.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Sequence, TypeVar

from repro.sim.shard.driver import effective_jobs

__all__ = ["parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def _pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest start method the platform supports."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: int = 1, shards: int = 1
) -> List[R]:
    """``[fn(x) for x in items]``, fanned over ``jobs`` processes.

    Results come back in submission order regardless of which worker
    finished first (``pool.map`` collects by index), so callers may rely
    on byte-identical downstream formatting for any ``jobs`` value.
    ``jobs <= 1`` (or fewer than two items) runs inline in this process.

    ``shards`` declares how many worker processes each *point* spawns on
    its own (``shard_mode="on"`` runs).  The pool is clamped so the
    grand total ``pool x shards`` never exceeds ``os.cpu_count()``;
    precedence is documented on
    :func:`repro.sim.shard.driver.effective_jobs` (the per-run shard
    count always wins, the sweep pool gives way).  Clamping only changes
    the degree of parallelism, never results: points are order-preserved
    and independent for any pool size.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if shards > 1:
        jobs = effective_jobs(jobs, shards)
    items = list(items)
    if jobs == 1 or len(items) < 2:
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    with _pool_context().Pool(processes=workers) as pool:
        return pool.map(fn, items)
