"""Order-preserving parallel map for experiment sweeps.

Every experiment point (one ``(scheme, node count, seed)`` cell of a
sweep) is an *independent* simulation: the worker builds its own
:class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.rng.RngRegistry` from the point's config, so nothing
is shared between points but the immutable config objects.  That makes a
sweep embarrassingly parallel — and, because :func:`parallel_map`
preserves submission order exactly, the *formatted output of a sweep is
byte-identical for any job count*, including ``jobs=1`` which never
touches worker processes at all.

Workers inherit no simulation state: the only module-level mutables in
the tree are uid counters (allowed by DET-006 precisely because their
values never influence control flow or formatted output), so a point
computes the same result in a forked child, a spawned child, or inline.
The same holds for the scheduler backend: every ``scheduler_mode``
(``heap`` | ``wheel`` | ``cross``) pops events in the identical order,
so sweep output is byte-identical across backends *and* job counts.

``fork`` is preferred when the platform offers it (cheap, inherits the
imported tree); ``spawn`` is the fallback elsewhere.  Worker functions
and items must be picklable top-level callables either way.

Crash semantics
---------------
The pool runs on :class:`concurrent.futures.ProcessPoolExecutor`, not
``multiprocessing.Pool``: when a worker process dies *hard* (OOM kill,
segfault, uncatchable signal) ``Pool.map`` loses the task and blocks the
whole sweep forever, while the executor detects the dead process and
fails the in-flight futures.  :func:`parallel_map` converts that into a
:class:`WorkerCrashError` naming every point that never reported a
result (the crashed point is among them; with ``jobs > 1`` siblings that
were in flight when the pool broke are listed too).  Ordinary exceptions
raised *inside* a worker are pickled back and re-raised unchanged.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.sim.shard.driver import effective_jobs

__all__ = ["parallel_map", "WorkerCrashError"]

T = TypeVar("T")
R = TypeVar("R")


class WorkerCrashError(RuntimeError):
    """A pool worker died without reporting a result (hard crash).

    ``points`` carries the identity strings of every submitted item that
    had no result when the pool broke — the crashed point plus any
    siblings in flight at that moment.  Completed points are unaffected
    (and, for stores that persist per point, remain durable).
    """

    def __init__(self, points: Sequence[str]) -> None:
        self.points = tuple(points)
        listing = ", ".join(self.points) or "<none submitted>"
        super().__init__(
            "a worker process terminated abruptly (killed / OOM / segfault) "
            f"before reporting a result; unfinished points: {listing}"
        )


def _pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest start method the platform supports."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    shards: int = 1,
    describe: Optional[Callable[[T], str]] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, fanned over ``jobs`` processes.

    Results come back in submission order regardless of which worker
    finished first, so callers may rely on byte-identical downstream
    formatting for any ``jobs`` value.  ``jobs <= 1`` (or fewer than two
    items) runs inline in this process.

    ``shards`` declares how many worker processes each *point* spawns on
    its own (``shard_mode="on"`` runs).  The pool is clamped so the
    grand total ``pool x shards`` never exceeds ``os.cpu_count()``;
    precedence is documented on
    :func:`repro.sim.shard.driver.effective_jobs` (the per-run shard
    count always wins, the sweep pool gives way).  Clamping only changes
    the degree of parallelism, never results: points are order-preserved
    and independent for any pool size.

    ``describe`` maps an item to a short identity string ("scheme/n=150/
    seed=7") used in :class:`WorkerCrashError` when a worker dies hard;
    the default is a truncated ``repr``.  It is only called in the
    parent, so it need not pickle.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if shards > 1:
        jobs = effective_jobs(jobs, shards)
    items = list(items)
    if jobs == 1 or len(items) < 2:
        return [fn(item) for item in items]
    if describe is None:
        describe = lambda item: repr(item)[:120]
    workers = min(jobs, len(items))
    executor = ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
    try:
        futures = [executor.submit(fn, item) for item in items]
        results: List[R] = []
        for future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool:
                # The broken pool fails every future that had not yet
                # produced a result; the one whose worker died is among
                # them but indistinguishable from in-flight siblings.
                lost = [
                    describe(item)
                    for item, sibling in zip(items, futures)
                    if not sibling.done()
                    or sibling.cancelled()
                    or isinstance(sibling.exception(), BrokenProcessPool)
                ]
                raise WorkerCrashError(lost) from None
        return results
    finally:
        # cancel_futures: on an error (or SIGINT) never start queued
        # points; running ones finish so per-point persistence (the
        # campaign store) keeps everything already computed.
        executor.shutdown(wait=True, cancel_futures=True)
