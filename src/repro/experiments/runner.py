"""One-stop reproduction runner.

``python -m repro.experiments.runner`` regenerates every table/figure of
the paper at a configurable scale and prints the same series the paper
reports.  ``--full`` uses the paper's 900 s horizon (slow: pure-Python
discrete-event simulation); the default is a scaled-down sweep that
preserves the shapes.

``python -m repro.experiments.runner campaign run|status|report <spec>``
mounts the sweep-campaign CLI (declarative matrix + content-addressed
result cache; see :mod:`repro.campaign`).
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys

from repro.experiments.fig1 import (
    DEFAULT_NODE_COUNTS,
    format_fig1a,
    format_fig1b,
    run_fig1,
)
from repro.experiments.faults_sweep import format_faults_sweep, run_faults_sweep
from repro.faults import LOSS_MODELS
from repro.experiments.overhead import (
    aant_overhead_table,
    format_aant_overhead,
    format_location_service_comparison,
    run_location_service_comparison,
)
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.security import format_exposure, run_exposure_experiment
from repro.net.medium import SPATIAL_MODES
from repro.net.pool import POOL_MODES
from repro.sim.shard import SHARD_MODES
from repro.sim.shard.driver import effective_jobs
from repro.sim.timerwheel import SCHEDULER_MODES

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        # Sweep campaigns (declarative matrix + cached result store) are
        # a subcommand so `runner` stays the one entry point; see
        # repro.campaign.cli for run | status | report.
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale 900 s runs")
    parser.add_argument("--sim-time", type=float, default=None, help="seconds per point")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent experiment points "
        "(output is byte-identical for any value)",
    )
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULER_MODES,
        default="wheel",
        help="event-queue backend: wheel (timer wheel, default), heap "
        "(heapq reference), or cross (lockstep equivalence check); "
        "output is byte-identical for any value",
    )
    parser.add_argument(
        "--spatial",
        choices=SPATIAL_MODES,
        default="array",
        help="spatial backend: array (numpy batch classification, "
        "default; falls back to obj without numpy), obj (object-graph "
        "grid), or cross (array verified against the scalar path); "
        "output is byte-identical for any value",
    )
    parser.add_argument(
        "--pool",
        choices=POOL_MODES,
        default="on",
        help="frame/reception pooling: on (recycle, default), off "
        "(per-transmission allocation), or cross (recycle + scrub "
        "verification); output is byte-identical for any value",
    )
    parser.add_argument(
        "--shard-mode",
        choices=SHARD_MODES,
        default="off",
        help="sharded execution: off (single engine, default), on "
        "(column shards in worker processes), or cross (sharded + "
        "single engine side by side, asserting byte-identical traces); "
        "output is byte-identical for any value",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="column shards per run when --shard-mode is not off; the "
        "--jobs pool is clamped so jobs x shards never exceeds the "
        "machine (shards win — a sharded run is one coherent unit)",
    )
    parser.add_argument(
        "--shard-adaptive",
        action="store_true",
        help="rebalance column boundaries from a calibration prefix "
        "(deterministic per-shard executed-event counts) before the "
        "real run; output is byte-identical either way",
    )
    parser.add_argument(
        "--shard-legacy-rounds",
        action="store_true",
        help="use the pre-piggybacking split promise/execute rounds "
        "(twice the IPC messages per round; debugging/reference only)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        type=int,
        const=25,
        default=None,
        metavar="TOP_N",
        help="run everything under cProfile and write the top-N "
        "cumulative-time rows (default 25) to benchmarks/results/",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        nargs="*",
        default=None,
        help="node counts for the density sweep",
    )
    parser.add_argument(
        "--skip",
        nargs="*",
        default=[],
        choices=["fig1", "exposure", "aant", "als", "faults"],
        help="experiments to skip",
    )
    parser.add_argument(
        "--loss-model",
        choices=LOSS_MODELS,
        default="none",
        help="channel-loss model applied to the density sweep "
        "(the default 'none' keeps the pre-fault byte-identical traces)",
    )
    parser.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="loss dose for --loss-model (Bernoulli/steady-state drop "
        "probability or distance-loss ceiling)",
    )
    parser.add_argument(
        "--fault-churn",
        type=float,
        nargs="*",
        default=None,
        metavar=("RATE", "DOWNTIME"),
        help="inject seeded node churn into the density sweep: expected "
        "crashes per node over the run, optionally followed by the mean "
        "downtime in seconds",
    )
    args = parser.parse_args(argv)
    if args.loss_model == "none" and args.loss_rate:
        parser.error("--loss-rate requires --loss-model")
    churn = None
    if args.fault_churn is not None:
        if not 1 <= len(args.fault_churn) <= 2:
            parser.error("--fault-churn takes RATE [MEAN_DOWNTIME]")
        churn = (args.fault_churn[0], args.fault_churn[1] if len(args.fault_churn) == 2 else None)

    if args.shard_mode != "off":
        capped = effective_jobs(args.jobs, args.shards)
        if capped != args.jobs:
            print(
                f"[jobs] clamped --jobs {args.jobs} -> {capped} so "
                f"{args.shards} shards per run never oversubscribe the machine"
            )
        args.jobs = capped

    sim_time = args.sim_time if args.sim_time is not None else (900.0 if args.full else 20.0)
    counts = tuple(args.nodes) if args.nodes else (
        DEFAULT_NODE_COUNTS if args.full else (50, 100, 112, 150)
    )

    if args.profile is not None:
        # Results are printed as usual; the profile rides alongside as a
        # deterministically named artifact (no timestamps — reruns
        # overwrite, diffs stay reviewable).
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _run_experiments(args, sim_time, counts, churn)
        finally:
            profiler.disable()
            out_dir = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"profile_runner_seed{args.seed}.txt"
            with out_path.open("w", encoding="utf-8") as fh:
                stats = pstats.Stats(profiler, stream=fh)
                stats.strip_dirs().sort_stats("cumulative").print_stats(args.profile)
            print(f"[profile] top-{args.profile} cumulative rows -> {out_path}")
    else:
        _run_experiments(args, sim_time, counts, churn)
    return 0


def _run_experiments(args, sim_time: float, counts: tuple, churn) -> None:
    if "fig1" not in args.skip:
        impairments = []
        if args.loss_model != "none":
            impairments.append(f"loss {args.loss_model} p={args.loss_rate:g}")
        if churn is not None:
            impairments.append(f"churn r={churn[0]:g}")
        suffix = f", {'; '.join(impairments)}" if impairments else ""
        print(f"# Density sweep ({sim_time:.0f} s per point, seed {args.seed}{suffix})\n")
        points = run_fig1(
            node_counts=counts,
            sim_time=sim_time,
            seed=args.seed,
            jobs=args.jobs,
            base=ScenarioConfig(
                scheduler_mode=args.scheduler,
                spatial_mode=args.spatial,
                pool_mode=args.pool,
                shard_mode=args.shard_mode,
                shards=args.shards,
                shard_adaptive=args.shard_adaptive,
                shard_piggyback=not args.shard_legacy_rounds,
                loss_model=args.loss_model,
                loss_rate=args.loss_rate,
            ),
            churn=churn,
        )
        print(format_fig1a(points))
        print()
        print(format_fig1b(points))
        print()

    if "exposure" not in args.skip:
        print("# Privacy exposure (Sections 2 & 4)\n")
        reports = run_exposure_experiment(
            sim_time=min(sim_time * 3, 60.0), seed=args.seed, jobs=args.jobs
        )
        print(format_exposure(reports))
        print()

    if "aant" not in args.skip:
        print("# AANT overhead (Section 4)\n")
        print(format_aant_overhead(aant_overhead_table()))
        print()

    if "als" not in args.skip:
        print("# ALS vs DLM overhead (Sections 3.3 & 5)\n")
        reports = run_location_service_comparison(seed=args.seed, jobs=args.jobs)
        print(format_location_service_comparison(reports))
        print()

    if "faults" not in args.skip:
        fault_time = min(sim_time, 20.0)
        print(f"# Robustness sweep ({fault_time:.0f} s per point, seed {args.seed})\n")
        fault_points = run_faults_sweep(
            sim_time=fault_time,
            seed=args.seed,
            jobs=args.jobs,
            base=ScenarioConfig(
                scheduler_mode=args.scheduler,
                spatial_mode=args.spatial,
                pool_mode=args.pool,
                shard_mode=args.shard_mode,
                shards=args.shards,
                shard_adaptive=args.shard_adaptive,
                shard_piggyback=not args.shard_legacy_rounds,
            ),
        )
        print(format_faults_sweep(fault_points))
        print()


if __name__ == "__main__":
    sys.exit(main())
