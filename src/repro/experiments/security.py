"""Privacy-exposure experiment (paper Sections 2 & 4, quantified).

The paper's security analysis is qualitative: under plain geographic
routing a sniffer reads (identity, location) doublets from every beacon
and data header; under the proposed scheme it reads only pseudonyms and
opaque trapdoors.  This experiment runs the same workload under both
protocols with a global sniffer coalition and measures:

* doublets captured (total, and per victim identity),
* tracking coverage of a victim (fraction of time the adversary holds a
  fix fresher than a horizon),
* what remains under AGFW: pseudonym sightings and traceable routes
  (the paper concedes route traceability), with zero identities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.adversary.tracker import DoubletTracker, RouteTracer
from repro.experiments.parallel import parallel_map
from repro.experiments.scenario import ScenarioConfig, Scenario

__all__ = ["ExposureReport", "run_exposure_experiment", "format_exposure"]


@dataclass(frozen=True)
class ExposureReport:
    """Adversary yield for one protocol run."""

    protocol: str
    frames_observed: int
    doublets: int
    identities_exposed: int
    max_doublets_one_identity: int
    mean_tracking_coverage: float
    pseudonym_sightings: int
    traceable_routes: int
    identities_from_routes: int


def _run_exposure_point(task: Tuple[ScenarioConfig, float]) -> ExposureReport:
    """Worker for one protocol run — top-level so it pickles for the pool."""
    cfg, tracking_horizon = task
    scenario = Scenario(cfg)
    scenario.run()
    assert scenario.sniffer is not None
    observations = scenario.sniffer.observations

    tracker = DoubletTracker()
    tracker.ingest(observations)
    exposure = tracker.exposed_identities()

    coverages = [
        tracker.tracking_coverage(node.identity, cfg.sim_time, horizon=tracking_horizon)
        for node in scenario.nodes
    ]
    routes = RouteTracer()
    routes.ingest(observations)

    return ExposureReport(
        protocol=cfg.protocol,
        frames_observed=len(observations),
        doublets=len(tracker.doublets),
        identities_exposed=len(exposure),
        max_doublets_one_identity=max(exposure.values(), default=0),
        mean_tracking_coverage=sum(coverages) / len(coverages),
        pseudonym_sightings=tracker.pseudonym_sightings,
        traceable_routes=len(routes.routes()),
        identities_from_routes=routes.identities_learned(),
    )


def run_exposure_experiment(
    base: Optional[ScenarioConfig] = None,
    protocols: tuple[str, ...] = ("gpsr", "agfw"),
    sim_time: float = 60.0,
    num_nodes: int = 50,
    seed: int = 7,
    tracking_horizon: float = 5.0,
    jobs: int = 1,
) -> List[ExposureReport]:
    """Run the workload under each protocol with a global sniffer.

    Per-protocol runs are independent simulations, so ``jobs > 1`` fans
    them over worker processes with output identical to the serial path
    (both protocols use the same ``seed``, deliberately: the comparison
    is "same workload, different protocol").
    """
    template = base if base is not None else ScenarioConfig()
    tasks = [
        (
            replace(
                template,
                protocol=protocol,
                num_nodes=num_nodes,
                sim_time=sim_time,
                seed=seed,
                with_sniffer=True,
                traffic_start=(1.0, min(10.0, sim_time / 4)),
            ),
            tracking_horizon,
        )
        for protocol in protocols
    ]
    return parallel_map(_run_exposure_point, tasks, jobs=jobs)


def format_exposure(reports: List[ExposureReport]) -> str:
    """Side-by-side table of adversary yield per protocol."""
    lines = [
        "Adversary yield (global passive sniffer, identical workload)",
        f"{'metric':<32}" + "".join(f"{r.protocol:>14}" for r in reports),
    ]

    def row(label: str, getter) -> str:
        return f"{label:<32}" + "".join(f"{getter(r):>14}" for r in reports)

    lines.append(row("frames observed", lambda r: r.frames_observed))
    lines.append(row("(id, loc) doublets", lambda r: r.doublets))
    lines.append(row("identities exposed", lambda r: r.identities_exposed))
    lines.append(row("max doublets on one victim", lambda r: r.max_doublets_one_identity))
    lines.append(
        row("mean tracking coverage", lambda r: f"{r.mean_tracking_coverage:.3f}")
    )
    lines.append(row("pseudonym-only sightings", lambda r: r.pseudonym_sightings))
    lines.append(row("traceable routes (no ids)", lambda r: r.traceable_routes))
    lines.append(row("identities from routes", lambda r: r.identities_from_routes))
    return "\n".join(lines)
