"""Location services: oracle (evaluation), DLM (baseline), geocast base.

The anonymous variant (ALS) lives in :mod:`repro.core.als` since it is
part of the paper's contribution.
"""

from repro.location.dlm import (
    DlmAgent,
    DlmConfig,
    DlmReply,
    DlmRequest,
    DlmUpdate,
    StoredLocation,
)
from repro.location.geocast import LocationAddressed
from repro.location.service import LocationCallback, LocationService, OracleLocationService

__all__ = [
    "DlmAgent",
    "DlmConfig",
    "DlmReply",
    "DlmRequest",
    "DlmUpdate",
    "StoredLocation",
    "LocationAddressed",
    "LocationCallback",
    "LocationService",
    "OracleLocationService",
]
