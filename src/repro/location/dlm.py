"""DLM — the grid-based distributed location service (Xue et al., LCN'01).

The baseline the paper's ALS anonymizes.  The network area is divided
into equal grids; a publicly known *server selection algorithm* maps a
node identity to its server grid(s) (:meth:`repro.geo.grid.Grid.home_cells`).
Nodes periodically geo-route a location update to each server grid; any
node currently inside the grid acts as a location server and stores the
entry.  A querying node geo-routes a request to the target's server
grid and gets a reply routed back to its own advertised location.

Privacy-wise DLM is the *second* leak the paper attacks: the updater's
``(identity, location)`` doublet crosses the network in cleartext and
sits in cleartext at the server; the requester also reveals itself.
``wire_view`` on each packet makes those leaks explicit for the
adversary modules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addresses import LAST_ATTEMPT
from repro.geo.grid import Cell, Grid
from repro.geo.vec import Position
from repro.location.geocast import LocationAddressed
from repro.net.addresses import BROADCAST
from repro.net.mac.frames import MacFrame
from repro.net.node import Node
from repro.sim.engine import Event

__all__ = [
    "DlmConfig",
    "DlmUpdate",
    "DlmRequest",
    "DlmReply",
    "DlmAgent",
    "StoredLocation",
]

_ID_BYTES = 4
_LOC_BYTES = 8


@dataclass
class DlmConfig:
    """Knobs of the location service (shared with ALS where noted)."""

    update_interval: float = 10.0
    update_jitter: float = 0.2
    entry_ttl: float = 35.0  # server entries expire (3.5x the update period)
    servers_per_node: int = 1
    request_timeout: float = 2.0
    request_retries: int = 1
    replicate_in_cell: bool = True  # one local broadcast to seed cell-mates
    service_ttl: int = 64  # hop budget for service packets


@dataclass
class DlmUpdate(LocationAddressed):
    """RLU: the updater's identity and location, in cleartext."""

    KIND = "dlm.update"

    identity: str = ""
    position: Position = field(default_factory=lambda: Position(0.0, 0.0))
    timestamp: float = 0.0
    final_broadcast: bool = False

    def header_bytes(self) -> int:
        return super().header_bytes() + _ID_BYTES + _LOC_BYTES + 4

    def wire_view(self) -> dict:
        return {
            "identity": self.identity,
            "location": self.position.as_tuple(),
            "timestamp": self.timestamp,
        }


@dataclass
class DlmRequest(LocationAddressed):
    """LREQ: who is asking, from where, about whom — all in cleartext."""

    KIND = "dlm.request"

    requester_identity: str = ""
    requester_location: Position = field(default_factory=lambda: Position(0.0, 0.0))
    target_identity: str = ""
    final_broadcast: bool = False

    def header_bytes(self) -> int:
        return super().header_bytes() + 2 * _ID_BYTES + _LOC_BYTES

    def wire_view(self) -> dict:
        return {
            "requester_identity": self.requester_identity,
            "requester_location": self.requester_location.as_tuple(),
            "target_identity": self.target_identity,
        }


@dataclass
class DlmReply(LocationAddressed):
    """LREP: the target's stored doublet, routed back to the requester."""

    KIND = "dlm.reply"

    requester_identity: str = ""
    target_identity: str = ""
    target_position: Position = field(default_factory=lambda: Position(0.0, 0.0))
    timestamp: float = 0.0
    final_broadcast: bool = False

    def header_bytes(self) -> int:
        return super().header_bytes() + 2 * _ID_BYTES + _LOC_BYTES + 4

    def wire_view(self) -> dict:
        return {
            "requester_identity": self.requester_identity,
            "target_identity": self.target_identity,
            "target_location": self.target_position.as_tuple(),
        }


@dataclass
class StoredLocation:
    """One entry of a node acting as location server."""

    identity: str
    position: Position
    timestamp: float
    stored_at: float


@dataclass
class _PendingLookup:
    callback: Callable[[Optional[Position]], None]
    retries_left: int
    timer: Optional[Event] = None


class DlmAgent:
    """The location-service role of one node (updater, server, requester)."""

    def __init__(
        self,
        node: Node,
        router,
        grid: Grid,
        config: Optional[DlmConfig] = None,
        install: bool = True,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.router = router
        self.grid = grid
        self.config = config or DlmConfig()
        self._rng: random.Random = node.rng("dlm")
        self.store: Dict[str, StoredLocation] = {}
        self._pending: Dict[str, _PendingLookup] = {}
        self._seen_uids: set[int] = set()
        self._started = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.updates_stored = 0
        self.requests_served = 0
        self.lookups_failed = 0
        if install:
            self.install()

    def install(self) -> None:
        """Register packet handlers and become the router's location service."""
        for packet_type in (DlmUpdate, DlmRequest, DlmReply):
            self.router.register_handler(packet_type, self._on_packet)
        self.router.location_service = self

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        first = self._rng.uniform(0.0, self.config.update_interval)
        self.sim.schedule(first, self._update_tick, name="dlm.update")

    def _update_tick(self) -> None:
        self.send_updates()
        jitter = self.config.update_jitter
        interval = self.config.update_interval * self._rng.uniform(1 - jitter, 1 + jitter)
        self.sim.schedule(interval, self._update_tick, name="dlm.update")

    # -------------------------------------------------------------- updates
    def home_cells(self) -> List[Cell]:
        return self.grid.home_cells(self.node.identity, self.config.servers_per_node)

    def send_updates(self) -> None:
        """RLU: push our current doublet to every server grid."""
        now = self.sim.now
        position = self.node.position
        for cell in self.home_cells():
            update = DlmUpdate(
                target_location=self.grid.center_of(cell),
                ttl=self.config.service_ttl,
                # DLM is the plain baseline location service: the RLU
                # carries the (identity, location) doublet in cleartext —
                # exactly what ALS replaces with an encrypted index.
                identity=self.node.identity,  # repro: noqa[ANON-001] baseline leak
                position=position,
                timestamp=now,
            )
            self._route(update)

    # -------------------------------------------------------------- lookups
    def lookup(
        self, requester: Node, identity: str, callback: Callable[[Optional[Position]], None]
    ) -> None:
        """LREQ toward the target's server grid; async reply or timeout."""
        local = self.store.get(identity)
        if local is not None and self._fresh(local):
            callback(local.position)
            return
        pending = _PendingLookup(callback, self.config.request_retries)
        self._pending[identity] = pending
        self._send_request(identity, pending)

    def _send_request(self, identity: str, pending: _PendingLookup) -> None:
        cell = self.grid.home_cells(identity, self.config.servers_per_node)[0]
        request = DlmRequest(
            target_location=self.grid.center_of(cell),
            ttl=self.config.service_ttl,
            # Plain-baseline lookup: both identities are wire-visible.
            requester_identity=self.node.identity,  # repro: noqa[ANON-001] baseline leak
            requester_location=self.node.position,
            target_identity=identity,  # repro: noqa[ANON-001] baseline leak
        )
        self._route(request)
        pending.timer = self.sim.schedule(
            self.config.request_timeout,
            lambda: self._on_lookup_timeout(identity),
            name="dlm.req_to",
        )

    def _on_lookup_timeout(self, identity: str) -> None:
        pending = self._pending.get(identity)
        if pending is None:
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            self._send_request(identity, pending)
            return
        del self._pending[identity]
        self.lookups_failed += 1
        pending.callback(None)

    # ------------------------------------------------------------ transport
    def _route(self, packet: LocationAddressed) -> None:
        """Send toward the packet's target location (or consume locally)."""
        self.messages_sent += 1
        self.bytes_sent += packet.size_bytes()
        if self._arrived(packet):
            self._consume(packet)
        else:
            self.router.forward_location_packet(packet, self._on_local_max)

    def _arrived(self, packet: LocationAddressed) -> bool:
        """Are we a valid endpoint for this packet, here and now?"""
        if isinstance(packet, DlmReply):
            return packet.requester_identity == self.node.identity
        own_cell = self.grid.cell_of(self.node.position)
        return own_cell == self.grid.cell_of(packet.target_location)

    def _on_packet(self, packet: LocationAddressed, frame: MacFrame) -> None:
        if packet.uid in self._seen_uids:
            # MAC retransmissions with lost ACKs deliver duplicates; without
            # suppression each copy would re-forward (a broadcast storm).
            return
        self._seen_uids.add(packet.uid)
        if self._arrived(packet):
            self._consume(packet)
            return
        if getattr(packet, "final_broadcast", False):
            return  # a last-chance broadcast we were not the endpoint of
        self.router.forward_location_packet(packet, self._on_local_max)

    def _on_local_max(self, packet: LocationAddressed) -> None:
        """No neighbor is closer to the target.  One local broadcast gives
        in-cell nodes (or the requester) a final chance, then the packet dies."""
        if self._arrived(packet):
            self._consume(packet)
            return
        if getattr(packet, "final_broadcast", False):
            return
        outgoing = packet.clone_for_forwarding(
            final_broadcast=True,
            ttl=max(packet.ttl - 1, 0),
            next_pseudonym=LAST_ATTEMPT,
        )
        self.node.mac.send(outgoing, BROADCAST)

    # ----------------------------------------------------------- server role
    def _consume(self, packet: LocationAddressed) -> None:
        if isinstance(packet, DlmUpdate):
            self._store_update(packet)
        elif isinstance(packet, DlmRequest):
            self._serve_request(packet)
        elif isinstance(packet, DlmReply):
            self._finish_lookup(packet)

    def _store_update(self, update: DlmUpdate) -> None:
        self.store[update.identity] = StoredLocation(
            identity=update.identity,
            position=update.position,
            timestamp=update.timestamp,
            stored_at=self.sim.now,
        )
        self.updates_stored += 1
        if self.config.replicate_in_cell and not update.final_broadcast:
            clone = update.clone_for_forwarding(
                final_broadcast=True, next_pseudonym=LAST_ATTEMPT
            )
            self.node.mac.send(clone, BROADCAST)

    def _serve_request(self, request: DlmRequest) -> None:
        if request.requester_identity == self.node.identity:
            return  # our own request echoed around the cell
        entry = self.store.get(request.target_identity)
        if entry is None or not self._fresh(entry):
            return  # no knowledge; the requester will time out and retry
        self.requests_served += 1
        reply = DlmReply(
            target_location=request.requester_location,
            ttl=self.config.service_ttl,
            # Plain-baseline reply: echoes the requester and hands out the
            # target's identity-location doublet to any sniffer.
            requester_identity=request.requester_identity,  # repro: noqa[ANON-001] baseline leak
            target_identity=entry.identity,  # repro: noqa[ANON-001] baseline leak
            target_position=entry.position,  # repro: noqa[ANON-001] baseline leak
            timestamp=entry.timestamp,
        )
        self._route(reply)

    def _finish_lookup(self, reply: DlmReply) -> None:
        pending = self._pending.pop(reply.target_identity, None)
        if pending is None:
            return  # duplicate reply
        if pending.timer is not None:
            pending.timer.cancel()
        pending.callback(reply.target_position)

    def _fresh(self, entry: StoredLocation) -> bool:
        return (self.sim.now - entry.stored_at) <= self.config.entry_ttl

    # --------------------------------------------------------------- queries
    def is_server_for(self, identity: str) -> bool:
        """Is this node currently inside one of ``identity``'s server grids?"""
        own_cell = self.grid.cell_of(self.node.position)
        return own_cell in self.grid.home_cells(identity, self.config.servers_per_node)
