"""Location service interfaces.

Geographic routing needs the destination's location before it can send.
The paper's routing model calls this the *location service* (RLU/LREQ
messages).  Three implementations exist in this repo:

* :class:`OracleLocationService` (here) — an omniscient, zero-cost
  database, the standard methodology for isolating routing performance
  (the paper's Figure 1 experiments "did not incorporate ALS so as to
  focus our evaluation on the major routing part").
* :class:`~repro.location.dlm.DlmLocationService` — the grid-based
  scheme of Xue et al. the paper builds on, running over the network.
* :class:`~repro.core.als.AlsLocationService` — the paper's anonymous
  variant.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.geo.vec import Position
from repro.net.node import Node
from repro.sim.engine import Simulator

__all__ = ["LocationService", "LocationCallback", "OracleLocationService"]

LocationCallback = Callable[[Optional[Position]], None]
"""Invoked with the destination's location, or None when lookup failed."""


class LocationService(Protocol):
    """Anything that can resolve a node identity to a location."""

    def lookup(self, requester: Node, identity: str, callback: LocationCallback) -> None:
        """Asynchronously resolve ``identity``; may call back immediately."""
        ...


class OracleLocationService:
    """An omniscient location database with optional staleness.

    ``staleness`` > 0 returns where the target was ``staleness`` seconds
    ago, modeling the periodic-update lag of a real location service
    without its message cost.
    """

    def __init__(self, sim: Simulator, staleness: float = 0.0) -> None:
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        self.sim = sim
        self.staleness = staleness
        self._nodes: Dict[str, Node] = {}
        self.lookups = 0

    def register(self, node: Node) -> None:
        self._nodes[node.identity] = node

    def register_all(self, nodes) -> None:
        for node in nodes:
            self.register(node)

    def lookup(self, requester: Node, identity: str, callback: LocationCallback) -> None:
        self.lookups += 1
        target = self._nodes.get(identity)
        if target is None:
            callback(None)
            return
        when = max(0.0, self.sim.now - self.staleness)
        callback(target.mobility.position_at(when))
