"""Location-addressed packets ("geocast" transport).

DLM and ALS messages are routed to a *place* (a server grid cell, a
requester's advertised location) rather than to an identity.  Both
routers implement ``forward_location_packet`` over this shared base:

* GPSR unicasts greedily toward ``target_location``;
* AGFW broadcasts with a committed next-hop pseudonym, like data.

When no neighbor is closer to the target (the packet has arrived "at"
the place, or hit a dead end), the router hands the packet to whichever
service agent registered for its type — the agent decides whether it is
consumable here (e.g. this node is inside the server grid) or lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import LAST_ATTEMPT
from repro.geo.vec import Position
from repro.net.packet import Packet

__all__ = ["LocationAddressed"]


@dataclass
class LocationAddressed(Packet):
    """A packet routed toward a geographic target.

    ``next_pseudonym`` is only meaningful on the AGFW transport (it plays
    the role AGFW's data header field plays); the GPSR transport leaves
    it untouched and uses unicast MAC addressing instead.
    """

    target_location: Position = field(default_factory=lambda: Position(0.0, 0.0))
    ttl: int = 64
    next_pseudonym: bytes = LAST_ATTEMPT

    def header_bytes(self) -> int:  # location + ttl + pseudonym + IP
        return 20 + 8 + 1 + 6
