"""Anonymous geographic ad hoc routing — a full reproduction of
Zhou & Yow, *Anonymizing Geographic Ad Hoc Routing for Preserving
Location Privacy*.

The package bundles the paper's contribution (ANT / AANT / AGFW / ALS)
with everything it runs on: a discrete-event wireless simulator with an
802.11 DCF MAC, random-waypoint mobility, the GPSR baseline, the DLM
location service, a from-scratch crypto stack (RSA, RST ring signatures,
certificates), adversary models, and the experiment harness that
regenerates the paper's figures.

Quick tour
----------
>>> from repro.experiments import ScenarioConfig, run_scenario
>>> result = run_scenario(ScenarioConfig(protocol="agfw", num_nodes=50,
...                                      sim_time=20.0, seed=1))
>>> round(result.delivery_fraction, 2)  # doctest: +SKIP
0.99

Subpackages
-----------
``repro.core``        the paper's protocols (start here)
``repro.routing``     GPSR greedy + perimeter baseline
``repro.location``    oracle / DLM location services, geocast transport
``repro.crypto``      RSA, ring signatures, certificates, cost model
``repro.net``         radio medium, PHY, 802.11 DCF MAC, mobility, nodes
``repro.sim``         event engine, RNG streams, tracing
``repro.traffic``     CBR workloads
``repro.metrics``     delivery/latency/overhead collectors
``repro.adversary``   sniffers, doublet tracking, anonymity metrics
``repro.experiments`` scenario builder and per-figure harnesses
"""

from repro.core import AantConfig, AgfwConfig, AgfwRouter, AlsAgent, AlsConfig
from repro.experiments import ScenarioConfig, ScenarioResult, run_fig1, run_scenario
from repro.routing import GpsrConfig, GpsrRouter

__version__ = "1.0.0"

__all__ = [
    "AantConfig",
    "AgfwConfig",
    "AgfwRouter",
    "AlsAgent",
    "AlsConfig",
    "ScenarioConfig",
    "ScenarioResult",
    "run_fig1",
    "run_scenario",
    "GpsrConfig",
    "GpsrRouter",
    "__version__",
]
