"""Resumable campaign execution on top of ``parallel_map``.

The executor is a cache-filling loop, not a scheduler: it diffs the
spec's point matrix against the store, runs only the missing cells, and
lets each *worker* persist its own record the moment the simulation
finishes.  That single decision buys every durability property the
campaign layer sells:

* **SIGINT-safe** — interrupt the parent at any instant; every point
  whose worker completed is already on disk (atomic write-then-rename),
  so a rerun picks up exactly the missing cells.  No checkpoint file,
  no journal: the store *is* the progress state.
* **jobs-invariant** — a record is a pure function of the point's
  config, so cold/warm, serial/pooled, interrupted/uninterrupted runs
  converge on byte-identical stores (modulo nothing: records exclude
  wall-clock measurements) and therefore byte-identical reports.
* **crash-isolated** — a hard worker death surfaces as
  :class:`~repro.experiments.parallel.WorkerCrashError` naming the
  unfinished points; completed siblings stay durable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.digest import RESULT_SALT, config_digest
from repro.campaign.spec import METRIC_NAMES, CampaignPoint, CampaignSpec
from repro.campaign.store import ResultStore
from repro.experiments.parallel import parallel_map
from repro.experiments.scenario import ScenarioResult, run_scenario

__all__ = ["RunSummary", "point_record", "campaign_progress", "run_campaign"]

RECORD_SCHEMA = 1

_Item = Tuple[str, str, CampaignPoint]  # (digest, store root, point)


@dataclass(frozen=True)
class RunSummary:
    """What one ``run_campaign`` call did."""

    total: int
    cached: int
    executed: int

    @property
    def complete(self) -> bool:
        return self.cached + self.executed == self.total

    def __str__(self) -> str:
        return (
            f"{self.total} points — {self.cached} cache hits, "
            f"{self.executed} executed"
        )


def _finite(value: float) -> Optional[float]:
    """JSON-safe metric value: non-finite (0-goodput overhead) → None."""
    return value if math.isfinite(value) else None


def point_record(
    point: CampaignPoint, digest: str, result: ScenarioResult
) -> Dict[str, object]:
    """The stored form of one completed point.

    Only deterministic fields go in: wall-clock measurements are
    excluded entirely so stores — and the reports derived from them —
    are byte-identical however and whenever the campaign ran.
    """
    latency = result.latency
    metrics: Dict[str, object] = {
        "delivery_fraction": result.delivery_fraction,
        "mean_latency_ms": result.mean_latency * 1000.0,
        "latency_p50_ms": latency.p50 * 1000.0 if latency else None,
        "latency_p95_ms": latency.p95 * 1000.0 if latency else None,
        "sent": result.sent,
        "delivered": result.delivered,
        "collisions": result.collisions,
        "overhead_ratio": _finite(result.overhead_ratio),
    }
    assert set(metrics) == set(METRIC_NAMES)
    return {
        "schema": RECORD_SCHEMA,
        "digest": digest,
        "salt": RESULT_SALT,
        "seed": point.config.seed,
        "sweep": point.sweep,
        "axes": {k: v for k, v in point.axes},
        "seed_index": point.seed_index,
        "metrics": metrics,
        "bytes_by_kind": dict(sorted(result.bytes_by_kind.items())),
        "fault_counters": dict(sorted(result.fault_counters.items())),
    }


def _execute_point(item: _Item) -> str:
    """Worker for one missing cell — top-level so it pickles.

    Persists its own record before returning, so completion implies
    durability even when the parent never collects the result.
    """
    digest, root, point = item
    result = run_scenario(point.config)
    ResultStore(root).put(digest, point_record(point, digest, result))
    return digest


def campaign_progress(
    spec: CampaignSpec, store: ResultStore
) -> Tuple[List[Tuple[CampaignPoint, str]], List[Tuple[CampaignPoint, str]]]:
    """Diff the matrix against the store: (done, missing) point lists,
    each entry ``(point, digest)``, in canonical matrix order."""
    done: List[Tuple[CampaignPoint, str]] = []
    missing: List[Tuple[CampaignPoint, str]] = []
    for point in spec.points():
        digest = config_digest(point.config)
        (done if store.has(digest) else missing).append((point, digest))
    return done, missing


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    jobs: int = 1,
    echo: Optional[Callable[[str], None]] = None,
) -> RunSummary:
    """Fill the store with every missing point of ``spec``'s matrix.

    Completed points are cache hits and never rerun; only the missing
    cells execute, fanned over ``jobs`` processes (each point may
    additionally shard itself — ``parallel_map`` clamps the product).
    Safe to interrupt and re-invoke: the call converges on the complete
    matrix across any number of partial runs.
    """
    say = echo if echo is not None else (lambda _msg: None)
    done, missing = campaign_progress(spec, store)
    say(
        f"campaign {spec.name!r}: {len(done)}/{len(done) + len(missing)} "
        f"points cached, executing {len(missing)}"
    )
    if missing:
        template = spec.points()[0].config
        parallel_map(
            _execute_point,
            [(digest, str(store.root), point) for point, digest in missing],
            jobs=jobs,
            shards=template.shards if template.shard_mode == "on" else 1,
            describe=lambda item: item[2].label,
        )
    return RunSummary(
        total=len(done) + len(missing), cached=len(done), executed=len(missing)
    )
