"""Campaign layer: declarative sweep matrices over a cached result store.

The paper's claims are statements about *sweeps* (delivery/latency
crossovers vs density, robustness vs impairment dose), and ROADMAP item
2 wants millions of runs — so runs are cheap, cached, and resumable:

* :mod:`repro.campaign.spec` — a TOML/JSON file → cartesian product of
  ``ScenarioConfig`` axes with per-point derived seeds;
* :mod:`repro.campaign.digest` — content addressing:
  ``sha256(canonical config + version salt)``;
* :mod:`repro.campaign.store` — one atomic JSON record per completed
  point, ``<root>/<digest[:2]>/<digest>.json``;
* :mod:`repro.campaign.executor` — resumable/interruptible execution on
  ``parallel_map`` (workers persist their own records);
* :mod:`repro.campaign.report` — percentile tables + per-axis crossover
  detection, byte-identical for any execution history.

CLI: ``python -m repro.campaign run|status|report <spec>`` (also mounted
as the ``campaign`` subcommand of ``repro.experiments.runner``).
"""

from repro.campaign.digest import RESULT_SALT, config_digest
from repro.campaign.executor import RunSummary, campaign_progress, point_record, run_campaign
from repro.campaign.report import IncompleteCampaignError, campaign_report
from repro.campaign.spec import (
    METRIC_NAMES,
    CampaignPoint,
    CampaignSpec,
    CampaignSpecError,
    SweepSpec,
    load_spec,
    spec_from_mapping,
)
from repro.campaign.store import ResultStore

__all__ = [
    "RESULT_SALT",
    "config_digest",
    "RunSummary",
    "campaign_progress",
    "point_record",
    "run_campaign",
    "IncompleteCampaignError",
    "campaign_report",
    "METRIC_NAMES",
    "CampaignPoint",
    "CampaignSpec",
    "CampaignSpecError",
    "SweepSpec",
    "load_spec",
    "spec_from_mapping",
    "ResultStore",
]
