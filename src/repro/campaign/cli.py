"""``campaign run | status | report`` — the sweep-campaign CLI.

Reached two ways (same argv either way)::

    python -m repro.campaign             run  examples/campaigns/smoke.toml
    python -m repro.experiments.runner campaign run examples/campaigns/smoke.toml

``run`` is resumable and interruptible: Ctrl-C leaves every completed
point durable in the store and a rerun executes only the missing cells
(exit code 130 signals the interruption).  ``status`` diffs the matrix
against the store without running anything.  ``report`` renders the
deterministic stats/crossover report — byte-identical however the
matrix was filled.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.campaign.executor import campaign_progress, run_campaign
from repro.campaign.report import IncompleteCampaignError, campaign_report
from repro.campaign.spec import CampaignSpec, CampaignSpecError, load_spec
from repro.campaign.store import ResultStore

__all__ = ["main"]


def _default_store(spec_path: pathlib.Path) -> pathlib.Path:
    return spec_path.with_suffix(".store")


def _load(args) -> tuple[CampaignSpec, ResultStore]:
    spec_path = pathlib.Path(args.spec)
    spec = load_spec(spec_path)
    store_root = args.store if args.store else _default_store(spec_path)
    return spec, ResultStore(store_root)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="campaign", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="campaign file (.toml or .json)")
        p.add_argument(
            "--store", type=pathlib.Path, default=None,
            help="result store directory (default: <spec>.store)",
        )

    p_run = sub.add_parser("run", help="execute every missing point of the matrix")
    add_common(p_run)
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for missing points (results identical for any value)",
    )

    p_status = sub.add_parser("status", help="diff the matrix against the store")
    add_common(p_status)

    p_report = sub.add_parser("report", help="render the stats/crossover report")
    add_common(p_report)
    p_report.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="write the report here instead of stdout",
    )

    args = parser.parse_args(argv)
    try:
        spec, store = _load(args)
    except (CampaignSpecError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "run":
        try:
            summary = run_campaign(spec, store, jobs=args.jobs, echo=print)
        except KeyboardInterrupt:
            done, missing = campaign_progress(spec, store)
            print(
                f"\ninterrupted — {len(done)}/{len(done) + len(missing)} points "
                f"durable in {store.root}; rerun to resume"
            )
            return 130
        print(f"campaign {spec.name!r}: {summary} -> {store.root}")
        return 0

    if args.command == "status":
        done, missing = campaign_progress(spec, store)
        total = len(done) + len(missing)
        state = "complete" if not missing else "incomplete"
        print(f"campaign {spec.name!r}: {len(done)}/{total} points ({state})")
        if missing:
            preview = ", ".join(point.label for point, _d in missing[:4])
            more = f" (+{len(missing) - 4} more)" if len(missing) > 4 else ""
            print(f"missing: {preview}{more}")
        return 0 if not missing else 1

    # report
    try:
        text = campaign_report(spec, store)
    except IncompleteCampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
