"""Deterministic stats/report stage over a completed campaign store.

For every sweep the report renders, per metric:

* an aligned **rows x cols table** (cells average the seed replicates —
  the honest value when ``seeds > 1``, the raw value when ``seeds=1``);
* **crossover lines** — for each column pair, the row intervals where
  their ordering flips (the Fig. 1 "GPSR's latency overtakes AGFW past
  112 nodes" class of claim, detected mechanically);
* a **percentile block** — n/mean/p50/p95/min/max per column over all
  cells x seeds (:mod:`repro.metrics.stats`, which rejects NaN/inf).

Everything is a pure function of (spec, stored records): no wall clock,
no filesystem order, no float repr ambiguity — so a report after an
interrupted-and-resumed parallel campaign is byte-identical to one after
a cold sequential run.  That property is pinned by tests and the CI
smoke job.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.digest import config_digest
from repro.campaign.spec import CampaignPoint, CampaignSpec, SweepSpec
from repro.campaign.store import ResultStore
from repro.metrics.stats import percentile

__all__ = ["IncompleteCampaignError", "campaign_report"]

#: Fixed-width cell renderings per metric (default: general format).
_CELL_FORMATS = {
    "delivery_fraction": "{:>12.3f}",
    "mean_latency_ms": "{:>12.2f}",
    "latency_p50_ms": "{:>12.2f}",
    "latency_p95_ms": "{:>12.2f}",
    "overhead_ratio": "{:>12.3f}",
    "sent": "{:>12d}",
    "delivered": "{:>12d}",
    "collisions": "{:>12d}",
}
_EMPTY_CELL = " " * 12


class IncompleteCampaignError(RuntimeError):
    """The store is missing points; run the campaign (again) first."""


def _cell(metric: str, value: Optional[float]) -> str:
    if value is None:
        return _EMPTY_CELL
    fmt = _CELL_FORMATS.get(metric, "{:>12.4g}")
    if fmt.endswith("d}"):
        return fmt.format(int(value))
    return fmt.format(float(value))


def _layout(sweep: SweepSpec) -> Tuple[str, Optional[str], List[str]]:
    """(rows axis, cols axis or None, panel axes) for one sweep."""
    names = sweep.axis_names()
    cols = sweep.cols
    if cols is None and "protocol" in names and len(names) > 1:
        cols = "protocol"
    rows = sweep.rows
    if rows is None:
        rows = next((n for n in names if n != cols), names[0])
    if cols == rows:
        cols = None
    panels = [n for n in names if n not in (rows, cols)]
    return rows, cols, panels


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _crossover_lines(
    metric: str,
    rows_axis: str,
    row_values: Sequence[object],
    col_names: Sequence[str],
    cells: Dict[Tuple[object, str], Optional[float]],
) -> List[str]:
    """Where the ordering of two columns flips along the row axis."""
    lines: List[str] = []
    for a, b in combinations(col_names, 2):
        previous: Optional[Tuple[int, object]] = None
        for row in row_values:
            va, vb = cells.get((row, a)), cells.get((row, b))
            if va is None or vb is None:
                continue
            sign = (va > vb) - (va < vb)
            if sign == 0:
                continue
            if previous is not None and sign != previous[0]:
                lines.append(
                    f"crossover[{metric}]: {a} vs {b} flips between "
                    f"{rows_axis}={previous[1]} and {rows_axis}={row}"
                )
            previous = (sign, row)
    return lines


def _percentile_block(
    metric: str,
    col_names: Sequence[str],
    samples: Dict[str, List[float]],
) -> List[str]:
    lines = [
        f"{metric} percentiles"
        + f"{'n':>8}{'mean':>12}{'p50':>12}{'p95':>12}{'min':>12}{'max':>12}"
    ]
    width = len(f"{metric} percentiles")
    for col in col_names:
        values = samples.get(col, [])
        if not values:
            continue
        lines.append(
            f"{col:<{width}}"
            + f"{len(values):>8d}"
            + _cell(metric, _mean(values))
            + _cell(metric, percentile(values, 50))
            + _cell(metric, percentile(values, 95))
            + _cell(metric, min(values))
            + _cell(metric, max(values))
        )
    return lines


def _sweep_section(
    spec: CampaignSpec,
    sweep: SweepSpec,
    records: Dict[str, Dict[str, object]],
    points: Sequence[Tuple[CampaignPoint, str]],
) -> List[str]:
    rows_axis, cols_axis, panel_axes = _layout(sweep)
    axes = dict(sweep.axes)
    row_values = list(axes[rows_axis])
    col_names = [str(v) for v in axes[cols_axis]] if cols_axis else ["value"]
    panel_combos = list(product(*(axes[name] for name in panel_axes)))

    sweep_points = [(p, d) for p, d in points if p.sweep == sweep.name]
    lines: List[str] = []
    for combo in panel_combos:
        panel_sel = dict(zip(panel_axes, combo))
        title = f"## sweep {sweep.name!r}"
        if panel_sel:
            title += " [" + ", ".join(f"{k}={v}" for k, v in panel_sel.items()) + "]"
        lines.append(title)
        # Cell samples: (row value, column name) -> all replicate values.
        for metric in spec.metrics:
            samples: Dict[Tuple[object, str], List[float]] = {}
            col_samples: Dict[str, List[float]] = {}
            for point, digest in sweep_points:
                coords = dict(point.axes)
                if any(coords[k] != v for k, v in panel_sel.items()):
                    continue
                col = str(coords[cols_axis]) if cols_axis else "value"
                value = records[digest]["metrics"].get(metric)  # type: ignore[union-attr]
                if value is None:
                    continue
                samples.setdefault((coords[rows_axis], col), []).append(float(value))
                col_samples.setdefault(col, []).append(float(value))
            cells: Dict[Tuple[object, str], Optional[float]] = {
                key: _mean(values) for key, values in samples.items()
            }
            lines.append("")
            lines.append(
                f"{metric} ({rows_axis} x {cols_axis or 'value'}, "
                f"mean of {spec.seeds} seed{'s' if spec.seeds != 1 else ''})"
            )
            header = f"{rows_axis:>12}" + "".join(f"{c:>12}" for c in col_names)
            lines.append(header)
            for row in row_values:
                rendered = "".join(
                    _cell(metric, cells.get((row, col))) for col in col_names
                )
                lines.append(f"{str(row):>12}" + rendered)
            lines.extend(
                _crossover_lines(metric, rows_axis, row_values, col_names, cells)
            )
            if len(col_samples.get(col_names[0], [])) > 1:
                lines.append("")
                lines.extend(_percentile_block(metric, col_names, col_samples))
        lines.append("")
    return lines


def campaign_report(spec: CampaignSpec, store: ResultStore) -> str:
    """Render the full campaign report; raises when points are missing."""
    points = [(point, config_digest(point.config)) for point in spec.points()]
    records: Dict[str, Dict[str, object]] = {}
    missing: List[str] = []
    for point, digest in points:
        record = store.get(digest)
        if record is None:
            missing.append(point.label)
        else:
            records[digest] = record
    if missing:
        raise IncompleteCampaignError(
            f"{len(missing)} of {len(points)} points missing from "
            f"{store.root} (first: {missing[0]}); run the campaign first"
        )
    cells = len(points) // spec.seeds if spec.seeds else 0
    lines = [
        f"# campaign {spec.name!r} — {len(points)} points "
        f"({cells} cells x {spec.seeds} seed"
        f"{'s' if spec.seeds != 1 else ''}), master seed {spec.seed}",
        "",
    ]
    for sweep in spec.sweeps:
        lines.extend(_sweep_section(spec, sweep, records, points))
    return "\n".join(lines).rstrip("\n") + "\n"
