"""Content addressing for campaign results.

A result is addressed by ``sha256(canonical config JSON + version
salt)``.  The three ingredients of the key:

* **canonical config digest** — ``ScenarioConfig.canonical_dict()``
  flattens the config (nested fault plans included) to a JSON-stable
  form; ``json.dumps(sort_keys=True, separators=(",", ":"))`` makes the
  byte string independent of field declaration order, dict insertion
  order, and interpreter hash randomization.
* **seed** — already a field of the config, so it participates in the
  canonical form; two replicates of one cell differ only here and hash
  apart.
* **code-relevant version salt** — :data:`RESULT_SALT`.  Bump it when a
  change alters what a stored record *means* (simulation outcomes, the
  record schema, metric definitions); every old cache entry then misses
  and reruns.  Pure performance work (sharding, pooling, vectorization)
  is proven trace-invariant by the ``cross`` modes and does NOT bump the
  salt — that invariance is exactly what makes the cache safe.

The digest is stable across process restarts, ``--jobs`` pool workers,
and machines: it reads no filesystem state, no wall clock, and no
addresses.
"""

from __future__ import annotations

import hashlib
import json

from repro.experiments.scenario import ScenarioConfig

__all__ = ["RESULT_SALT", "config_digest", "canonical_payload"]

#: Version salt folded into every key.  Bump ONLY when stored records
#: change meaning; see the module docstring.
RESULT_SALT = "repro-campaign/records-v1"


def canonical_payload(config: ScenarioConfig, salt: str = RESULT_SALT) -> bytes:
    """The exact byte string that gets hashed (exposed for tests/debugging)."""
    document = {"config": config.canonical_dict(), "salt": salt}
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def config_digest(config: ScenarioConfig, salt: str = RESULT_SALT) -> str:
    """The content address (64 hex chars) of ``config``'s result."""
    return hashlib.sha256(canonical_payload(config, salt)).hexdigest()
