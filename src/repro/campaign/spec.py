"""Declarative scenario-matrix specs: one small file → many runs.

A campaign file (TOML or JSON) names a cartesian product of
:class:`~repro.experiments.scenario.ScenarioConfig` axes::

    name = "fig1-sweep"
    seed = 1           # master seed; every point derives its own
    seeds = 1          # replicates per cell (inner-most axis)
    metrics = ["delivery_fraction", "mean_latency_ms"]

    [base]             # ScenarioConfig overrides shared by every point
    sim_time = 30.0
    traffic_start = [1.0, 3.0]

    [axes]             # each key is swept; values multiply
    protocol = ["gpsr", "agfw", "agfw-noack"]
    num_nodes = [50, 75, 100, 112, 130, 150]

Multi-sweep campaigns replace ``[axes]`` with ``[[sweep]]`` entries,
each carrying its own ``axes`` (and optional ``base`` overrides and
``rows``/``cols`` report layout) — the loss and churn axes of the
robustness sweep are two sweeps of one campaign.

Every key under ``base`` / ``axes`` must be a ``ScenarioConfig`` field
(validated against the dataclass, then again by the config's own
``__post_init__`` when each point is materialized) or one of the two
churn conveniences ``churn_rate`` / ``churn_downtime``, which expand to
a seeded :class:`~repro.faults.plan.FaultPlan` exactly like
``run_fig1(churn=...)`` does.

Determinism contract: the point list — ordering, axis coordinates, and
every derived seed — is a pure function of the spec values.  Seeds
derive from ``seed`` and the point's sorted axis coordinates (not the
campaign name, so two campaigns sharing a cell share its cached
result), with the replicate index appended.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field as dc_field, fields as dc_fields
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.scenario import ScenarioConfig
from repro.faults.plan import FaultPlan
from repro.sim.rng import derive_seed

__all__ = [
    "CampaignSpecError",
    "SweepSpec",
    "CampaignPoint",
    "CampaignSpec",
    "load_spec",
    "spec_from_mapping",
    "METRIC_NAMES",
]

#: Metric keys every stored point record carries (the report stage and
#: a spec's ``metrics`` selection are validated against this set).
METRIC_NAMES: Tuple[str, ...] = (
    "delivery_fraction",
    "mean_latency_ms",
    "latency_p50_ms",
    "latency_p95_ms",
    "sent",
    "delivered",
    "collisions",
    "overhead_ratio",
)

#: Sweepable keys that are not ScenarioConfig fields: expanded into a
#: seeded FaultPlan when the point is materialized.
SPECIAL_KEYS = ("churn_rate", "churn_downtime")

#: ScenarioConfig fields whose TOML/JSON list form must become a tuple.
_TUPLE_FIELDS = frozenset({"traffic_start", "teleports", "shard_boundaries"})

#: Fields a spec may never set directly: the campaign owns seeding
#: (``seed`` derives per point) and plans come from the churn keys.
_FORBIDDEN_FIELDS = frozenset({"seed", "fault_plan"})


class CampaignSpecError(ValueError):
    """The campaign file is malformed or names unknown config fields."""


def _config_field_names() -> frozenset:
    return frozenset(f.name for f in dc_fields(ScenarioConfig))


def _check_keys(keys: Sequence[str], where: str) -> None:
    valid = _config_field_names()
    for key in keys:
        if key in _FORBIDDEN_FIELDS:
            raise CampaignSpecError(
                f"{where}: {key!r} is campaign-managed and cannot be set "
                "directly (seeds derive per point; churn_rate/churn_downtime "
                "expand to fault plans)"
            )
        if key not in valid and key not in SPECIAL_KEYS:
            raise CampaignSpecError(
                f"{where}: {key!r} is not a ScenarioConfig field or one of "
                f"{SPECIAL_KEYS}"
            )


@dataclass(frozen=True)
class SweepSpec:
    """One matrix of the campaign: axes x values, with report layout."""

    name: str
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]
    base: Tuple[Tuple[str, object], ...] = ()
    rows: Optional[str] = None
    cols: Optional[str] = None

    def axis_names(self) -> List[str]:
        return [name for name, _values in self.axes]


@dataclass(frozen=True)
class CampaignPoint:
    """One cell instance of the matrix: axis coordinates + replicate."""

    sweep: str
    axes: Tuple[Tuple[str, object], ...]
    seed_index: int
    config: ScenarioConfig

    @property
    def label(self) -> str:
        coords = " ".join(f"{k}={v}" for k, v in self.axes)
        return f"{self.sweep}: {coords} rep={self.seed_index}"


@dataclass(frozen=True)
class CampaignSpec:
    """A fully validated campaign: sweeps over ScenarioConfig axes."""

    name: str
    seed: int = 1
    seeds: int = 1
    metrics: Tuple[str, ...] = ("delivery_fraction", "mean_latency_ms")
    base: Tuple[Tuple[str, object], ...] = ()
    sweeps: Tuple[SweepSpec, ...] = dc_field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise CampaignSpecError("seeds must be >= 1")
        if not self.sweeps:
            raise CampaignSpecError("campaign defines no axes/sweeps")
        for metric in self.metrics:
            if metric not in METRIC_NAMES:
                raise CampaignSpecError(
                    f"unknown metric {metric!r}; known: {', '.join(METRIC_NAMES)}"
                )
        _check_keys([k for k, _v in self.base], "base")
        seen = set()
        for sweep in self.sweeps:
            if sweep.name in seen:
                raise CampaignSpecError(f"duplicate sweep name {sweep.name!r}")
            seen.add(sweep.name)
            _check_keys([k for k, _v in sweep.base], f"sweep {sweep.name!r} base")
            if not sweep.axes:
                raise CampaignSpecError(f"sweep {sweep.name!r} has no axes")
            for axis, values in sweep.axes:
                _check_keys([axis], f"sweep {sweep.name!r} axes")
                if not values:
                    raise CampaignSpecError(
                        f"sweep {sweep.name!r} axis {axis!r} has no values"
                    )
            for layout in (sweep.rows, sweep.cols):
                if layout is not None and layout not in sweep.axis_names():
                    raise CampaignSpecError(
                        f"sweep {sweep.name!r}: rows/cols {layout!r} is not "
                        "one of its axes"
                    )

    # ------------------------------------------------------------- points
    def points(self) -> List[CampaignPoint]:
        """The full matrix in canonical order: sweeps as declared, axis
        values in declared order (first axis outermost), replicate index
        innermost.  Pure function of the spec."""
        out: List[CampaignPoint] = []
        for sweep in self.sweeps:
            names = sweep.axis_names()
            for combo in product(*(values for _name, values in sweep.axes)):
                coords = tuple(zip(names, combo))
                for rep in range(self.seeds):
                    out.append(
                        CampaignPoint(
                            sweep=sweep.name,
                            axes=coords,
                            seed_index=rep,
                            config=self._build_config(sweep, coords, rep),
                        )
                    )
        return out

    def _build_config(
        self,
        sweep: SweepSpec,
        coords: Tuple[Tuple[str, object], ...],
        seed_index: int,
    ) -> ScenarioConfig:
        merged: Dict[str, object] = {}
        merged.update(dict(self.base))
        merged.update(dict(sweep.base))
        merged.update(dict(coords))
        churn_rate = float(merged.pop("churn_rate", 0.0) or 0.0)
        churn_downtime = merged.pop("churn_downtime", None)
        for key in list(merged):
            if key in _TUPLE_FIELDS and isinstance(merged[key], list):
                merged[key] = tuple(
                    tuple(v) if isinstance(v, list) else v for v in merged[key]
                )
        # The point seed: master seed + sorted axis coordinates +
        # replicate.  Sweep/campaign names stay out so identical cells
        # are identical content — the cache's whole point.
        coord_label = ",".join(f"{k}={v}" for k, v in sorted(coords))
        point_seed = derive_seed(self.seed, f"campaign:{coord_label}:rep{seed_index}")
        merged["seed"] = point_seed
        try:
            config = ScenarioConfig(**merged)
        except (TypeError, ValueError) as exc:
            raise CampaignSpecError(
                f"sweep {sweep.name!r} point ({coord_label}) does not form a "
                f"valid ScenarioConfig: {exc}"
            ) from exc
        if churn_rate > 0.0:
            downtime = (
                float(churn_downtime)
                if churn_downtime is not None
                else max(config.sim_time / 10.0, 0.5)
            )
            plan = FaultPlan.churn(
                range(config.num_nodes),
                sim_time=config.sim_time,
                seed=derive_seed(point_seed, "campaign:churn"),
                rate=churn_rate,
                mean_downtime=downtime,
            )
            config = ScenarioConfig(**{**merged, "fault_plan": plan})
        return config


# ------------------------------------------------------------------ loading
def _items(mapping: Mapping[str, object], where: str) -> Tuple[Tuple[str, object], ...]:
    if not isinstance(mapping, Mapping):
        raise CampaignSpecError(f"{where} must be a table/object")
    return tuple(mapping.items())


def _axes_items(
    mapping: Mapping[str, object], where: str
) -> Tuple[Tuple[str, Tuple[object, ...]], ...]:
    if not isinstance(mapping, Mapping):
        raise CampaignSpecError(f"{where} must be a table/object")
    axes = []
    for axis, values in mapping.items():
        if not isinstance(values, list):
            raise CampaignSpecError(
                f"{where}: axis {axis!r} must map to a list of values"
            )
        axes.append((axis, tuple(values)))
    return tuple(axes)


def spec_from_mapping(data: Mapping[str, object], default_name: str = "campaign") -> CampaignSpec:
    """Build a validated :class:`CampaignSpec` from parsed TOML/JSON."""
    if not isinstance(data, Mapping):
        raise CampaignSpecError("campaign file must contain a table/object")
    known = {"name", "seed", "seeds", "metrics", "base", "axes", "sweep"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise CampaignSpecError(f"unknown top-level keys: {', '.join(unknown)}")
    if "axes" in data and "sweep" in data:
        raise CampaignSpecError("use either top-level [axes] or [[sweep]] tables, not both")
    sweeps: List[SweepSpec] = []
    if "axes" in data:
        sweeps.append(SweepSpec(name="axes", axes=_axes_items(data["axes"], "axes")))
    for index, entry in enumerate(data.get("sweep", ())):
        if not isinstance(entry, Mapping):
            raise CampaignSpecError("each [[sweep]] must be a table")
        extra = sorted(set(entry) - {"name", "base", "axes", "rows", "cols"})
        if extra:
            raise CampaignSpecError(
                f"sweep #{index}: unknown keys: {', '.join(extra)}"
            )
        name = str(entry.get("name", f"sweep{index}"))
        sweeps.append(
            SweepSpec(
                name=name,
                axes=_axes_items(entry.get("axes", {}), f"sweep {name!r} axes"),
                base=_items(entry.get("base", {}), f"sweep {name!r} base"),
                rows=entry.get("rows"),
                cols=entry.get("cols"),
            )
        )
    metrics = data.get("metrics", ["delivery_fraction", "mean_latency_ms"])
    if not isinstance(metrics, list) or not metrics:
        raise CampaignSpecError("metrics must be a non-empty list")
    return CampaignSpec(
        name=str(data.get("name", default_name)),
        seed=int(data.get("seed", 1)),
        seeds=int(data.get("seeds", 1)),
        metrics=tuple(metrics),
        base=_items(data.get("base", {}), "base"),
        sweeps=tuple(sweeps),
    )


def load_spec(path: object) -> CampaignSpec:
    """Parse a campaign file (``.toml`` or ``.json``) into a spec."""
    spec_path = pathlib.Path(path)  # type: ignore[arg-type]
    text = spec_path.read_text(encoding="utf-8")
    if spec_path.suffix == ".json":
        data = json.loads(text)
    elif spec_path.suffix == ".toml":
        import tomllib

        data = tomllib.loads(text)
    else:
        raise CampaignSpecError(
            f"campaign file must be .toml or .json, got {spec_path.name!r}"
        )
    return spec_from_mapping(data, default_name=spec_path.stem)
