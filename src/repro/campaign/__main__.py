"""``python -m repro.campaign`` — see :mod:`repro.campaign.cli`."""

import sys

from repro.campaign.cli import main

sys.exit(main())
