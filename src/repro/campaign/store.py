"""Content-addressed result store with atomic write-then-rename.

Layout: ``<root>/<digest[:2]>/<digest>.json`` — one JSON record per
completed point, fanned over 256 prefix directories so a million-point
campaign never piles one directory high.

Durability contract:

* :meth:`ResultStore.put` writes to a same-directory temp file, flushes
  and fsyncs it, then ``os.replace``\\ s onto the final name.  A reader
  therefore sees either nothing or a complete record — never a torn
  write — and a SIGINT/SIGKILL at any instant loses at most the points
  still in flight.
* Writes are idempotent and race-free across processes: concurrent
  workers computing the same key replace with byte-identical content
  (records are pure functions of the config), so last-writer-wins is
  indistinguishable from first-writer-wins.
* :meth:`digests` enumerates in sorted order (filesystem order is
  machine-dependent — the DET-012 rule class).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional

__all__ = ["ResultStore"]

_RECORD_SUFFIX = ".json"


class ResultStore:
    """A directory of content-addressed campaign point records."""

    def __init__(self, root: object) -> None:
        self.root = pathlib.Path(root)  # type: ignore[arg-type]

    def path_for(self, digest: str) -> pathlib.Path:
        if len(digest) < 3 or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a content digest: {digest!r}")
        return self.root / digest[:2] / f"{digest}{_RECORD_SUFFIX}"

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored record, or ``None`` when the point has not run."""
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            # Atomic replace means this should be impossible; if it
            # happens (manual tampering, disk fault), fail loudly rather
            # than silently recompute against a poisoned store.
            raise ValueError(f"corrupt record {path}: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"corrupt record {path}: not a JSON object")
        return record

    def put(self, digest: str, record: Dict[str, object]) -> pathlib.Path:
        """Persist ``record`` under ``digest`` atomically; returns the path."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            record, sort_keys=True, indent=1, allow_nan=False
        ) + "\n"
        # getpid keeps concurrent writers of the same digest on distinct
        # temp files; it names scratch storage only and never reaches a
        # record (records are pure functions of the config).
        tmp = path.parent / f".{digest}.tmp.{os.getpid()}"  # repro: noqa[DET-014]
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            # Only on a failure path: replace() consumed the temp file.
            if tmp.exists():  # pragma: no cover - error cleanup
                tmp.unlink()
        return path

    def digests(self) -> List[str]:
        """Every stored digest, in sorted (machine-independent) order."""
        if not self.root.exists():
            return []
        return sorted(
            p.stem
            for p in self.root.glob(f"??/*{_RECORD_SUFFIX}")
            if not p.name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.digests())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"
