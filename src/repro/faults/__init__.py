"""Deterministic, seeded fault injection and channel impairment.

Two orthogonal fault axes, both pure functions of the master seed:

* **Channel loss models** (:mod:`repro.faults.loss`) — per-reception
  drop processes applied at the PHY reception boundary: independent
  Bernoulli loss, Gilbert–Elliott bursty two-state loss, and
  distance-dependent loss.  Each receiver owns its own derived RNG
  stream, so loss decisions on one node never perturb another's stream
  and runs stay byte-identical across ``--jobs`` pools.  With
  ``loss_model="none"`` (the default) the hook is absent entirely —
  the reception code path, RNG consumption, and trace output are
  *exactly* the pre-faults behaviour.
* **Node lifecycle faults** (:mod:`repro.faults.plan`) — a
  :class:`~repro.faults.plan.FaultPlan` of crash/recover/pause/churn
  events that takes nodes *genuinely* down (no tx, no rx, beacons stop,
  volatile MAC/router state lost) instead of the old teleport hack, and
  a :class:`~repro.faults.plan.FaultInjector` that applies the plan to
  a built scenario and accounts downtime.

Degradation is observed through
:class:`repro.metrics.faults.FaultMetrics`; the sweep experiment in
:mod:`repro.experiments.faults_sweep` turns the two axes into
Fig-1-style delivery-vs-impairment curves.
"""

from repro.faults.loss import (
    LOSS_MODELS,
    BernoulliLoss,
    DistanceLoss,
    GilbertElliottLoss,
    LossProcess,
    make_loss_process,
    validate_loss_model,
)
from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan

__all__ = [
    "LOSS_MODELS",
    "BernoulliLoss",
    "DistanceLoss",
    "GilbertElliottLoss",
    "LossProcess",
    "make_loss_process",
    "validate_loss_model",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]
