"""Seeded per-reception channel loss models.

The unit-disk medium loses frames only to collisions (hidden terminals,
half-duplex clashes), which are *deterministic* given the traffic
pattern.  Real channels also fade, shadow, and burst-error — the loss
regime the paper's NL-ACK machinery exists to survive.  These processes
model that regime at the PHY **reception boundary**: for every
deliverable reception at a live radio the receiver's loss process is
asked once, in event order, whether the channel ate the frame.

Determinism contract
--------------------
* Each receiver owns its own process with a per-purpose derived RNG
  stream (``rngs.fork("faults").stream(f"loss:{node_id}")``), so one
  node's draws never perturb another's and a run is a pure function of
  the master seed — byte-identical across ``--jobs`` pools and
  scheduler backends.
* The draw happens for *every* deliverable reception, whether or not a
  collision had already corrupted it: the channel state (and the RNG
  stream position) is independent of interference outcomes, keeping the
  process a clean per-reception chain.
* ``"none"`` is represented by the *absence* of a process (``None`` at
  the radio), not a pass-through object: the pre-faults code path runs
  instruction-for-instruction unchanged and traces stay byte-identical
  to the un-impaired simulator.

Models
------
``bernoulli``
    Independent per-reception loss with probability ``rate``.
``gilbert``
    Gilbert–Elliott two-state chain: a *good* state losing
    ``loss_good`` (default 0) and a *bad* state losing ``loss_bad``
    (default 1), with the bad-state dwell time ``burst_length``
    receptions on average.  ``rate`` sets the stationary bad-state
    fraction, so the long-run average loss matches the Bernoulli model
    at the same rate while arriving in bursts.
``distance``
    Loss probability grows with the transmitter distance:
    ``rate * (d / radio_range) ** exponent`` (default exponent 4, the
    two-ray path-loss shape) — edge-of-range receptions are fragile,
    close ones near-lossless.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.metrics.faults import FaultMetrics

__all__ = [
    "LOSS_MODELS",
    "LossProcess",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DistanceLoss",
    "validate_loss_model",
    "make_loss_process",
]

LOSS_MODELS = ("none", "bernoulli", "gilbert", "distance")


def validate_loss_model(model: str) -> None:
    if model not in LOSS_MODELS:
        raise ValueError(f"loss_model must be one of {LOSS_MODELS}, got {model!r}")


class LossProcess:
    """Base class: one receiver's channel-loss state machine.

    Subclasses implement :meth:`_draw`; the base class does the shared
    burst/draw accounting so every model reports through the same
    :class:`~repro.metrics.faults.FaultMetrics` counters.
    """

    def __init__(self, rng: random.Random, metrics: FaultMetrics) -> None:
        self.rng = rng
        self.metrics = metrics
        self._streak = 0  # consecutive drops at this receiver

    def should_drop(self, distance: float) -> bool:
        """Judge one deliverable reception arriving from ``distance`` m."""
        drop = self._draw(distance)
        metrics = self.metrics
        metrics.loss_draws += 1
        if drop:
            metrics.drops_injected += 1
            self._streak += 1
        elif self._streak:
            metrics.bursts_completed += 1
            metrics.burst_drops_total += self._streak
            self._streak = 0
        return drop

    def _draw(self, distance: float) -> bool:
        raise NotImplementedError


class BernoulliLoss(LossProcess):
    """Independent per-reception loss with fixed probability."""

    def __init__(self, rng: random.Random, metrics: FaultMetrics, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"bernoulli rate must be in [0, 1), got {rate}")
        super().__init__(rng, metrics)
        self.rate = rate

    def _draw(self, distance: float) -> bool:
        return self.rng.random() < self.rate


class GilbertElliottLoss(LossProcess):
    """Two-state bursty loss (Gilbert–Elliott).

    Parameterized by the *observable* targets — the long-run loss
    ``rate`` and the mean bad-state dwell ``burst_length`` (receptions)
    — from which the transition probabilities follow:

    * ``p_bad_good = 1 / burst_length`` (geometric dwell),
    * stationary bad fraction ``pi_bad = rate`` (with ``loss_bad = 1``,
      ``loss_good = 0``), hence
      ``p_good_bad = p_bad_good * rate / (1 - rate)``.

    ``loss_good`` / ``loss_bad`` may be overridden through
    ``loss_params`` for partially lossy states.
    """

    def __init__(
        self,
        rng: random.Random,
        metrics: FaultMetrics,
        rate: float,
        burst_length: float = 8.0,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"gilbert rate must be in [0, 1), got {rate}")
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        if not 0.0 <= loss_good <= 1.0 or not 0.0 <= loss_bad <= 1.0:
            raise ValueError("loss_good / loss_bad must be probabilities")
        super().__init__(rng, metrics)
        self.rate = rate
        self.p_bad_good = 1.0 / burst_length
        self.p_good_bad = (
            self.p_bad_good * rate / (1.0 - rate) if rate > 0.0 else 0.0
        )
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False  # chains start in the good state

    def _draw(self, distance: float) -> bool:
        rng = self.rng
        # Advance the chain first, then judge the reception in the new
        # state: a freshly entered bad state eats the reception that
        # found it (the burst starts on arrival, not one frame late).
        if self._bad:
            if rng.random() < self.p_bad_good:
                self._bad = False
        elif rng.random() < self.p_good_bad:
            self._bad = True
        loss = self.loss_bad if self._bad else self.loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return rng.random() < loss


class DistanceLoss(LossProcess):
    """Distance-dependent loss: fragile at the radio-range edge.

    ``p(d) = rate * min(1, d / radio_range) ** exponent`` — at the very
    edge the loss probability equals ``rate``; at half range it is
    ``rate / 2**exponent`` (a sixteenth for the default exponent 4).
    """

    def __init__(
        self,
        rng: random.Random,
        metrics: FaultMetrics,
        rate: float,
        radio_range: float,
        exponent: float = 4.0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"distance rate must be in [0, 1], got {rate}")
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        super().__init__(rng, metrics)
        self.rate = rate
        self.radio_range = radio_range
        self.exponent = exponent

    def _draw(self, distance: float) -> bool:
        fraction = distance / self.radio_range
        if fraction > 1.0:
            fraction = 1.0
        probability = self.rate * fraction**self.exponent
        if probability <= 0.0:
            return False
        return self.rng.random() < probability


def make_loss_process(
    model: str,
    rate: float,
    params: Optional[Dict[str, float]],
    rng: random.Random,
    metrics: FaultMetrics,
    radio_range: float,
) -> Optional[LossProcess]:
    """Build one receiver's loss process (``None`` for ``"none"``).

    ``params`` carries the model-specific extras (``burst_length``,
    ``loss_good``/``loss_bad``, ``exponent``); unknown keys raise so a
    typo cannot silently run the default shape.
    """
    validate_loss_model(model)
    params = dict(params or {})

    def _take(allowed: tuple[str, ...]) -> Dict[str, float]:
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ValueError(
                f"unknown loss_params for model {model!r}: {unknown} "
                f"(allowed: {sorted(allowed)})"
            )
        return params

    if model == "none":
        _take(())
        return None
    if model == "bernoulli":
        _take(())
        return BernoulliLoss(rng, metrics, rate)
    if model == "gilbert":
        kwargs = _take(("burst_length", "loss_good", "loss_bad"))
        return GilbertElliottLoss(rng, metrics, rate, **kwargs)
    # model == "distance" (validate_loss_model guarantees membership)
    kwargs = _take(("exponent",))
    return DistanceLoss(rng, metrics, rate, radio_range=radio_range, **kwargs)
