"""Seeded node-lifecycle fault plans: crash / recover / pause / churn.

A :class:`FaultPlan` is a declarative, immutable, *picklable* schedule of
node up/down transitions.  It is data, not behaviour: plans live in
``ScenarioConfig`` and ship through ``--jobs`` worker pools unchanged, so
the same plan applied to the same seed reproduces the same run anywhere.

Unlike the legacy teleport hack (move a node 100 km away so its links
break), a crash here takes the node *genuinely* down:

* the radio stops delivering and transmitting (``PhyRadio.down``),
* the MAC drops its queue, in-flight op, and every pending timer,
* the router loses volatile state (neighbor tables / ANT entries,
  pending ACK watches) via the ``on_fault_down`` hook,
* beacons stop — neighbors age the node out for real,
* the medium's static fan-out memo and spatial gather cache are
  invalidated so reachability recomputes.

Recovery restarts beaconing from empty state, exactly like a reboot.

Determinism contract
--------------------
* Plans are explicit event lists; :meth:`FaultPlan.churn` *generates*
  one from a seed using per-node derived streams
  (``derive_seed(seed, f"faults.churn:{node_id}")``), so adding or
  removing one node from the churn set never perturbs another node's
  schedule.
* :class:`FaultInjector` schedules the plan's events in a canonical
  sorted order ``(time, node_id, action)`` so engine sequence numbers —
  and therefore every trace byte — are a pure function of the plan.
* With no plan the injector is never constructed: the pre-faults code
  path runs unchanged and traces stay byte-identical to the seed
  behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    ContextManager,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.metrics.faults import FaultMetrics
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.sim.trace import TraceRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector"]

FAULT_ACTIONS = ("crash", "recover")

#: Canonical same-instant ordering: a crash sorts before a recover so a
#: zero-length pause is a well-defined down/up blip, never up/down.
_ACTION_ORDER = {"crash": 0, "recover": 1}


@dataclass(frozen=True)
class FaultEvent:
    """One lifecycle transition: take ``node_id`` down or bring it back."""

    time: float
    node_id: int
    action: str  # "crash" | "recover"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.time}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"fault action must be one of {FAULT_ACTIONS}, got {self.action!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultEvent` transitions.

    Builders are chainable and return *new* plans (the dataclass is
    frozen), so a scenario literal reads declaratively::

        plan = (FaultPlan()
                .crash(2, at=1.0)
                .recover(2, at=3.0)
                .pause(5, at=2.0, duration=0.5))

    or is generated wholesale by :meth:`churn`.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------- builders
    def crash(self, node_id: int, at: float) -> "FaultPlan":
        """Take ``node_id`` down at time ``at`` (down until recovered)."""
        return FaultPlan(self.events + (FaultEvent(at, node_id, "crash"),))

    def recover(self, node_id: int, at: float) -> "FaultPlan":
        """Bring ``node_id`` back up at time ``at`` (reboot: empty state)."""
        return FaultPlan(self.events + (FaultEvent(at, node_id, "recover"),))

    def pause(self, node_id: int, at: float, duration: float) -> "FaultPlan":
        """Down at ``at``, back up ``duration`` seconds later."""
        if duration < 0:
            raise ValueError(f"pause duration must be >= 0, got {duration}")
        return self.crash(node_id, at).recover(node_id, at + duration)

    @classmethod
    def churn(
        cls,
        node_ids: Iterable[int],
        sim_time: float,
        seed: int,
        rate: float = 1.0,
        mean_downtime: float = 1.0,
        start: float = 0.0,
    ) -> "FaultPlan":
        """Generate a seeded random churn schedule.

        Each node independently alternates exponential up-times (mean
        ``sim_time / rate`` — so ``rate`` is the expected number of
        crashes per node over the run) and exponential down-times (mean
        ``mean_downtime`` seconds), starting up at ``start``.  A node
        whose recovery would land past ``sim_time`` simply stays down.

        Per-node derived RNG streams keep each node's schedule a pure
        function of ``(seed, node_id)``: churn sets compose without
        perturbing one another.
        """
        if sim_time <= 0:
            raise ValueError(f"sim_time must be positive, got {sim_time}")
        if rate < 0:
            raise ValueError(f"churn rate must be >= 0, got {rate}")
        if mean_downtime <= 0:
            raise ValueError(f"mean_downtime must be positive, got {mean_downtime}")
        events: List[FaultEvent] = []
        if rate == 0:
            return cls(tuple(events))
        mean_uptime = sim_time / rate
        for node_id in sorted(set(node_ids)):
            rng = random.Random(derive_seed(seed, f"faults.churn:{node_id}"))
            t = start + rng.expovariate(1.0 / mean_uptime)
            while t < sim_time:
                events.append(FaultEvent(t, node_id, "crash"))
                up_at = t + rng.expovariate(1.0 / mean_downtime)
                if up_at >= sim_time:
                    break  # stays down through the end of the run
                events.append(FaultEvent(up_at, node_id, "recover"))
                t = up_at + rng.expovariate(1.0 / mean_uptime)
        return cls(tuple(events))

    # -------------------------------------------------------------- queries
    def sorted_events(self) -> Tuple[FaultEvent, ...]:
        """Events in canonical apply order ``(time, node_id, action)``."""
        return tuple(
            sorted(
                self.events,
                key=lambda e: (e.time, e.node_id, _ACTION_ORDER[e.action]),
            )
        )

    def node_ids(self) -> Tuple[int, ...]:
        """Sorted ids of every node the plan touches."""
        return tuple(sorted({e.node_id for e in self.events}))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a built scenario and keeps score.

    The injector owns the downtime ledger: per-node down-since stamps,
    total node-seconds of downtime, and — via a ``app.recv`` trace
    subscription — the count of end-to-end deliveries that completed
    while at least one node was down (deliveries *despite* faults).

    Call :meth:`arm` once after construction (schedules every plan event
    against the simulator) and :meth:`finalize` once after the run
    (closes still-open downtime intervals at the final clock).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence["Node"],
        plan: FaultPlan,
        metrics: FaultMetrics,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.metrics = metrics
        self.tracer = tracer
        self._nodes: Dict[int, "Node"] = {n.node_id: n for n in nodes}
        unknown = sorted(set(plan.node_ids()) - set(self._nodes))
        if unknown:
            raise ValueError(f"fault plan targets unknown node ids: {unknown}")
        self._down_since: Dict[int, float] = {}
        self._armed = False
        self._finalized = False
        #: Sharded execution hook: wraps each event application in a
        #: context derived from the target node id.  The shard worker
        #: installs a suppressor here so a non-owned node's crash/recover
        #: still runs (identical metrics, RNG draws, and trace keys) but
        #: any events it schedules — e.g. the post-reboot beacon restart —
        #: are born dead, keeping dormant replicas dormant.
        self.scope_guard: Optional[Callable[[int], ContextManager[None]]] = None
        if tracer is not None:
            tracer.subscribe("app.recv", self._on_delivery)

    # ------------------------------------------------------------ lifecycle
    def arm(self) -> None:
        """Schedule every plan event (idempotent; canonical order)."""
        if self._armed:
            return
        self._armed = True
        for event in self.plan.sorted_events():
            self.sim.schedule_at(
                event.time,
                (lambda e=event: self._apply(e)),
                name=f"fault.{event.action}",
                actor=event.node_id,
            )

    def _apply(self, event: FaultEvent) -> None:
        if self.scope_guard is not None:
            with self.scope_guard(event.node_id):
                self._apply_inner(event)
            return
        self._apply_inner(event)

    def _apply_inner(self, event: FaultEvent) -> None:
        node = self._nodes[event.node_id]
        now = self.sim.now
        if event.action == "crash":
            if not node.fail():
                return  # already down: idempotent
            self.metrics.crashes += 1
            self._down_since[event.node_id] = now
            if self.tracer is not None:
                self.tracer.emit(now, "fault.crash", node=event.node_id)
        else:
            if not node.recover():
                return  # already up: idempotent
            self.metrics.recoveries += 1
            since = self._down_since.pop(event.node_id, now)
            self.metrics.downtime_s += now - since
            if self.tracer is not None:
                self.tracer.emit(now, "fault.recover", node=event.node_id)

    def finalize(self, now: float) -> None:
        """Close downtime intervals still open at the end of the run."""
        if self._finalized:
            return
        self._finalized = True
        for node_id in sorted(self._down_since):
            self.metrics.downtime_s += now - self._down_since[node_id]
        self._down_since.clear()

    # -------------------------------------------------------------- queries
    @property
    def any_down(self) -> bool:
        """True while at least one plan-managed node is down."""
        return bool(self._down_since)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down_since

    # ------------------------------------------------------------ observers
    def _on_delivery(self, record: TraceRecord) -> None:
        if self._down_since:
            self.metrics.deliveries_during_downtime += 1
