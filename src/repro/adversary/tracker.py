"""Identity–location linking analysis.

The paper's threat is the *doublet*: "the location and identity is a
basic doublet ... it is also the explicit source of threats to location
privacy."  :class:`DoubletTracker` replays a sniffer's observations and
extracts every doublet that is readable in cleartext:

* GPSR beacons: the sender's ``(identity, location)`` — one doublet per
  beacon per listener.
* GPSR data: the destination's doublet from the header.
* DLM updates/requests/replies: updater and requester doublets.
* ANT hellos / AGFW data: **nothing** — pseudonym–location pairs only,
  which is the paper's claim; :class:`RouteTracer` shows what *does*
  remain observable (the paper concedes route traceability).

``tracking_coverage`` quantifies the end effect: for a victim identity,
the fraction of the run during which the adversary holds a recent
(fresher than ``horizon``) location fix.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adversary.sniffer import Observation
from repro.geo.vec import Position

__all__ = ["Doublet", "DoubletTracker", "RouteTracer"]


@dataclass(frozen=True)
class Doublet:
    """One (identity, location, time) fix the adversary extracted."""

    time: float
    identity: str
    location: Tuple[float, float]
    source: str  # packet kind it was read from


class DoubletTracker:
    """Extracts identity–location doublets from observations."""

    def __init__(self) -> None:
        self.doublets: List[Doublet] = []
        self.pseudonym_sightings = 0
        self.opaque_payloads = 0

    def ingest(self, observations: Iterable[Observation]) -> None:
        for obs in observations:
            self._extract(obs)

    def _extract(self, obs: Observation) -> None:
        wire = obs.wire
        kind = obs.packet_kind
        if kind == "gpsr.beacon":
            self._add(obs.time, wire["identity"], wire["location"], kind)
        elif kind == "gpsr.data":
            self._add(obs.time, wire["dest_identity"], wire["dest_location"], kind)
            # The source identity is exposed too; its location is only
            # approximately known (the transmitter position of hop one),
            # so we count it only when the sniffer localized the sender.
        elif kind == "dlm.update":
            self._add(obs.time, wire["identity"], wire["location"], kind)
        elif kind == "dlm.request":
            self._add(
                obs.time, wire["requester_identity"], wire["requester_location"], kind
            )
        elif kind == "dlm.reply":
            self._add(obs.time, wire["target_identity"], wire["target_location"], kind)
        elif kind in ("agfw.hello", "agfw.data", "agfw.ack",
                      "als.update", "als.request", "als.reply"):
            # Anonymized traffic: pseudonyms and opaque ciphertexts only.
            if "pseudonym" in wire:
                self.pseudonym_sightings += 1
            else:
                self.opaque_payloads += 1

    def _add(self, time: float, identity: str, location, source: str) -> None:
        self.doublets.append(Doublet(time, identity, tuple(location), source))

    # ------------------------------------------------------------- analysis
    def doublets_for(self, identity: str) -> List[Doublet]:
        return [d for d in self.doublets if d.identity == identity]

    def exposed_identities(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for doublet in self.doublets:
            counts[doublet.identity] += 1
        return dict(counts)

    def tracking_coverage(
        self,
        identity: str,
        duration: float,
        horizon: float = 5.0,
        start: float = 0.0,
    ) -> float:
        """Fraction of [start, start+duration] where the adversary holds a
        fix of ``identity`` younger than ``horizon`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        times = sorted(d.time for d in self.doublets_for(identity))
        if not times:
            return 0.0
        end = start + duration
        # Each fix covers [t, t + horizon]; merge overlaps with a sweep.
        intervals = [(max(t, start), min(t + horizon, end)) for t in times]
        intervals = [(lo, hi) for lo, hi in intervals if hi > lo]
        intervals.sort()
        covered = 0.0
        cur_lo, cur_hi = None, None
        for lo, hi in intervals:
            if cur_hi is None or lo > cur_hi:
                if cur_hi is not None:
                    covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        if cur_hi is not None:
            covered += cur_hi - cur_lo
        return covered / duration


class RouteTracer:
    """What stays observable under AGFW: the *route*, not the parties.

    The paper: "our protocol is not designed to be route untraceable —
    the eavesdropper can easily correlate the last hop to the next hop
    transmissions along the same route by checking if packets have the
    same trapdoor information."  We group AGFW data sightings by their
    opaque trapdoor reference... which is not in the wire view, so the
    correlator uses (dest_location, payload size) — the actual linkable
    invariants — exactly as a real sniffer would.
    """

    def __init__(self) -> None:
        self._routes: Dict[Tuple, List[Observation]] = defaultdict(list)

    def ingest(self, observations: Iterable[Observation]) -> None:
        for obs in observations:
            if obs.packet_kind != "agfw.data":
                continue
            key = (obs.wire.get("dest_location"), obs.wire.get("trapdoor", {}).get("opaque_bytes"))
            self._routes[key].append(obs)

    def routes(self) -> List[List[Position]]:
        """Reconstructed per-flow transmitter tracks (localizing sniffer)."""
        out: List[List[Position]] = []
        for observations in self._routes.values():
            track = [
                o.tx_position
                for o in sorted(observations, key=lambda o: o.time)
                if o.tx_position is not None
            ]
            if track:
                out.append(track)
        return out

    def identities_learned(self) -> int:
        """Always zero: nothing in an AGFW route names a party."""
        return 0
