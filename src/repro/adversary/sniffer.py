"""Passive eavesdroppers.

A sniffer is a radio at a fixed (or mobile) position that records every
frame transmitted within its listening range.  It is *honest*: it only
reads what is physically on the air — each packet's ``wire_view()``
(cleartext header fields) plus the physical-layer observables every
receiver gets for free (time of transmission, and the fact that the
transmitter is within listening range).  Sim-only bookkeeping fields
(trapdoor plaintexts, modeled-crypto seals) are never touched.

``GlobalSniffer`` models the paper's strongest passive adversary — a
coalition covering the whole field ("location sniffers are freely able
to exchange their observation data").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.geo.vec import Position
from repro.sim.trace import TraceRecord, Tracer

__all__ = ["Observation", "Sniffer", "GlobalSniffer"]


@dataclass(frozen=True)
class Observation:
    """One overheard frame."""

    time: float
    frame_kind: str
    packet_kind: Optional[str]
    wire: Dict[str, Any]
    tx_position: Optional[Position]
    """Where the transmitter was.  Only populated when ``localize`` is on,
    modeling an adversary that can direction-find / multilaterate the
    transmitter — the paper's threat (1): 'observe the interested node's
    location if it happens to be inside the radio range'."""


class Sniffer:
    """A single passive listener at a fixed position."""

    def __init__(
        self,
        tracer: Tracer,
        position: Position,
        listen_range: float = 250.0,
        localize: bool = True,
    ) -> None:
        self.position = position
        self.listen_range = listen_range
        self.localize = localize
        self.observations: List[Observation] = []
        tracer.subscribe("phy.tx", self._on_tx)

    def _in_range(self, tx_pos: Position) -> bool:
        return self.position.distance2_to(tx_pos) <= self.listen_range**2

    def _on_tx(self, record: TraceRecord) -> None:
        tx_pos = Position(*record.data["pos"])
        if not self._in_range(tx_pos):
            return
        packet = record.data.get("packet_obj")
        wire: Dict[str, Any] = {}
        packet_kind = None
        if packet is not None:
            packet_kind = packet.kind
            view = getattr(packet, "wire_view", None)
            wire = view() if callable(view) else {}
        self.observations.append(
            Observation(
                time=record.time,
                frame_kind=record.data["frame_kind"],
                packet_kind=packet_kind,
                wire=wire,
                tx_position=tx_pos if self.localize else None,
            )
        )

    def __len__(self) -> int:
        return len(self.observations)


class GlobalSniffer(Sniffer):
    """A field-wide coalition of sniffers (sees every transmission)."""

    def __init__(self, tracer: Tracer, localize: bool = True) -> None:
        super().__init__(
            tracer, Position(0.0, 0.0), listen_range=float("inf"), localize=localize
        )

    def _in_range(self, tx_pos: Position) -> bool:
        return True
