"""Anonymity quantification.

Tools to measure what the protocol claims:

* **(k+1)-anonymity** of the authenticated ANT — "any neighbor in the
  table is indistinguishable from other k legitimate users."  For each
  observed ring-signed hello the anonymity set is its ring; the metric
  aggregates set sizes and the entropy of the adversary's posterior
  (uniform over the ring, since RST signatures are signer-ambiguous).
* **Sender entropy** of plain ANT hellos: without authentication the
  anonymity set is the whole legitimate population (any node could have
  minted any pseudonym), limited only by physical locality — a listener
  knows the sender is within radio range, so the honest measure is the
  number of nodes physically near the transmitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.adversary.sniffer import Observation
from repro.geo.vec import Position

__all__ = [
    "anonymity_entropy",
    "RingAnonymityReport",
    "ring_anonymity",
    "locality_anonymity_sets",
]


def anonymity_entropy(set_size: int) -> float:
    """Entropy (bits) of a uniform anonymity set of the given size."""
    if set_size < 1:
        raise ValueError("anonymity set must have at least one member")
    return math.log2(set_size)


@dataclass(frozen=True)
class RingAnonymityReport:
    """Aggregate over all observed ring-signed hellos."""

    hellos: int
    min_set_size: int
    mean_set_size: float
    mean_entropy_bits: float

    @property
    def k_anonymity(self) -> int:
        """The k in (k+1)-anonymity actually achieved (worst case)."""
        return self.min_set_size - 1


def ring_anonymity(observations: Iterable[Observation]) -> RingAnonymityReport:
    """Measure the anonymity sets of ring-signed hellos in a capture."""
    sizes: List[int] = []
    for obs in observations:
        if obs.packet_kind != "agfw.hello":
            continue
        auth = obs.wire.get("auth")
        if not auth:
            continue
        sizes.append(int(auth["ring_size"]))
    if not sizes:
        return RingAnonymityReport(0, 0, 0.0, 0.0)
    return RingAnonymityReport(
        hellos=len(sizes),
        min_set_size=min(sizes),
        mean_set_size=sum(sizes) / len(sizes),
        mean_entropy_bits=sum(anonymity_entropy(s) for s in sizes) / len(sizes),
    )


def locality_anonymity_sets(
    tx_positions: Sequence[Position],
    node_positions: Sequence[Position],
    radio_range: float = 250.0,
) -> List[int]:
    """For each observed transmission, how many nodes could have sent it.

    Unauthenticated pseudonyms give population-wide anonymity *logically*,
    but physics narrows it: the sender is within radio range of the
    observed transmission point.  Returns one candidate-set size per
    transmission (always >= 1: the true sender is a candidate).
    """
    limit = radio_range * radio_range
    sizes: List[int] = []
    for tx in tx_positions:
        count = sum(1 for p in node_positions if p.distance2_to(tx) <= limit)
        sizes.append(max(count, 1))
    return sizes
