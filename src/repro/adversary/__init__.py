"""Adversary models: passive sniffers, doublet tracking, anonymity metrics."""

from repro.adversary.anonymity import (
    RingAnonymityReport,
    anonymity_entropy,
    locality_anonymity_sets,
    ring_anonymity,
)
from repro.adversary.sniffer import GlobalSniffer, Observation, Sniffer
from repro.adversary.tracker import Doublet, DoubletTracker, RouteTracer

__all__ = [
    "RingAnonymityReport",
    "anonymity_entropy",
    "locality_anonymity_sets",
    "ring_anonymity",
    "GlobalSniffer",
    "Observation",
    "Sniffer",
    "Doublet",
    "DoubletTracker",
    "RouteTracer",
]
