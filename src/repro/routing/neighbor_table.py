"""The plain (non-anonymous) neighbor table used by GPSR.

Each beacon received inserts/refreshes an entry keyed by the sender's
*identity*; entries expire after a timeout (GPSR uses 4.5 beacon
intervals).  This is exactly the table the paper's threat model attacks:
every entry is an (identity, location) doublet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geo.vec import Position
from repro.net.addresses import MacAddress

__all__ = ["NeighborEntry", "NeighborTable"]


@dataclass
class NeighborEntry:
    """One known neighbor."""

    identity: str
    mac: MacAddress
    position: Position
    timestamp: float

    def age(self, now: float) -> float:
        return now - self.timestamp


class NeighborTable:
    """Identity-keyed neighbor table with expiry."""

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self._entries: Dict[str, NeighborEntry] = {}

    def update(self, identity: str, mac: MacAddress, position: Position, now: float) -> None:
        """Insert or refresh a neighbor from a received beacon."""
        self._entries[identity] = NeighborEntry(identity, mac, position, now)

    def remove(self, identity: str) -> None:
        """Drop a neighbor (e.g. after a MAC-level delivery failure)."""
        self._entries.pop(identity, None)

    def purge(self, now: float) -> int:
        """Remove expired entries; returns how many were dropped."""
        expired = [k for k, e in self._entries.items() if e.age(now) > self.timeout]
        for key in expired:
            del self._entries[key]
        return len(expired)

    def clear(self) -> None:
        """Drop every entry (node crash: volatile state does not survive)."""
        self._entries.clear()

    def get(self, identity: str) -> Optional[NeighborEntry]:
        return self._entries.get(identity)

    def entries(self, now: Optional[float] = None) -> List[NeighborEntry]:
        """Live entries (filtering expired ones when ``now`` is given)."""
        if now is None:
            return list(self._entries.values())
        return [e for e in self._entries.values() if e.age(now) <= self.timeout]

    def best_towards(
        self, target: Position, own_position: Position, now: float
    ) -> Optional[NeighborEntry]:
        """Greedy choice: the neighbor strictly closer to ``target`` than we are.

        Returns None at a local maximum (the greedy dead end the paper's
        recovery discussion is about).
        """
        own_d2 = own_position.distance2_to(target)
        best: Optional[NeighborEntry] = None
        best_d2 = own_d2
        for entry in self.entries(now):
            d2 = entry.position.distance2_to(target)
            if d2 < best_d2:
                best = entry
                best_d2 = d2
        return best

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identity: str) -> bool:
        return identity in self._entries
