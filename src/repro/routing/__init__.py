"""Baseline geographic routing: GPSR (greedy + perimeter recovery)."""

from repro.routing.base import BaseRouter, RouterStats, RoutingConfig
from repro.routing.gpsr import GpsrBeacon, GpsrConfig, GpsrData, GpsrRouter
from repro.routing.neighbor_table import NeighborEntry, NeighborTable
from repro.routing.planar import (
    crossing_point,
    gabriel_neighbors,
    right_hand_neighbor,
    rng_neighbors,
    segments_cross,
)

__all__ = [
    "BaseRouter",
    "RouterStats",
    "RoutingConfig",
    "GpsrBeacon",
    "GpsrConfig",
    "GpsrData",
    "GpsrRouter",
    "NeighborEntry",
    "NeighborTable",
    "crossing_point",
    "gabriel_neighbors",
    "right_hand_neighbor",
    "rng_neighbors",
    "segments_cross",
]
