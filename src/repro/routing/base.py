"""Shared routing-agent machinery.

Both the GPSR baseline and the paper's AGFW follow the same skeleton:
periodic jittered beaconing, a neighbor structure with expiry, greedy
forwarding decisions, and application send via a location service.
:class:`BaseRouter` implements the skeleton; protocol specifics live in
subclasses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.geo.vec import Position
from repro.location.service import LocationService
from repro.net.mac.frames import MacFrame
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.trace import Tracer

__all__ = ["RouterStats", "RoutingConfig", "BaseRouter"]


@dataclass
class RoutingConfig:
    """Parameters shared by all geographic routers."""

    beacon_interval: float = 1.0
    beacon_jitter: float = 0.5  # actual interval ~ U[(1-j)B, (1+j)B]
    neighbor_timeout_factor: float = 4.5  # GPSR's default
    data_ttl: int = 64  # max hops before a packet is discarded
    radio_range: float = 250.0  # last-hop-region test + greedy sanity

    @property
    def neighbor_timeout(self) -> float:
        return self.neighbor_timeout_factor * self.beacon_interval


@dataclass
class RouterStats:
    """Per-node routing counters (summed by the harness)."""

    originated: int = 0
    delivered: int = 0
    forwarded: int = 0
    beacons_sent: int = 0
    drops_deadend: int = 0
    drops_ttl: int = 0
    drops_mac: int = 0
    drops_no_location: int = 0
    drops_auth: int = 0
    duplicates: int = 0


class BaseRouter:
    """Skeleton of a beaconing geographic router."""

    def __init__(
        self,
        node: Node,
        location_service: LocationService,
        config: Optional[RoutingConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.location_service = location_service
        self.config = config or RoutingConfig()
        self.tracer = tracer if tracer is not None else node.tracer
        self.stats = RouterStats()
        self._rng: random.Random = node.rng("router")
        self._started = False
        self._beacon_timer = None
        #: Bumped on every crash; delayed closures (crypto delays, signing)
        #: capture the epoch at schedule time and discard themselves when a
        #: crash intervened — state computed before the crash must not leak
        #: into the rebooted router.
        self._fault_epoch = 0
        #: Extra packet handlers (location-service agents register here).
        self.packet_handlers: dict[type, object] = {}

    def register_handler(self, packet_type: type, handler) -> None:
        """Route packets of ``packet_type`` to a service agent's handler."""
        self.packet_handlers[packet_type] = handler

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin beaconing; idempotent."""
        if self._started:
            return
        self._started = True
        # First beacon at a uniform offset so the network's beacons desynchronize.
        first = self._rng.uniform(0.0, self.config.beacon_interval)
        # actor tag: start() may run outside any event (the build phase),
        # where the sharded runtime cannot infer whose event this is.
        self._beacon_timer = self.sim.schedule(
            first, self._beacon_tick, name="router.beacon", actor=self.node.node_id
        )

    def _beacon_tick(self) -> None:
        self.send_beacon()
        self.stats.beacons_sent += 1
        jitter = self.config.beacon_jitter
        interval = self.config.beacon_interval * self._rng.uniform(1 - jitter, 1 + jitter)
        self._beacon_timer = self.sim.schedule(interval, self._beacon_tick, name="router.beacon")

    # ------------------------------------------------------ lifecycle faults
    def on_fault_down(self) -> None:
        """Node crashed: stop beaconing and forget volatile routing state.

        The base implementation stops the beacon clock and bumps the
        fault epoch (see ``_fault_epoch``); subclasses clear their
        neighbor structures and reliability machinery on top.
        """
        self._fault_epoch += 1
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()
            self._beacon_timer = None
        self._started = False

    def on_fault_up(self) -> None:
        """Node rebooted: restart beaconing from a fresh offset.

        The first post-reboot beacon lands at a new uniform offset — a
        rebooting station re-desynchronizes like a freshly started one.
        """
        self.start()

    # --------------------------------------------------------------- hooks
    def send_beacon(self) -> None:
        """Broadcast one hello/beacon (protocol specific)."""
        raise NotImplementedError

    def on_packet(self, packet: Packet, frame: MacFrame) -> None:
        """MAC upcall (protocol specific)."""
        raise NotImplementedError

    def send_data(self, dest_identity: str, payload_bytes: int) -> Optional[int]:
        """Originate application data toward ``dest_identity``.

        Resolves the destination location through the location service and
        hands off to :meth:`_originate`.  Returns the packet uid, or None
        when the location lookup failed synchronously.
        """
        result: dict[str, Optional[int]] = {"uid": None}

        def _on_location(loc: Optional[Position]) -> None:
            if loc is None:
                self.stats.drops_no_location += 1
                self._trace("route.drop", reason="no_location", dest=dest_identity)
                return
            result["uid"] = self._originate(dest_identity, loc, payload_bytes)

        self.location_service.lookup(self.node, dest_identity, _on_location)
        return result["uid"]

    def _originate(
        self, dest_identity: str, dest_location: Position, payload_bytes: int
    ) -> Optional[int]:
        """Build and forward the first hop of a data packet (protocol specific)."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    @property
    def position(self) -> Position:
        return self.node.position

    def in_last_hop_region(self, dest_location: Position) -> bool:
        """Paper Sec 3.2: is the destination location inside our radio range?"""
        return self.position.distance_to(dest_location) <= self.config.radio_range

    def _trace(self, category: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, category, node=self.node.node_id, **data)

    def _trace_app_send(self, uid: int, dest: str, payload_bytes: int) -> None:
        self._trace("app.send", packet_uid=uid, dest=dest, payload=payload_bytes)
        self.stats.originated += 1

    def _trace_app_recv(self, uid: int) -> None:
        self._trace("app.recv", packet_uid=uid)
        self.stats.delivered += 1
