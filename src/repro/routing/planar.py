"""Planarization and face-routing geometry for perimeter mode.

GPSR's perimeter mode routes on a planar subgraph of the radio graph.
This module provides the Gabriel-graph (GG) and relative-neighborhood-
graph (RNG) edge filters plus the angular and segment-intersection
helpers the right-hand rule needs.  The paper lists perimeter recovery
as the natural extension of its greedy-only scheme ("recovery strategies
like perimeter forwarding could be applied ... our future work").
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.geo.vec import Position, midpoint

__all__ = [
    "gabriel_neighbors",
    "rng_neighbors",
    "right_hand_neighbor",
    "segments_cross",
    "crossing_point",
]

T = TypeVar("T")
Neighbor = Tuple[T, Position]


def gabriel_neighbors(
    own_position: Position, neighbors: Sequence[Neighbor]
) -> List[Neighbor]:
    """Gabriel-graph filter: keep edge (u,v) iff the circle with diameter
    uv contains no witness w, i.e. no w with d²(m,w) < d²(u,v)/4."""
    kept: List[Neighbor] = []
    for key, pos in neighbors:
        m = midpoint(own_position, pos)
        radius2 = own_position.distance2_to(pos) / 4.0
        blocked = any(
            other_key != key and m.distance2_to(other_pos) < radius2
            for other_key, other_pos in neighbors
        )
        if not blocked:
            kept.append((key, pos))
    return kept


def rng_neighbors(
    own_position: Position, neighbors: Sequence[Neighbor]
) -> List[Neighbor]:
    """Relative-neighborhood-graph filter: keep (u,v) iff no witness w is
    closer to *both* endpoints than they are to each other."""
    kept: List[Neighbor] = []
    for key, pos in neighbors:
        d2 = own_position.distance2_to(pos)
        blocked = any(
            other_key != key
            and own_position.distance2_to(other_pos) < d2
            and pos.distance2_to(other_pos) < d2
            for other_key, other_pos in neighbors
        )
        if not blocked:
            kept.append((key, pos))
    return kept


def right_hand_neighbor(
    own_position: Position,
    reference: Position,
    candidates: Sequence[Neighbor],
) -> Optional[Neighbor]:
    """The right-hand rule: first candidate counterclockwise from the
    reference direction (own→reference), sweeping about ``own_position``.

    Arriving from node p, passing ``reference=p`` selects the next edge of
    the current face.  Returns None when there are no candidates.
    """
    if not candidates:
        return None
    ref_angle = math.atan2(reference.y - own_position.y, reference.x - own_position.x)

    def sweep(item: Neighbor) -> float:
        _, pos = item
        angle = math.atan2(pos.y - own_position.y, pos.x - own_position.x)
        delta = (angle - ref_angle) % (2 * math.pi)
        # A candidate exactly along the reference direction (delta==0) is the
        # *last* choice (full sweep), not the first — that is what lets the
        # rule bounce back along a dangling edge only when forced to.
        return delta if delta > 1e-12 else 2 * math.pi
    return min(candidates, key=sweep)


def _orient(a: Position, b: Position, c: Position) -> float:
    """Twice the signed area of triangle abc (>0 = counterclockwise)."""
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def segments_cross(a: Position, b: Position, c: Position, d: Position) -> bool:
    """True when open segments ab and cd properly intersect."""
    o1 = _orient(a, b, c)
    o2 = _orient(a, b, d)
    o3 = _orient(c, d, a)
    o4 = _orient(c, d, b)
    return (o1 * o2 < 0) and (o3 * o4 < 0)


def crossing_point(
    a: Position, b: Position, c: Position, d: Position
) -> Optional[Position]:
    """Intersection point of properly crossing segments ab and cd.

    Computed from the same orientation predicates as :func:`segments_cross`
    so the two functions can never disagree on near-degenerate inputs:
    when the segments properly cross, ``t = o3 / (o3 - o4)`` is the
    intersection parameter along ab, and ``o3 - o4`` is nonzero because
    o3 and o4 have strictly opposite signs.
    """
    o1 = _orient(a, b, c)
    o2 = _orient(a, b, d)
    o3 = _orient(c, d, a)
    o4 = _orient(c, d, b)
    if not ((o1 * o2 < 0) and (o3 * o4 < 0)):
        return None
    t = o3 / (o3 - o4)
    return Position(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
