"""GPSR (Karp & Kung, MobiCom 2000) — the paper's baseline.

Greedy forwarding over a beaconed neighbor table, with optional
perimeter-mode recovery on the Gabriel-planarized radio graph.  The
Figure 1 comparisons run **GPSR-Greedy** (``enable_perimeter=False``),
exactly as the paper does.

Privacy-wise this protocol is the *negative* baseline: beacons carry
``(identity, location)`` in cleartext and data packets carry the
destination's doublet — everything the adversary needs (see
:meth:`GpsrBeacon.wire_view`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.geo.vec import Position
from repro.net.mac.frames import MacFrame
from repro.net.packet import Packet
from repro.routing.base import BaseRouter, RoutingConfig
from repro.routing.neighbor_table import NeighborTable
from repro.sim.engine import PURE_ACTOR
from repro.routing.planar import (
    crossing_point,
    gabriel_neighbors,
    right_hand_neighbor,
)

__all__ = ["GpsrBeacon", "GpsrData", "GpsrConfig", "GpsrRouter"]

_IP_HEADER = 20
_LOC_BYTES = 8  # two 4-byte fixed-point coordinates
_ID_BYTES = 4


@dataclass
class GpsrBeacon(Packet):
    """The periodic hello: sender identity + current position, in cleartext."""

    KIND = "gpsr.beacon"

    sender_identity: str = ""
    position: Position = field(default_factory=lambda: Position(0.0, 0.0))
    timestamp: float = 0.0

    def header_bytes(self) -> int:
        return _IP_HEADER + _ID_BYTES + _LOC_BYTES + 4  # + timestamp

    def wire_view(self) -> dict:
        """What a sniffer reads off the air — the full privacy leak."""
        return {
            "identity": self.sender_identity,
            "location": self.position.as_tuple(),
            "timestamp": self.timestamp,
        }


@dataclass
class GpsrData(Packet):
    """A data packet: destination identity and location ride in the header."""

    KIND = "gpsr.data"

    src_identity: str = ""
    dest_identity: str = ""
    dest_location: Position = field(default_factory=lambda: Position(0.0, 0.0))
    ttl: int = 64
    mode: str = "greedy"  # or "perimeter"
    entry_location: Optional[Position] = None  # Lp: where perimeter mode began
    face_point: Optional[Position] = None  # best crossing toward D on this face
    last_hop_position: Optional[Position] = None  # right-hand rule reference

    def header_bytes(self) -> int:
        base = _IP_HEADER + 2 * _ID_BYTES + _LOC_BYTES + 2  # ids, dest loc, ttl/mode
        if self.mode == "perimeter":
            base += 3 * _LOC_BYTES  # Lp, face point, last-hop position
        return base

    def wire_view(self) -> dict:
        view = {
            "src_identity": self.src_identity,
            "dest_identity": self.dest_identity,
            "dest_location": self.dest_location.as_tuple(),
        }
        return view


@dataclass
class GpsrConfig(RoutingConfig):
    """GPSR-specific knobs on top of the shared routing parameters."""

    enable_perimeter: bool = False
    mac_retry_limit: int = 3  # next-hop re-selections after MAC failures


class GpsrRouter(BaseRouter):
    """One node's GPSR agent."""

    def __init__(self, node, location_service, config=None, tracer=None) -> None:
        super().__init__(node, location_service, config or GpsrConfig(), tracer)
        self.table = NeighborTable(self.config.neighbor_timeout)
        self._seen: set[Tuple[int, int]] = set()
        self._purge_tick()

    def _purge_tick(self) -> None:
        self.table.purge(self.sim.now)
        # PURE: purging a neighbor table can never lead to a transmission,
        # so the sharded promise scan skips the tick chain.
        self.sim.schedule(
            self.config.beacon_interval, self._purge_tick, name="gpsr.purge",
            actor=PURE_ACTOR,
        )

    # ------------------------------------------------------ lifecycle faults
    def on_fault_down(self) -> None:
        """Crash: the beaconed neighbor table and the duplicate cache are
        volatile — a rebooted router relearns the neighborhood from
        scratch (the purge tick keeps running; purging an empty table is
        a no-op)."""
        super().on_fault_down()
        self.table.clear()
        self._seen.clear()

    # ------------------------------------------------------------- beaconing
    def send_beacon(self) -> None:
        beacon = GpsrBeacon(
            # GPSR is the paper's non-anonymous baseline: the cleartext
            # (identity, location) doublet in its beacon is the leak the
            # Fig. 1 comparison measures AGFW against.
            sender_identity=self.node.identity,  # repro: noqa[ANON-001] baseline leak
            position=self.position,
            timestamp=self.sim.now,
        )
        from repro.net.addresses import BROADCAST

        self.node.mac.send(beacon, BROADCAST)

    # -------------------------------------------------------------- receive
    def on_packet(self, packet: Packet, frame: MacFrame) -> None:
        handler = self.packet_handlers.get(type(packet))
        if handler is not None:
            handler(packet, frame)
            return
        if isinstance(packet, GpsrBeacon):
            self.table.update(
                packet.sender_identity, frame.src, packet.position, self.sim.now
            )
        elif isinstance(packet, GpsrData):
            self._handle_data(packet)

    def _handle_data(self, packet: GpsrData) -> None:
        key = (packet.uid, packet.ttl)
        if key in self._seen:
            self.stats.duplicates += 1
            return
        self._seen.add(key)
        if packet.dest_identity == self.node.identity:
            self._trace_app_recv(packet.uid)
            return
        self._forward(packet, retries_left=int(self.config.mac_retry_limit))

    # ------------------------------------------------------------ originate
    def _originate(
        self, dest_identity: str, dest_location: Position, payload_bytes: int
    ) -> Optional[int]:
        packet = GpsrData(
            payload_bytes=payload_bytes,
            # Baseline protocol: both endpoint identities ride in the
            # cleartext header (what AGFW replaces with a trapdoor).
            src_identity=self.node.identity,  # repro: noqa[ANON-001] baseline leak
            dest_identity=dest_identity,  # repro: noqa[ANON-001] baseline leak
            dest_location=dest_location,
            ttl=self.config.data_ttl,
        )
        self._trace_app_send(packet.uid, dest_identity, payload_bytes)
        if dest_identity == self.node.identity:  # loopback, degenerate
            self._trace_app_recv(packet.uid)
            return packet.uid
        self._forward(packet, retries_left=int(self.config.mac_retry_limit))
        return packet.uid

    # ------------------------------------------------------------ forwarding
    def _forward(self, packet: GpsrData, retries_left: int) -> None:
        if packet.ttl <= 0:
            self.stats.drops_ttl += 1
            self._trace("route.drop", reason="ttl", packet_uid=packet.uid)
            return
        now = self.sim.now
        own = self.position
        dest = packet.dest_location

        # The destination itself may be in our table: always prefer it.
        direct = self.table.get(packet.dest_identity)
        if direct is not None:
            self._transmit(packet, direct, retries_left, mode="greedy")
            return

        if packet.mode == "perimeter" and self.config.enable_perimeter:
            # Return to greedy as soon as we beat the perimeter entry point.
            assert packet.entry_location is not None
            if own.distance2_to(dest) < packet.entry_location.distance2_to(dest):
                packet = packet.clone_for_forwarding(
                    mode="greedy",
                    entry_location=None,
                    face_point=None,
                    last_hop_position=None,
                )
            else:
                self._perimeter_forward(packet, retries_left)
                return

        entry = self.table.best_towards(dest, own, now)
        if entry is not None:
            self._transmit(packet, entry, retries_left, mode="greedy")
            return

        if self.config.enable_perimeter:
            perimeter = packet.clone_for_forwarding(
                mode="perimeter",
                entry_location=own,
                face_point=None,
                last_hop_position=None,
            )
            self._perimeter_forward(perimeter, retries_left)
            return

        self.stats.drops_deadend += 1
        self._trace("route.drop", reason="deadend", packet_uid=packet.uid)

    def _perimeter_forward(self, packet: GpsrData, retries_left: int) -> None:
        own = self.position
        dest = packet.dest_location
        neighbors = [
            (e.identity, e.position) for e in self.table.entries(self.sim.now)
        ]
        planar = gabriel_neighbors(own, neighbors)
        if not planar:
            self.stats.drops_deadend += 1
            self._trace("route.drop", reason="perimeter_isolated", packet_uid=packet.uid)
            return
        reference = packet.last_hop_position or dest
        choice = right_hand_neighbor(own, reference, planar)
        assert choice is not None
        next_id, next_pos = choice

        # Face change: does the chosen edge cross the Lp->D line closer to D?
        assert packet.entry_location is not None
        cross = crossing_point(own, next_pos, packet.entry_location, dest)
        if cross is not None:
            previous_best = packet.face_point
            if previous_best is None or cross.distance2_to(dest) < previous_best.distance2_to(dest):
                # Enter the new face: sweep again from the destination line.
                packet = packet.clone_for_forwarding(face_point=cross)
                choice = right_hand_neighbor(own, dest, planar)
                assert choice is not None
                next_id, next_pos = choice

        entry = self.table.get(next_id)
        if entry is None:  # expired between snapshot and now
            self.stats.drops_deadend += 1
            self._trace("route.drop", reason="perimeter_stale", packet_uid=packet.uid)
            return
        packet = packet.clone_for_forwarding(last_hop_position=own)
        self._transmit(packet, entry, retries_left, mode="perimeter")

    def _transmit(self, packet: GpsrData, entry, retries_left: int, mode: str) -> None:
        outgoing = packet.clone_for_forwarding(ttl=packet.ttl - 1, mode=mode)

        def _done(success: bool) -> None:
            if success:
                self.stats.forwarded += 1
                return
            # GPSR reaction to MAC failure: evict the neighbor, try another.
            self.table.remove(entry.identity)
            if retries_left > 0:
                self._forward(packet, retries_left - 1)
            else:
                self.stats.drops_mac += 1
                self._trace("route.drop", reason="mac", packet_uid=packet.uid)

        self._trace(
            "route.forward",
            packet_uid=packet.uid,
            next_hop=entry.identity,
            mode=mode,
        )
        self.node.mac.send(outgoing, entry.mac, _done)

    # ------------------------------------------------------------- geocast
    def forward_location_packet(self, packet, deliver_local) -> None:
        """Route a service packet toward its target location (DLM transport).

        Greedy unicast hop-by-hop; ``deliver_local`` fires at the local
        maximum so the service agent can decide whether it has arrived.
        """
        if packet.ttl <= 0:
            self.stats.drops_ttl += 1
            return
        entry = self.table.best_towards(
            packet.target_location, self.position, self.sim.now
        )
        if entry is None:
            deliver_local(packet)
            return
        outgoing = packet.clone_for_forwarding(ttl=packet.ttl - 1)

        def _done(success: bool) -> None:
            if not success:
                self.table.remove(entry.identity)
                self.forward_location_packet(packet, deliver_local)

        self.node.mac.send(outgoing, entry.mac, _done)
