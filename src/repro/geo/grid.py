"""Grid partitioning of the simulation region.

Two consumers:

* The **DLM location service** (Xue et al.) divides the network into
  equal-size grids and maps a node identity to "special grids" hosting its
  location servers.  :class:`Grid` provides the cell arithmetic and the
  identity→cell hash mapping that both DLM and the paper's ALS reuse.
* The **medium** uses a (coarser) grid for neighbor culling so that
  broadcast delivery does not scan all nodes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.geo.region import Region
from repro.geo.vec import Position

__all__ = ["Cell", "Grid"]

Cell = Tuple[int, int]
"""A grid cell index ``(col, row)``."""


@dataclass(frozen=True)
class Grid:
    """A uniform grid of ``cols`` x ``rows`` cells over ``region``."""

    region: Region
    cols: int
    rows: int

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError("grid must have at least one cell per axis")

    @classmethod
    def with_cell_size(cls, region: Region, cell_size: float) -> "Grid":
        """Grid whose cells are (at most) ``cell_size`` metres on a side."""
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        cols = max(1, int(-(-region.width // cell_size)))
        rows = max(1, int(-(-region.height // cell_size)))
        return cls(region, cols, rows)

    # --------------------------------------------------------------- basics
    @property
    def cell_width(self) -> float:
        return self.region.width / self.cols

    @property
    def cell_height(self) -> float:
        return self.region.height / self.rows

    @property
    def cell_count(self) -> int:
        return self.cols * self.rows

    def cell_of(self, p: Position) -> Cell:
        """The cell containing ``p`` (positions outside are clamped)."""
        p = self.region.clamp(p)
        col = min(int((p.x - self.region.x0) / self.cell_width), self.cols - 1)
        row = min(int((p.y - self.region.y0) / self.cell_height), self.rows - 1)
        return (col, row)

    def center_of(self, cell: Cell) -> Position:
        """Geometric center of a cell — the geocast target for server grids."""
        col, row = self._check(cell)
        return Position(
            self.region.x0 + (col + 0.5) * self.cell_width,
            self.region.y0 + (row + 0.5) * self.cell_height,
        )

    def contains_cell(self, cell: Cell) -> bool:
        col, row = cell
        return 0 <= col < self.cols and 0 <= row < self.rows

    def cells(self) -> Iterator[Cell]:
        """All cells in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield (col, row)

    def neighbors_of(self, cell: Cell, radius: int = 1) -> List[Cell]:
        """Cells within Chebyshev distance ``radius`` (incl. the cell itself)."""
        col, row = self._check(cell)
        out: List[Cell] = []
        for dc in range(-radius, radius + 1):
            for dr in range(-radius, radius + 1):
                c, r = col + dc, row + dr
                if 0 <= c < self.cols and 0 <= r < self.rows:
                    out.append((c, r))
        return out

    # -------------------------------------------------- identity -> servers
    def home_cells(self, identity: str, count: int = 1) -> List[Cell]:
        """The DLM *server selection algorithm* ``ssa(identity)``.

        Maps a node identity to ``count`` deterministic, publicly-computable
        cells by iterated hashing.  Every node computes the same mapping, so
        updaters and requesters agree on where location servers live without
        any coordination — the property DLM (and hence ALS) relies on.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > self.cell_count:
            raise ValueError(
                f"cannot pick {count} distinct cells from a {self.cols}x{self.rows} grid"
            )
        chosen: List[Cell] = []
        seen: set[Cell] = set()
        salt = 0
        while len(chosen) < count:
            digest = hashlib.sha256(f"{identity}:{salt}".encode("utf-8")).digest()
            index = int.from_bytes(digest[:8], "big") % self.cell_count
            cell = (index % self.cols, index // self.cols)
            if cell not in seen:
                seen.add(cell)
                chosen.append(cell)
            salt += 1
        return chosen

    def _check(self, cell: Cell) -> Cell:
        if not self.contains_cell(cell):
            raise ValueError(f"cell {cell} outside {self.cols}x{self.rows} grid")
        return cell
