"""Rectangular simulation regions.

The paper's evaluation uses a 1500 m x 300 m field.  :class:`Region`
encapsulates the field bounds: mobility models sample waypoints from it,
and node placement draws uniform positions inside it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.vec import Position

__all__ = ["Region"]


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangle ``[x0, x1] x [y0, y1]`` in metres."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate region {self!r}")

    @classmethod
    def of_size(cls, width: float, height: float) -> "Region":
        """A region anchored at the origin — ``Region.of_size(1500, 300)``."""
        return cls(0.0, 0.0, float(width), float(height))

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Position:
        return Position((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Position) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def clamp(self, p: Position) -> Position:
        """Project ``p`` onto the region (nearest interior/boundary point)."""
        return Position(
            min(max(p.x, self.x0), self.x1),
            min(max(p.y, self.y0), self.y1),
        )

    def random_position(self, rng: random.Random) -> Position:
        """A uniform random position inside the region."""
        return Position(rng.uniform(self.x0, self.x1), rng.uniform(self.y0, self.y1))

    def diagonal(self) -> float:
        """Length of the region diagonal — an upper bound on any distance."""
        return Position(self.x0, self.y0).distance_to(Position(self.x1, self.y1))
