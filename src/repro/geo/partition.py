"""Column partitions of the arena for sharded simulation.

The sharded runtime (:mod:`repro.sim.shard`) splits the arena into
vertical columns — one shard per column.  Radio interference is
range-bounded, so a transmission in one column can only matter to a
neighbouring shard when its interference disc overlaps that shard's
nodes; the partition therefore also computes the **interest intervals**
(x-ranges, padded by interference range plus a mobility-drift cushion)
that decide which transmissions must be mirrored across a border and
which owned nodes are *exposed* (close enough to foreign nodes that
their transmissions might need mirroring at all).

Ownership is **static**: a node belongs to the column containing its
position at t=0 for the whole run.  Mobility is free to carry a node
into another shard's column — spatial responsibility is dynamic and
handled by the interest intervals, which track the actual owned-node
extents of every shard (refreshed with a drift cushion) rather than the
column geometry.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ColumnPartition", "Interval", "rebalanced_boundaries"]

#: An inclusive x-range; ``None`` marks an empty interval (no nodes).
Interval = Optional[Tuple[float, float]]


@dataclass(frozen=True)
class ColumnPartition:
    """``shards`` vertical columns over ``[x0, x0 + width]``.

    By default the columns are equal width.  ``boundaries`` — the
    ``shards - 1`` *inner* split positions, strictly increasing and
    strictly inside the arena — overrides the geometry with explicit
    (e.g. load-rebalanced) splits without changing any of the interval
    machinery: ownership is still "the column containing the node at
    t=0", and interest intervals track actual node extents, never the
    column edges.
    """

    x0: float
    width: float
    shards: int
    boundaries: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.width <= 0:
            raise ValueError(f"width must be positive, got {self.width}")
        if self.boundaries is not None:
            cuts = tuple(float(b) for b in self.boundaries)
            if len(cuts) != self.shards - 1:
                raise ValueError(
                    f"{self.shards} shards need {self.shards - 1} inner "
                    f"boundaries, got {len(cuts)}"
                )
            lo, hi = self.x0, self.x0 + self.width
            for prev, cut in zip((lo,) + cuts, cuts):
                if not (lo < cut < hi) or cut <= prev:
                    raise ValueError(
                        f"boundaries must be strictly increasing inside "
                        f"({lo}, {hi}), got {cuts}"
                    )
            object.__setattr__(self, "boundaries", cuts)

    @property
    def column_width(self) -> float:
        return self.width / self.shards

    def column_of(self, x: float) -> int:
        """Shard index owning position ``x`` (clamped at the arena edges)."""
        cuts = self.boundaries
        if cuts is not None:
            return bisect_right(cuts, x)
        idx = int((x - self.x0) / self.column_width)
        if idx < 0:
            return 0
        if idx >= self.shards:
            return self.shards - 1
        return idx

    def column_bounds(self, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` x-range of column ``index``."""
        cuts = self.boundaries
        if cuts is not None:
            lo = self.x0 if index == 0 else cuts[index - 1]
            hi = self.x0 + self.width if index == self.shards - 1 else cuts[index]
            return (lo, hi)
        lo = self.x0 + index * self.column_width
        return (lo, lo + self.column_width)

    def assign(self, xs: Sequence[float]) -> List[int]:
        """Owner shard per node, by position at build time."""
        return [self.column_of(x) for x in xs]

    # --------------------------------------------------------------- intervals
    @staticmethod
    def interest_intervals(
        owner_of: Sequence[int],
        xs: Sequence[float],
        shards: int,
        pad: float,
    ) -> Dict[int, Interval]:
        """Padded x-extent of each shard's owned nodes.

        A transmission at ``sx`` must be mirrored to shard ``j`` iff
        ``sx`` falls inside ``j``'s interval; an owned node is *exposed*
        iff its x falls inside any foreign interval.  ``pad`` must cover
        interference range plus the worst-case drift of both endpoints
        between refreshes (the caller derives it from max speed, the
        refresh period, and the window cap).
        """
        lo: Dict[int, float] = {}
        hi: Dict[int, float] = {}
        for owner, x in zip(owner_of, xs):
            cur = lo.get(owner)
            if cur is None or x < cur:
                lo[owner] = x
            cur = hi.get(owner)
            if cur is None or x > cur:
                hi[owner] = x
        out: Dict[int, Interval] = {}
        for j in range(shards):
            if j in lo:
                out[j] = (lo[j] - pad, hi[j] + pad)
            else:
                out[j] = None
        return out

    @staticmethod
    def in_interval(x: float, interval: Interval) -> bool:
        return interval is not None and interval[0] <= x <= interval[1]


def rebalanced_boundaries(
    x0: float,
    width: float,
    shards: int,
    loads: Sequence[float],
    *,
    min_fraction: float = 0.1,
    quantum: float = 1e-6,
) -> Tuple[float, ...]:
    """Load-equalizing inner split positions from per-column load stats.

    ``loads[i]`` is the measured load of the *current* equal-width
    column ``i`` (the driver feeds executed-event counts of a
    calibration round — a deterministic function of config + seed,
    unlike busy CPU seconds).  Load is modelled as uniform within each
    measured column; the returned ``shards - 1`` cuts place an equal
    share of the total load in every new column, clamped so no column
    shrinks below ``min_fraction`` of the equal-width size.

    Determinism: the result is a pure function of the arguments, and
    every cut is quantized to ``quantum`` metres so that the boundary
    values survive a round-trip through config serialization exactly.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if len(loads) != shards:
        raise ValueError(f"need one load per column, got {len(loads)} for {shards}")
    if any(load < 0 for load in loads):
        raise ValueError(f"loads must be non-negative, got {list(loads)}")
    if shards == 1:
        return ()
    column = width / shards
    total = float(sum(loads))
    if total <= 0.0:
        # Nothing measured: keep the equal-width geometry.
        return tuple(
            round((x0 + column * k) / quantum) * quantum for k in range(1, shards)
        )
    # Walk the piecewise-constant cumulative load, cutting at each k/N
    # share.  ``prefix[i]`` is the load strictly left of column i.
    prefix = [0.0]
    for load in loads:
        prefix.append(prefix[-1] + float(load))
    cuts: List[float] = []
    floor = column * min_fraction
    prev = x0
    for k in range(1, shards):
        target = total * (k / shards)
        # Column containing the target share.
        i = 0
        while i < shards - 1 and prefix[i + 1] < target:
            i += 1
        load_i = float(loads[i])
        frac = 0.5 if load_i <= 0.0 else (target - prefix[i]) / load_i
        cut = x0 + column * (i + frac)
        # Clamp: leave at least ``floor`` width on both sides, including
        # the remaining columns to the right.
        lo = prev + floor
        hi = x0 + width - floor * (shards - k)
        cut = min(max(cut, lo), hi)
        cut = round(cut / quantum) * quantum
        if cut <= prev:
            cut = round((prev + floor) / quantum) * quantum
        cuts.append(cut)
        prev = cut
    return tuple(cuts)
