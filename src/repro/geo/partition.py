"""Column partitions of the arena for sharded simulation.

The sharded runtime (:mod:`repro.sim.shard`) splits the arena into
vertical columns — one shard per column.  Radio interference is
range-bounded, so a transmission in one column can only matter to a
neighbouring shard when its interference disc overlaps that shard's
nodes; the partition therefore also computes the **interest intervals**
(x-ranges, padded by interference range plus a mobility-drift cushion)
that decide which transmissions must be mirrored across a border and
which owned nodes are *exposed* (close enough to foreign nodes that
their transmissions might need mirroring at all).

Ownership is **static**: a node belongs to the column containing its
position at t=0 for the whole run.  Mobility is free to carry a node
into another shard's column — spatial responsibility is dynamic and
handled by the interest intervals, which track the actual owned-node
extents of every shard (refreshed with a drift cushion) rather than the
column geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ColumnPartition", "Interval"]

#: An inclusive x-range; ``None`` marks an empty interval (no nodes).
Interval = Optional[Tuple[float, float]]


@dataclass(frozen=True)
class ColumnPartition:
    """``shards`` equal-width vertical columns over ``[x0, x0 + width]``."""

    x0: float
    width: float
    shards: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.width <= 0:
            raise ValueError(f"width must be positive, got {self.width}")

    @property
    def column_width(self) -> float:
        return self.width / self.shards

    def column_of(self, x: float) -> int:
        """Shard index owning position ``x`` (clamped at the arena edges)."""
        idx = int((x - self.x0) / self.column_width)
        if idx < 0:
            return 0
        if idx >= self.shards:
            return self.shards - 1
        return idx

    def column_bounds(self, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` x-range of column ``index``."""
        lo = self.x0 + index * self.column_width
        return (lo, lo + self.column_width)

    def assign(self, xs: Sequence[float]) -> List[int]:
        """Owner shard per node, by position at build time."""
        return [self.column_of(x) for x in xs]

    # --------------------------------------------------------------- intervals
    @staticmethod
    def interest_intervals(
        owner_of: Sequence[int],
        xs: Sequence[float],
        shards: int,
        pad: float,
    ) -> Dict[int, Interval]:
        """Padded x-extent of each shard's owned nodes.

        A transmission at ``sx`` must be mirrored to shard ``j`` iff
        ``sx`` falls inside ``j``'s interval; an owned node is *exposed*
        iff its x falls inside any foreign interval.  ``pad`` must cover
        interference range plus the worst-case drift of both endpoints
        between refreshes (the caller derives it from max speed, the
        refresh period, and the window cap).
        """
        lo: Dict[int, float] = {}
        hi: Dict[int, float] = {}
        for owner, x in zip(owner_of, xs):
            cur = lo.get(owner)
            if cur is None or x < cur:
                lo[owner] = x
            cur = hi.get(owner)
            if cur is None or x > cur:
                hi[owner] = x
        out: Dict[int, Interval] = {}
        for j in range(shards):
            if j in lo:
                out[j] = (lo[j] - pad, hi[j] + pad)
            else:
                out[j] = None
        return out

    @staticmethod
    def in_interval(x: float, interval: Interval) -> bool:
        return interval is not None and interval[0] <= x <= interval[1]
