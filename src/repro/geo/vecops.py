"""Vectorized batch kernels for the simulation hot core.

Pure-Python discrete-event simulation pays an interpreter round trip per
node per event; at 150 nodes a single broadcast frame touches every
radio twice (impinge start/end), so leg interpolation and distance
classification dominate wall-clock.  This module provides numpy-backed
*batch* versions of exactly those kernels:

* :class:`LegArrays` — all tracked nodes' current motion legs as a
  structure of arrays (origin, target, depart/arrive times, speed, leg
  length), advanced wholesale per mobility epoch;
* :func:`batch_position_at` / :func:`batch_velocity_at` — every node's
  position/velocity at one instant in a handful of ufunc calls;
* :func:`batch_cells` / :func:`batch_cell_margins` — grid binning and
  nearest-cell-edge margins for the spatial index's horizon sweep.

Bit-identity contract
---------------------
Every kernel replicates the scalar formulas of
:class:`repro.net.mobility.WaypointLeg` and
:class:`repro.geo.spatial.SpatialIndex` *operation for operation*:
numpy float64 element-wise arithmetic performs the same IEEE-754 double
operations in the same order (ufuncs are compiled without fused
multiply-add or fast-math reassociation), so batch results are
**bitwise equal** to the scalar path — not merely close.  The one
deliberately non-elementwise quantity, a leg's Euclidean length, is
computed *scalar* (``math.hypot``) when the leg row is written, because
``numpy.hypot`` and CPython's ``math.hypot`` do not promise identical
rounding.  ``tests/test_vecops.py`` enforces the contract with
randomized scalar-vs-batch sweeps across pause boundaries and
zero-length legs.

numpy is an *optional* extra (``pip install repro[fast]``).  When it is
missing — or ``REPRO_PURE_PYTHON=1`` is set, which CI uses to test the
fallback — :data:`HAVE_NUMPY` is False and every consumer silently
falls back to the object/scalar paths, which are outcome-identical by
the same tests.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.mobility import WaypointLeg

__all__ = [
    "HAVE_NUMPY",
    "LegArrays",
    "batch_position_at",
    "batch_velocity_at",
    "batch_cells",
    "batch_cell_margins",
    "batch_distance2",
]

if os.environ.get("REPRO_PURE_PYTHON"):  # CI fallback drill: pretend no numpy
    np = None  # type: ignore[assignment]
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via REPRO_PURE_PYTHON
        np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

_INF = math.inf


class LegArrays:
    """Structure-of-arrays store for every tracked node's current leg.

    One row per node, appended in registration order (the row index *is*
    the registration order, which downstream consumers rely on for the
    exact candidate-order contract).  A static node is stored as a
    zero-length, already-arrived leg at its position, so one batch
    kernel covers the whole population.

    Rows are rewritten in place by :meth:`set_leg` / :meth:`set_fixed`
    whenever a leg rolls or a teleport lands; capacity doubles amortized.
    """

    __slots__ = (
        "ox", "oy", "gx", "gy", "depart", "arrive", "speed", "length", "size",
        "span", "dgx", "dgy", "has_span", "_frac", "_tmp", "_arrived", "_waiting",
        "min_arrive", "max_depart", "_vn", "_views",
    )

    def __init__(self, capacity: int = 16) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("LegArrays requires numpy (repro[fast])")
        capacity = max(1, capacity)
        self.ox = np.zeros(capacity)
        self.oy = np.zeros(capacity)
        self.gx = np.zeros(capacity)
        self.gy = np.zeros(capacity)
        self.depart = np.zeros(capacity)
        self.arrive = np.zeros(capacity)
        self.speed = np.zeros(capacity)
        #: Scalar ``math.hypot`` leg length (see bit-identity note above).
        self.length = np.zeros(capacity)
        #: Row-constant derived values, written alongside the row so the
        #: interpolation kernel never recomputes them: ``arrive - depart``,
        #: ``target - origin`` and the positive-span mask.  The scalar
        #: subtractions here produce the identical doubles the old
        #: per-call elementwise subtractions did.
        self.span = np.zeros(capacity)
        self.dgx = np.zeros(capacity)
        self.dgy = np.zeros(capacity)
        self.has_span = np.zeros(capacity, dtype=bool)
        #: Kernel scratch.  ``_frac`` lanes are only ever written where
        #: ``has_span`` holds, so masked-out lanes stay at their initial
        #: (finite) 0.0 and no inf/nan ever reaches a multiply.
        self._frac = np.zeros(capacity)
        self._tmp = np.empty(capacity)
        self._arrived = np.empty(capacity, dtype=bool)
        self._waiting = np.empty(capacity, dtype=bool)
        #: Scalar boundary guards, only ever *tightened* by row writes
        #: (stale-conservative: a too-early ``min_arrive`` just runs the
        #: boundary ufuncs needlessly, never skips a needed one).  While
        #: ``min_arrive > t > max_depart`` every lane is mid-flight and
        #: the kernel can skip both boundary sweeps entirely.
        self.min_arrive = _INF
        self.max_depart = -_INF
        #: Cached per-size slice views of the row arrays (rebuilt when
        #: ``size`` changes or the arrays are regrown).
        self._vn = -1
        self._views: Optional[tuple] = None
        self.size = 0

    def _grow(self) -> None:
        new_cap = max(1, 2 * len(self.ox))
        for name in (
            "ox", "oy", "gx", "gy", "depart", "arrive", "speed", "length",
            "span", "dgx", "dgy",
        ):
            old = getattr(self, name)
            fresh = np.zeros(new_cap)
            fresh[: len(old)] = old
            setattr(self, name, fresh)
        old_mask = self.has_span
        self.has_span = np.zeros(new_cap, dtype=bool)
        self.has_span[: len(old_mask)] = old_mask
        old_frac = self._frac
        self._frac = np.zeros(new_cap)
        self._frac[: len(old_frac)] = old_frac
        self._tmp = np.empty(new_cap)
        self._arrived = np.empty(new_cap, dtype=bool)
        self._waiting = np.empty(new_cap, dtype=bool)
        self._vn = -1  # views point at the old arrays

    def _refresh_views(self) -> tuple:
        n = self.size
        self._views = (
            self.ox[:n], self.oy[:n], self.gx[:n], self.gy[:n],
            self.depart[:n], self.arrive[:n], self.span[:n],
            self.has_span[:n], self.dgx[:n], self.dgy[:n],
            self._tmp[:n], self._frac[:n], self._arrived[:n],
            self._waiting[:n],
        )
        self._vn = n
        return self._views

    def append_row(self) -> int:
        """Reserve the next row (caller fills it); returns its index."""
        if self.size == len(self.ox):
            self._grow()
        self.size += 1
        return self.size - 1

    def set_leg(self, row: int, leg: "WaypointLeg") -> None:
        """Write one :class:`~repro.net.mobility.WaypointLeg` into ``row``."""
        origin, target = leg.origin, leg.target
        self.ox[row] = origin.x
        self.oy[row] = origin.y
        self.gx[row] = target.x
        self.gy[row] = target.y
        self.depart[row] = leg.depart_time
        self.arrive[row] = leg.arrive_time
        self.speed[row] = leg.speed
        # Scalar on purpose: velocity_at divides by origin.distance_to
        # (math.hypot); np.hypot's rounding is not guaranteed identical.
        self.length[row] = math.hypot(target.x - origin.x, target.y - origin.y)
        span = leg.arrive_time - leg.depart_time
        self.span[row] = span
        self.dgx[row] = target.x - origin.x
        self.dgy[row] = target.y - origin.y
        self.has_span[row] = span > 0.0
        self._frac[row] = 0.0  # keep masked-out lanes finite
        if leg.arrive_time < self.min_arrive:
            self.min_arrive = leg.arrive_time
        if leg.depart_time > self.max_depart:
            self.max_depart = leg.depart_time

    def set_fixed(self, row: int, x: float, y: float) -> None:
        """Write a motionless node: a zero-length leg pinned at ``(x, y)``.

        ``depart = +inf`` / ``arrive = -inf`` makes *both* boundary
        branches select the (identical) pinned coordinates at any ``t``,
        while keeping the span finite-free of NaN (``-inf - +inf = -inf``,
        not ``inf - inf``) so the batch kernel never warns.
        """
        self.ox[row] = x
        self.oy[row] = y
        self.gx[row] = x
        self.gy[row] = y
        self.depart[row] = _INF
        self.arrive[row] = -_INF
        self.speed[row] = 0.0
        self.length[row] = 0.0
        self.span[row] = -_INF  # -inf - +inf: finite-free of NaN
        self.dgx[row] = 0.0
        self.dgy[row] = 0.0
        self.has_span[row] = False
        self._frac[row] = 0.0
        #: A pinned row is permanently "arrived" and "waiting", so both
        #: boundary sweeps must always run while any fixed row exists.
        self.min_arrive = -_INF
        self.max_depart = _INF


def batch_position_at(
    legs: LegArrays, time: float, out_x: Optional["np.ndarray"] = None,
    out_y: Optional["np.ndarray"] = None,
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Positions of every leg at ``time``; bitwise equals the scalar path.

    Replicates :meth:`WaypointLeg.position_at` lane-by-lane::

        t <= depart           -> origin
        t >= arrive           -> target
        else                  -> origin + (target - origin) * fraction
        fraction = (t - depart) / (arrive - depart)

    ``out_x``/``out_y`` are optional preallocated buffers (>= ``size``);
    passing them makes the kernel allocation-free on the hot path.
    """
    n = legs.size
    views = legs._views if legs._vn == n else legs._refresh_views()
    (ox, oy, gx, gy, depart, arrive, span, has_span, dgx, dgy,
     tmp, fraction, arrived, waiting) = views
    # Unselected lanes must not raise (and must stay finite): divide only
    # where the leg actually has extent; masked-out ``_frac`` lanes keep
    # their 0.0 and take the origin/target branches below.
    np.subtract(time, depart, out=tmp)
    np.divide(tmp, span, out=fraction, where=has_span)
    x = out_x[:n] if out_x is not None else np.empty(n)
    y = out_y[:n] if out_y is not None else np.empty(n)
    # Interpolated value first, then overwrite the boundary branches in
    # the same precedence order as the scalar code (depart wins last so
    # ``t <= depart`` takes priority exactly like the early return).
    np.multiply(dgx, fraction, out=x)
    x += ox
    np.multiply(dgy, fraction, out=y)
    y += oy
    # Boundary sweeps only run when some lane can actually be at a
    # boundary (scalar guards); mid-flight populations skip them.
    if time >= legs.min_arrive:
        np.greater_equal(time, arrive, out=arrived)
        if arrived.any():
            np.copyto(x, gx, where=arrived)
            np.copyto(y, gy, where=arrived)
    if time <= legs.max_depart:
        np.less_equal(time, depart, out=waiting)
        if waiting.any():
            np.copyto(x, ox, where=waiting)
            np.copyto(y, oy, where=waiting)
    return x, y


def batch_velocity_at(legs: LegArrays, time: float) -> Tuple["np.ndarray", "np.ndarray"]:
    """Velocity vectors at ``time``; bitwise equals the scalar path.

    Scalar reference (:meth:`WaypointLeg.velocity_at`): zero while
    paused, arrived, or for zero-length legs; otherwise
    ``(delta / length) * speed`` with ``length`` the scalar
    ``math.hypot`` leg length stored in the row.
    """
    n = legs.size
    moving = (time > legs.depart[:n]) & (time < legs.arrive[:n]) & (legs.length[:n] > 0.0)
    safe_len = np.where(moving, legs.length[:n], 1.0)
    vx = np.where(moving, (legs.gx[:n] - legs.ox[:n]) / safe_len * legs.speed[:n], 0.0)
    vy = np.where(moving, (legs.gy[:n] - legs.oy[:n]) / safe_len * legs.speed[:n], 0.0)
    return vx, vy


def batch_cells(
    x: "np.ndarray", y: "np.ndarray", cell_size: float
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Grid cells ``(floor(x/s), floor(y/s))`` as int32 coordinate arrays.

    ``x / s`` then ``floor`` — the same two operations as the scalar
    ``math.floor(pos.x / s)``, so the binning agrees exactly (int32 is
    ample: cells are interference-range sized, so ±2^31 cells spans
    ~10^12 m of arena).
    """
    col = np.floor(x / cell_size).astype(np.int32)
    row = np.floor(y / cell_size).astype(np.int32)
    return col, row


def batch_cell_margins(
    x: "np.ndarray",
    y: "np.ndarray",
    col: "np.ndarray",
    row: "np.ndarray",
    cell_size: float,
) -> "np.ndarray":
    """Distance from each point to the nearest edge of its own cell.

    The spatial index's validity horizon is ``margin / speed_bound``:
    a node strictly inside its cell cannot cross a boundary sooner.
    Replicates the scalar 4-way ``min`` (min is exact — order-free).
    """
    s = cell_size
    left = x - col * s
    right = (col + 1) * s - x
    bottom = y - row * s
    top = (row + 1) * s - y
    return np.minimum(np.minimum(left, right), np.minimum(bottom, top))


def batch_distance2(
    x: "np.ndarray",
    y: "np.ndarray",
    cx: float,
    cy: float,
    out_dx: Optional["np.ndarray"] = None,
    out_dy: Optional["np.ndarray"] = None,
    out_d2: Optional["np.ndarray"] = None,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """``(dx, dy, dx*dx + dy*dy)`` against a query point — the disc-query
    primitive.  Matches :meth:`Position.distance2_to` bitwise; callers
    take ``math.hypot(dx[i], dy[i])`` for scalar true distances so the
    capture-ratio comparisons stay on CPython's hypot.
    """
    n = len(x)
    dx = out_dx[:n] if out_dx is not None else np.empty(n)
    dy = out_dy[:n] if out_dy is not None else np.empty(n)
    d2 = out_d2[:n] if out_d2 is not None else np.empty(n)
    np.subtract(x, cx, out=dx)
    np.subtract(y, cy, out=dy)
    np.multiply(dx, dx, out=d2)
    d2 += dy * dy
    return dx, dy, d2


def scalar_positions(radios: List, now: float) -> Tuple[List[float], List[float]]:
    """Pure-Python reference used by equivalence tests and fallbacks."""
    xs, ys = [], []
    for radio in radios:
        pos = radio.mobility.position_at(now)
        xs.append(pos.x)
        ys.append(pos.y)
    return xs, ys
