"""Geometry: positions, rectangular regions, and grid partitioning."""

from repro.geo.grid import Cell, Grid
from repro.geo.partition import ColumnPartition
from repro.geo.region import Region
from repro.geo.vec import Position, bearing, centroid, distance, distance2, midpoint

__all__ = [
    "Cell",
    "ColumnPartition",
    "Grid",
    "Region",
    "Position",
    "bearing",
    "centroid",
    "distance",
    "distance2",
    "midpoint",
]
