"""Uniform-grid spatial index over mobile radios.

:class:`SpatialIndex` turns the medium's per-frame fan-out from a scan
over *all* radios into a scan over the radios binned in the few grid
cells that can possibly intersect the query disc.  It is designed to be
**outcome-invisible**: for any query it returns a superset-free, exactly
ordered candidate list such that filtering by true distance yields the
same radios, in the same (registration) order, as the brute-force scan.
The medium keeps the brute-force path available behind a flag and a
cross-check mode that asserts this equivalence on every transmission.

Why this is exact
-----------------
Cells live on an unbounded integer lattice of side ``cell_size``
(``cell = (floor(x / s), floor(y / s))``); no region bounds are needed.
Two points at Euclidean distance ``<= r`` differ by at most
``ceil(r / s)`` in each cell coordinate, so gathering the
``(2k+1) x (2k+1)`` block of cells around the query point with
``k = ceil(r / s)`` can never miss a radio **provided every radio is
binned at its current cell**.  The index maintains that invariant
lazily:

* When a radio is (re)binned at time ``t0`` it records a *validity
  horizon*: the earliest simulated time its interpolated position could
  cross its cell boundary, ``t0 + margin / speed_bound`` where
  ``margin`` is the distance from the position to the nearest cell edge
  and ``speed_bound`` comes from the mobility model (RWP exposes
  ``max_speed``; static models never expire).  RWP legs are straight
  lines at bounded speed, so the bound is sound for any leg sequence —
  including waypoint rolls and pauses — without the index knowing when
  legs change.
* Before answering a query at ``now``, :meth:`refresh` re-bins exactly
  the radios whose horizon has passed (a lazy min-heap pop), plus any
  radio whose mobility model offers no bound (those are re-binned every
  query, which degrades gracefully toward the brute-force cost for just
  those radios — never wrong answers).
* Teleporting models (``StaticMobility.move_to``) are discontinuous, so
  the index subscribes to their move notifications and marks the radio
  stale immediately.
* An optional ``refresh_quantum`` additionally caps every horizon, as a
  belt-and-braces bound for long-lived indexes.

Candidates are returned sorted by registration order, which is exactly
the iteration order of the brute-force radio list — so downstream
per-radio callbacks (``on_tx_start``) fire in an identical order and
the simulation stays bit-identical.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.geo.vec import Position

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.phy import PhyRadio

__all__ = ["SpatialIndex"]

_INF = math.inf


class _Entry:
    """Book-keeping for one indexed radio."""

    __slots__ = ("radio", "order", "cell", "valid_until", "stamp", "speed")

    def __init__(self, radio: "PhyRadio", order: int, speed: Optional[float]) -> None:
        self.radio = radio
        self.order = order
        self.cell: Tuple[int, int] = (0, 0)
        self.valid_until: float = -_INF
        #: Monotone re-bin counter; heap entries carry the stamp they were
        #: pushed with so stale heap tuples are recognized without float
        #: comparisons.
        self.stamp: int = 0
        #: Upper bound on the mobility model's speed; ``None`` means no
        #: usable bound — the entry is re-binned at every refresh instead
        #: of via the heap.
        self.speed = speed


class SpatialIndex:
    """Grid index over radios with mobility-aware lazy rebucketing.

    Parameters
    ----------
    cell_size:
        Side of the square cells in metres.  The medium uses its
        interference range, making the common fan-out query a 3x3-cell
        gather.
    refresh_quantum:
        Optional hard cap (seconds) on any entry's validity horizon;
        ``None`` (default) relies purely on the analytic
        boundary-crossing bound.
    """

    def __init__(self, cell_size: float, refresh_quantum: Optional[float] = None) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if refresh_quantum is not None and refresh_quantum <= 0:
            raise ValueError("refresh_quantum must be positive when given")
        self.cell_size = float(cell_size)
        self.refresh_quantum = refresh_quantum
        self._entries: List[_Entry] = []
        self._cells: Dict[Tuple[int, int], List[_Entry]] = {}
        #: (valid_until, stamp, order) — lazy min-heap of bounded entries.
        self._heap: List[Tuple[float, int, int]] = []
        self._unbounded: List[_Entry] = []
        #: Gather cache: (col, row, reach) -> (membership_version, radios).
        #: Valid while no radio changed cell; static topologies hit ~100%,
        #: RWP hits whenever no rebucketing occurred since the last query
        #: on the same cell.
        self._cache: Dict[Tuple[int, int, int], Tuple[int, List["PhyRadio"]]] = {}
        self._version = 0  # bumped whenever any cell's membership changes
        self._moving = 0  # entries whose positions can drift between queries
        # Telemetry (cheap ints; exposed via stats() for benchmarks/tests).
        self.rebins = 0
        self.refreshes = 0
        self.cache_hits = 0

    @property
    def version(self) -> int:
        """Monotone change stamp: bumped whenever any cell's membership
        changes *or* a teleport notification lands (even same-cell).
        External caches keyed on index-derived results compare this.
        """
        return self._version

    @property
    def all_static(self) -> bool:
        """True when no tracked radio can move between notifications.

        Teleporting models still notify via ``subscribe`` (which bumps the
        version), so version-stamped caches keyed on this property stay
        sound even across ``move_to`` discontinuities.
        """
        return self._moving == 0

    # -------------------------------------------------------------- mutation
    def add(self, radio: "PhyRadio", now: float) -> None:
        """Start tracking ``radio`` (binned immediately at time ``now``)."""
        mobility = radio.mobility
        speed = self._speed_bound(mobility)
        entry = _Entry(radio, len(self._entries), speed)
        self._entries.append(entry)
        if speed is None:
            self._unbounded.append(entry)
        if speed is None or speed > 0.0:
            self._moving += 1
        # Part of the MobilityModel protocol: teleporting models notify on
        # discontinuities (mark stale so the next refresh re-bins from the
        # post-teleport position); continuous models register and never call.
        mobility.subscribe(lambda e=entry: self._invalidate(e))
        self._bin(entry, now, first=True)

    def invalidate_all(self) -> None:
        """Drop every version-stamped derived cache (gather cache here,
        the medium's static fan-out memo downstream) by bumping the
        version.  Binning is untouched — node lifecycle faults change
        radio *liveness*, never geometry — so candidate queries keep
        their exactness proof while stamped consumers rebuild lazily."""
        self._version += 1

    def _invalidate(self, entry: _Entry) -> None:
        # A teleport can land inside the same cell, which changes positions
        # without changing membership — bump the version so position-derived
        # caches (the medium's static fan-out memo) are dropped regardless.
        self._version += 1
        if entry.speed is not None and entry.valid_until != -_INF:
            entry.valid_until = -_INF
            entry.stamp += 1
            heappush(self._heap, (-_INF, entry.stamp, entry.order))

    # --------------------------------------------------------------- queries
    def candidates_within(self, center: Position, rng: float, now: float) -> List["PhyRadio"]:
        """Radios that *may* lie within ``rng`` metres of ``center``.

        A superset of the true answer (callers filter by exact distance),
        sorted by registration order so filtered results match the
        brute-force scan element for element.  The returned list is owned
        by the index's gather cache — callers must not mutate it.
        """
        self.refresh(now)
        s = self.cell_size
        reach = max(1, math.ceil(rng / s)) if rng > 0 else 0
        col = math.floor(center.x / s)
        row = math.floor(center.y / s)
        key = (col, row, reach)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == self._version:
            self.cache_hits += 1
            return cached[1]
        cells = self._cells
        gathered: List[Tuple[int, "PhyRadio"]] = []
        for dc in range(-reach, reach + 1):
            for dr in range(-reach, reach + 1):
                bucket = cells.get((col + dc, row + dr))
                if bucket:
                    for entry in bucket:
                        gathered.append((entry.order, entry.radio))
        gathered.sort()  # orders are unique ints: native tuple sort, no key fn
        radios = [pair[1] for pair in gathered]
        self._cache[key] = (self._version, radios)
        return radios

    def refresh(self, now: float) -> None:
        """Re-bin every radio whose binned cell may be stale at ``now``."""
        self.refreshes += 1
        for entry in self._unbounded:
            self._bin(entry, now)
        heap = self._heap
        # Drain first, re-bin second: a radio sitting exactly on a cell
        # boundary gets a horizon of ``now`` when re-binned, and re-binning
        # inside the drain loop would pop it again forever.
        due: List[_Entry] = []
        while heap and heap[0][0] <= now:
            _, stamp, order = heappop(heap)
            entry = self._entries[order]
            if entry.stamp == stamp:  # not re-binned since this push
                due.append(entry)
        for entry in due:
            self._bin(entry, now)

    def stats(self) -> Dict[str, int]:
        """Index telemetry (sizes and rebin/refresh counters)."""
        return {
            "radios": len(self._entries),
            "cells": len(self._cells),
            "rebins": self.rebins,
            "refreshes": self.refreshes,
            "cache_hits": self.cache_hits,
        }

    # -------------------------------------------------------------- internal
    def _bin(self, entry: _Entry, now: float, first: bool = False) -> None:
        s = self.cell_size
        pos = entry.radio.mobility.position_at(now)
        cell = (math.floor(pos.x / s), math.floor(pos.y / s))
        if first or cell != entry.cell:
            if not first:
                old = self._cells.get(entry.cell)
                if old is not None:
                    old.remove(entry)
                    if not old:
                        del self._cells[entry.cell]
            self._cells.setdefault(cell, []).append(entry)
            entry.cell = cell
            self._version += 1  # membership changed: gather cache goes stale
        self.rebins += 1
        speed = entry.speed
        if speed is None:
            return  # refreshed unconditionally each query; no horizon needed
        if speed <= 0.0:
            horizon = _INF
        else:
            margin = min(
                pos.x - cell[0] * s,
                (cell[0] + 1) * s - pos.x,
                pos.y - cell[1] * s,
                (cell[1] + 1) * s - pos.y,
            )
            horizon = now + margin / speed
        if self.refresh_quantum is not None:
            horizon = min(horizon, now + self.refresh_quantum)
        entry.stamp += 1
        entry.valid_until = horizon
        if horizon < _INF:
            heappush(self._heap, (horizon, entry.stamp, entry.order))

    @staticmethod
    def _speed_bound(mobility: object) -> Optional[float]:
        """An upper bound on the model's speed, or ``None`` when unknowable.

        Models expose ``max_speed`` for their drift between subscribe
        notifications: 20 m/s for random waypoint, 0 for
        :class:`~repro.net.mobility.StaticMobility` (teleports arrive via
        :meth:`~repro.net.mobility.MobilityModel.subscribe`, which every
        model implements).  A model without the attribute is treated as
        unknowable and re-binned every query — slower, never wrong.
        """
        max_speed = getattr(mobility, "max_speed", None)
        if max_speed is not None:
            return float(max_speed)
        return None
