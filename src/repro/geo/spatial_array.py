"""Array-backed spatial index: the vectorized twin of
:class:`repro.geo.spatial.SpatialIndex`.

Same contract, different representation.  Where the object backend keeps
one ``_Entry`` per radio, a cell dict, and a lazy min-heap of rebin
horizons, this backend keeps the whole population as flat numpy arrays —
int32 cell coordinates, float64 validity horizons, and a
:class:`~repro.geo.vecops.LegArrays` structure-of-arrays of every node's
current motion leg — so the per-query work collapses into a handful of
ufunc sweeps:

* **positions**: one :func:`~repro.geo.vecops.batch_position_at` call
  interpolates every leg at once (cached per distinct query time);
* **horizon sweep**: one vectorized compare (``valid_until <= now``)
  finds every stale binning, and the due rows are re-binned/re-margined
  with :func:`~repro.geo.vecops.batch_cells` /
  :func:`~repro.geo.vecops.batch_cell_margins` — no heap churn;
* **gather**: the candidate cut is a window test on the int32 cell
  arrays (``|col - qcol| <= reach``), and ``np.flatnonzero`` yields row
  indices in ascending order — which *is* registration order, so the
  exact candidate-order contract documented in ``spatial.py`` holds by
  construction.

:meth:`classify_fanout` goes one step further for the medium's hot path:
it returns the fully *classified* fan-out of a transmission — affected
rows, per-receiver deliverability, and scalar distances — with the
squared distances computed by the same ``dx*dx + dy*dy`` operations as
:meth:`Position.distance2_to` and the true distances by scalar
``math.hypot`` on the batch-derived deltas, so every comparison and
every loss-model draw downstream sees **bitwise identical** floats to
the object path.  ``spatial_mode=cross`` in the medium asserts exactly
that on every transmission.

Leg tracking without notifications
----------------------------------
RWP's ``subscribe`` is a protocol no-op (continuous trajectories), so
the index discovers leg rolls itself: a roll can only have happened on a
row whose *stored* ``arrive`` time has passed, so one vector compare
finds the candidates and an identity check against ``current_leg``
re-syncs just those rows.  Chained legs make even a stale row harmless
at the roll instant (old leg at ``t >= arrive`` returns its target; the
new leg at ``t <= depart`` returns its origin — the same object).

Row kinds
---------
* **leg** rows (models exposing ``current_leg``) interpolate in the
  batch kernel and re-bin on analytic horizons (``max_speed`` bound);
* **fixed** rows (``max_speed == 0``) are written once and refreshed
  only when the model's ``subscribe`` callback reports a teleport;
* **opaque** rows (anything else) are re-read via scalar
  ``position_at`` on every recompute and re-binned every refresh —
  degrading gracefully toward the object backend's unbounded fallback,
  never toward wrong answers.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.geo import vecops
from repro.geo.vec import Position
from repro.geo.vecops import (
    LegArrays,
    batch_cell_margins,
    batch_cells,
    batch_position_at,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.phy import PhyRadio

if vecops.HAVE_NUMPY:
    import numpy as np  # type: ignore[import-not-found]
else:  # pragma: no cover - the medium never builds this backend without numpy
    np = None  # type: ignore[assignment]

__all__ = ["ArraySpatialIndex", "FanOut"]

_INF = math.inf

#: Sentinel in the speed array for "no usable bound" (re-bin every query).
_UNBOUNDED = -1.0


class FanOut:
    """One transmission's classified fan-out, in registration order.

    ``rows[i]`` is the registration index of the i-th affected radio
    (sender excluded); ``deliverable[i]`` is the in-radio-range verdict;
    ``dx/dy`` are receiver-minus-sender deltas as plain Python floats,
    from which callers take ``math.hypot`` for the capture/loss-model
    distance.  ``sx``/``sy`` is the sender's own batch-derived position.
    """

    __slots__ = ("sx", "sy", "rows", "dx", "dy", "deliverable")

    def __init__(
        self,
        sx: float,
        sy: float,
        rows: List[int],
        dx: List[float],
        dy: List[float],
        deliverable: List[bool],
    ) -> None:
        self.sx = sx
        self.sy = sy
        self.rows = rows
        self.dx = dx
        self.dy = dy
        self.deliverable = deliverable


class ArraySpatialIndex:
    """Vectorized drop-in for :class:`~repro.geo.spatial.SpatialIndex`.

    Mirrors the object backend's public surface (``add`` /
    ``candidates_within`` / ``refresh`` / ``invalidate_all`` /
    ``version`` / ``all_static`` / ``stats``) and adds the batched
    queries (:meth:`positions_at`, :meth:`classify_fanout`) the medium's
    vectorized transmit path uses.  Requires numpy
    (:data:`repro.geo.vecops.HAVE_NUMPY`); the medium falls back to the
    object backend when it is missing.
    """

    def __init__(self, cell_size: float, refresh_quantum: Optional[float] = None) -> None:
        if not vecops.HAVE_NUMPY:
            raise RuntimeError("ArraySpatialIndex requires numpy (repro[fast])")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if refresh_quantum is not None and refresh_quantum <= 0:
            raise ValueError("refresh_quantum must be positive when given")
        self.cell_size = float(cell_size)
        self.refresh_quantum = refresh_quantum

        self._legs = LegArrays()
        cap = len(self._legs.ox)
        self._col = np.zeros(cap, dtype=np.int32)
        self._row = np.zeros(cap, dtype=np.int32)
        self._valid = np.zeros(cap)  # validity horizon per row
        self._speed = np.zeros(cap)  # bound; _UNBOUNDED = rebin every query
        self._is_leg = np.zeros(cap, dtype=bool)
        self._pos_x = np.empty(cap)  # batch_position_at out-buffers
        self._pos_y = np.empty(cap)
        self._fan_dx = np.empty(cap)  # classify_fanout out-buffers
        self._fan_dy = np.empty(cap)
        self._fan_d2 = np.empty(cap)
        self._fan_t = np.empty(cap)
        self._fan_hit = np.empty(cap, dtype=bool)
        self._fan_n = -1  # size the cached fan scratch views were cut at
        self._fan_views: Tuple["np.ndarray", ...] = ()

        self._radios: List["PhyRadio"] = []  # row -> radio (registration order)
        self._mobs: List[object] = []  # row -> mobility model
        self._seen_legs: List[object] = []  # row -> last synced WaypointLeg
        self._row_by_node: Dict[int, int] = {}
        self._scalar_rows: List[int] = []  # opaque: scalar-refresh every query
        self._dirty_rows: List[int] = []  # fixed rows teleported since last sync
        #: Positions cache: valid while (time, epoch) both match.  The
        #: epoch advances on any discontinuity (teleport, add); leg rolls
        #: need no bump — chained legs agree bitwise at the roll instant.
        self._pos_time: Optional[float] = None
        self._pos_epoch = -1
        self._pos_view: Tuple["np.ndarray", "np.ndarray"] = (
            self._pos_x[:0], self._pos_y[:0],
        )
        self._epoch = 0
        #: Scalar hot-path guards: the earliest instant any leg can have
        #: rolled / any binning horizon can have expired.  Conservative
        #: (never later than the true instant), so a stale value only
        #: costs an extra sweep, never skips a needed one.
        self._next_roll = -_INF
        self._next_due = -_INF
        #: Occupied-cell bounding box (grows monotonically; a too-large
        #: box merely routes a query to the windowed slow path).
        self._min_col = self._min_row = 2**31 - 1
        self._max_col = self._max_row = -(2**31)

        #: Gather cache, same shape as the object backend's:
        #: (col, row, reach) -> (membership_version, radios).
        self._cache: Dict[Tuple[int, int, int], Tuple[int, List["PhyRadio"]]] = {}
        self._version = 0
        self._moving = 0
        self.rebins = 0
        self.refreshes = 0
        self.cache_hits = 0

    # ---------------------------------------------------------- properties
    @property
    def version(self) -> int:
        """Monotone change stamp (cell membership changes and teleports)."""
        return self._version

    @property
    def all_static(self) -> bool:
        """True when no tracked radio can move between notifications."""
        return self._moving == 0

    # ------------------------------------------------------------ mutation
    def add(self, radio: "PhyRadio", now: float) -> None:
        """Start tracking ``radio`` (binned immediately at time ``now``)."""
        mobility = radio.mobility
        row = self._legs.append_row()
        if row >= len(self._col):
            self._grow_side_arrays()
        self._radios.append(radio)
        self._mobs.append(mobility)
        self._seen_legs.append(None)
        self._row_by_node[radio.node_id] = row

        leg = getattr(mobility, "current_leg", None)
        max_speed = getattr(mobility, "max_speed", None)
        if leg is not None:
            self._is_leg[row] = True
            self._seen_legs[row] = leg
            self._legs.set_leg(row, leg)
            self._speed[row] = float(max_speed) if max_speed is not None else _UNBOUNDED
            if leg.arrive_time < self._next_roll:
                self._next_roll = leg.arrive_time
        else:
            self._is_leg[row] = False
            pos = mobility.position_at(now)
            self._legs.set_fixed(row, pos.x, pos.y)
            if max_speed is None:
                self._speed[row] = _UNBOUNDED
                self._scalar_rows.append(row)
            elif float(max_speed) > 0.0:
                # Bounded drift but no leg representation: horizons keep the
                # binning honest, scalar reads keep the positions honest.
                self._speed[row] = float(max_speed)
                self._scalar_rows.append(row)
            else:
                self._speed[row] = 0.0  # fixed: refreshed via subscribe only
        if self._speed[row] != 0.0:
            self._moving += 1
        # Protocol subscribe: teleports must both re-position and re-bin.
        mobility.subscribe(lambda r=row: self._on_teleport(r))
        self._epoch += 1
        self._pos_time = None  # new row: any cached position set is short
        self._bin_row(row, now)

    def _grow_side_arrays(self) -> None:
        cap = len(self._legs.ox)  # LegArrays just doubled
        for name, dtype in (
            ("_col", np.int32), ("_row", np.int32), ("_valid", None),
            ("_speed", None), ("_is_leg", bool),
        ):
            old = getattr(self, name)
            fresh = np.zeros(cap, dtype=dtype) if dtype is not None else np.zeros(cap)
            fresh[: len(old)] = old
            setattr(self, name, fresh)
        self._pos_x = np.empty(cap)
        self._pos_y = np.empty(cap)
        self._fan_dx = np.empty(cap)
        self._fan_dy = np.empty(cap)
        self._fan_d2 = np.empty(cap)
        self._fan_t = np.empty(cap)
        self._fan_hit = np.empty(cap, dtype=bool)
        self._fan_n = -1  # views point at the old arrays

    def invalidate_all(self) -> None:
        """Bump the version so stamped derived caches rebuild (liveness
        faults; geometry untouched — same contract as the object backend)."""
        self._version += 1

    def _on_teleport(self, row: int) -> None:
        """Subscribe callback: a discontinuity landed on ``row``."""
        self._version += 1  # same-cell teleports still move positions
        self._epoch += 1  # cached batch positions are stale
        self._valid[row] = -_INF  # re-bin at next refresh
        self._next_due = -_INF  # ... which the refresh guard must not skip
        self._dirty_rows.append(row)  # re-read the scalar position

    # ----------------------------------------------------------- positions
    def positions_at(self, now: float) -> Tuple["np.ndarray", "np.ndarray"]:
        """Every tracked radio's position at ``now`` (row = registration
        order), bitwise equal to the scalar ``position_at`` results.

        Cached per distinct ``(now, epoch)``; opaque rows disable the
        cache (their positions can change without notification).
        """
        if (
            # Deliberately exact: the cache key is the precise query
            # instant — a tolerance would serve stale positions.
            self._pos_time == now  # repro: noqa[DET-004] cache key, not a comparison
            and self._pos_epoch == self._epoch
            and not self._scalar_rows
        ):
            return self._pos_view
        self._sync_rows(now)
        x, y = batch_position_at(self._legs, now, self._pos_x, self._pos_y)
        self._pos_view = (x, y)
        self._pos_time = now
        self._pos_epoch = self._epoch
        return x, y

    def _sync_rows(self, now: float) -> None:
        """Bring leg/fixed/opaque rows up to date before interpolating."""
        legs = self._legs
        n = legs.size
        # A leg can only have rolled where the stored leg has arrived;
        # the scalar guard skips the vector scan until the earliest
        # stored arrival, then the identity check covers just those rows.
        if now >= self._next_roll:
            maybe = np.flatnonzero(self._is_leg[:n] & (legs.arrive[:n] <= now))
            if maybe.size:
                mobs = self._mobs
                seen = self._seen_legs
                for row in maybe.tolist():
                    leg = mobs[row].current_leg  # type: ignore[attr-defined]
                    if leg is not seen[row]:
                        seen[row] = leg
                        legs.set_leg(row, leg)
            is_leg = self._is_leg[:n]
            arrivals = legs.arrive[:n][is_leg]
            self._next_roll = float(arrivals.min()) if arrivals.size else _INF
        if self._dirty_rows:
            for row in self._dirty_rows:
                pos = self._mobs[row].position_at(now)  # type: ignore[attr-defined]
                legs.set_fixed(row, pos.x, pos.y)
            self._dirty_rows.clear()
        for row in self._scalar_rows:
            pos = self._mobs[row].position_at(now)  # type: ignore[attr-defined]
            legs.set_fixed(row, pos.x, pos.y)

    # ------------------------------------------------------------- binning
    def refresh(self, now: float) -> None:
        """Vectorized horizon sweep: re-bin every row whose binned cell
        may be stale at ``now`` (one compare instead of heap pops)."""
        self.refreshes += 1
        n = self._legs.size
        if n == 0:
            return
        if now < self._next_due:
            return  # no horizon can have expired yet (scalar guard)
        x, y = self.positions_at(now)
        due = np.flatnonzero(self._valid[:n] <= now)
        if not due.size:
            self._next_due = float(self._valid[:n].min())
            return
        s = self.cell_size
        if due.size <= 8:
            # A node that just crossed a cell edge re-bins with a tiny
            # margin, so 1-2 rows come due almost every query; the ~20
            # ufunc dispatches of the batch path dwarf the work.  Scalar
            # replica of the batch formulas (same doubles, same compare).
            for row in due.tolist():
                px, py = float(x[row]), float(y[row])
                col, crow = math.floor(px / s), math.floor(py / s)
                if col != self._col[row] or crow != self._row[row]:
                    self._version += 1
                    self._cache.clear()
                self._col[row] = col
                self._row[row] = crow
                if col < self._min_col:
                    self._min_col = col
                if col > self._max_col:
                    self._max_col = col
                if crow < self._min_row:
                    self._min_row = crow
                if crow > self._max_row:
                    self._max_row = crow
                speed = float(self._speed[row])
                if speed == _UNBOUNDED:
                    horizon = -_INF
                elif speed == 0.0:
                    horizon = _INF
                else:
                    margin = min(
                        px - col * s, (col + 1) * s - px,
                        py - crow * s, (crow + 1) * s - py,
                    )
                    horizon = now + margin / speed
                if self.refresh_quantum is not None and speed != _UNBOUNDED:
                    horizon = min(horizon, now + self.refresh_quantum)
                self._valid[row] = horizon
            self._next_due = float(self._valid[:n].min())
            self.rebins += int(due.size)
            return
        dx, dy = x[due], y[due]
        ncol, nrow = batch_cells(dx, dy, s)
        if np.any((ncol != self._col[due]) | (nrow != self._row[due])):
            self._version += 1
            self._cache.clear()
        self._col[due] = ncol
        self._row[due] = nrow
        self._min_col = min(self._min_col, int(ncol.min()))
        self._max_col = max(self._max_col, int(ncol.max()))
        self._min_row = min(self._min_row, int(nrow.min()))
        self._max_row = max(self._max_row, int(nrow.max()))
        margins = batch_cell_margins(dx, dy, ncol, nrow, s)
        spd = self._speed[due]
        positive = spd > 0.0
        horizon = np.where(
            positive,
            now + np.divide(margins, spd, out=np.zeros(len(due)), where=positive),
            np.where(spd == 0.0, _INF, -_INF),  # fixed: forever; unbounded: never
        )
        if self.refresh_quantum is not None:
            horizon = np.minimum(horizon, now + self.refresh_quantum)
            horizon = np.where(spd == _UNBOUNDED, -_INF, horizon)
        self._valid[due] = horizon
        self._next_due = float(self._valid[:n].min())
        self.rebins += int(due.size)

    def _bin_row(self, row: int, now: float) -> None:
        """Scalar first-time binning for one freshly added row."""
        self._sync_rows(now)
        legs = self._legs
        # Scalar replica of the batch kernel for a single row.
        if now >= legs.arrive[row]:
            px, py = float(legs.gx[row]), float(legs.gy[row])
        elif now <= legs.depart[row]:
            px, py = float(legs.ox[row]), float(legs.oy[row])
        else:  # pragma: no cover - adds happen at leg start in practice
            frac = (now - legs.depart[row]) / (legs.arrive[row] - legs.depart[row])
            px = float((legs.gx[row] - legs.ox[row]) * frac + legs.ox[row])
            py = float((legs.gy[row] - legs.oy[row]) * frac + legs.oy[row])
        s = self.cell_size
        col, crow = math.floor(px / s), math.floor(py / s)
        self._col[row] = col
        self._row[row] = crow
        if col < self._min_col:
            self._min_col = col
        if col > self._max_col:
            self._max_col = col
        if crow < self._min_row:
            self._min_row = crow
        if crow > self._max_row:
            self._max_row = crow
        speed = float(self._speed[row])
        if speed == _UNBOUNDED:
            horizon = -_INF
        elif speed == 0.0:
            horizon = _INF
        else:
            margin = min(px - col * s, (col + 1) * s - px, py - crow * s, (crow + 1) * s - py)
            horizon = now + margin / speed
        if self.refresh_quantum is not None and speed != _UNBOUNDED:
            horizon = min(horizon, now + self.refresh_quantum)
        self._valid[row] = horizon
        if horizon < self._next_due:
            self._next_due = horizon
        self._version += 1
        self._cache.clear()
        self.rebins += 1

    # ------------------------------------------------------------- queries
    def candidates_within(self, center: Position, rng: float, now: float) -> List["PhyRadio"]:
        """Superset of radios within ``rng`` of ``center``, registration
        order — the same contract as the object backend (callers filter
        by exact distance; the returned list is cache-owned)."""
        self.refresh(now)
        s = self.cell_size
        reach = max(1, math.ceil(rng / s)) if rng > 0 else 0
        qcol = math.floor(center.x / s)
        qrow = math.floor(center.y / s)
        key = (qcol, qrow, reach)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == self._version:
            self.cache_hits += 1
            return cached[1]
        n = self._legs.size
        hit = (np.abs(self._col[:n] - qcol) <= reach) & (
            np.abs(self._row[:n] - qrow) <= reach
        )
        radios = self._radios
        result = [radios[row] for row in np.flatnonzero(hit).tolist()]
        self._cache[key] = (self._version, result)
        return result

    def classify_fanout(
        self,
        sender_node_id: int,
        now: float,
        rng: float,
        radio_range2: float,
        interference_range2: float,
    ) -> FanOut:
        """The medium's transmit hot path, fully batched.

        One horizon sweep + one position kernel + one cell-window cut +
        one squared-distance sweep classify the whole fan-out.  Every
        float that escapes (sender position, deltas) is bitwise equal to
        what the object path computes radio-by-radio.
        """
        self.refresh(now)
        x, y = self.positions_at(now)
        srow = self._row_by_node[sender_node_id]
        sx = float(x[srow])
        sy = float(y[srow])
        s = self.cell_size
        reach = max(1, math.ceil(rng / s)) if rng > 0 else 0
        qcol = math.floor(sx / s)
        qrow = math.floor(sy / s)
        n = self._legs.size
        if (
            interference_range2 <= rng * rng
            or (
                qcol - reach <= self._min_col
                and self._max_col <= qcol + reach
                and qrow - reach <= self._min_row
                and self._max_row <= qrow + reach
            )
        ):
            # Classify the whole population directly, skipping the cell
            # window.  Sound whenever the window is a *superset* of the
            # interference disc — guaranteed when ``i2 <= rng**2`` (any
            # point within ``rng`` lies within ``ceil(rng/s)`` cells,
            # the medium's call shape), or when the window covers every
            # occupied cell (bounding-box check) — so the final
            # ``d2 <= i2`` filter yields identical membership, and
            # ascending row order *is* registration order: bitwise the
            # same FanOut, minus the mask/gather ufuncs.  Both paths
            # sweep all ``n`` cell entries anyway; this one has the
            # smaller constant.
            if self._fan_n != n:
                self._fan_views = (
                    self._fan_dx[:n], self._fan_dy[:n], self._fan_d2[:n],
                    self._fan_t[:n], self._fan_hit[:n],
                )
                self._fan_n = n
            dx, dy, d2, t, hit = self._fan_views
            np.subtract(x, sx, out=dx)
            np.subtract(y, sy, out=dy)
            np.multiply(dx, dx, out=d2)
            d2 += np.multiply(dy, dy, out=t)
            np.less_equal(d2, interference_range2, out=hit)
            hit[srow] = False
            rows = hit.nonzero()[0]
            return FanOut(
                sx,
                sy,
                rows.tolist(),
                dx[rows].tolist(),
                dy[rows].tolist(),
                (d2[rows] <= radio_range2).tolist(),
            )
        window = (np.abs(self._col[:n] - qcol) <= reach) & (
            np.abs(self._row[:n] - qrow) <= reach
        )
        cand = np.flatnonzero(window)
        dx = x[cand] - sx
        dy = y[cand] - sy
        d2 = dx * dx + dy * dy
        hit = (d2 <= interference_range2) & (cand != srow)
        return FanOut(
            sx,
            sy,
            cand[hit].tolist(),
            dx[hit].tolist(),
            dy[hit].tolist(),
            (d2[hit] <= radio_range2).tolist(),
        )

    def radio_at(self, row: int) -> "PhyRadio":
        """The radio registered at ``row`` (registration order)."""
        return self._radios[row]

    def stats(self) -> Dict[str, int]:
        """Index telemetry, same keys as the object backend."""
        n = self._legs.size
        cells = 0
        if n:
            packed = self._col[:n].astype(np.int64) << 32 | (
                self._row[:n].astype(np.int64) & 0xFFFFFFFF
            )
            cells = int(np.unique(packed).size)
        return {
            "radios": n,
            "cells": cells,
            "rebins": self.rebins,
            "refreshes": self.refreshes,
            "cache_hits": self.cache_hits,
        }
