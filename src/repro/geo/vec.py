"""2-D geometry primitives used throughout the routing stack.

Positions are immutable value objects.  Geographic routing compares
distances constantly, so :func:`distance2` (squared distance) is provided
to keep hot loops free of square roots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

__all__ = ["Position", "distance", "distance2", "midpoint", "bearing"]


@dataclass(frozen=True, slots=True)
class Position:
    """An (x, y) point in metres.

    ``slots=True``: positions are allocated once per distance check on the
    medium's fan-out path; dropping the per-instance ``__dict__`` keeps
    them cheap.
    """

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance2_to(self, other: "Position") -> float:
        """Squared Euclidean distance (no sqrt; for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Position":
        return Position(self.x + dx, self.y + dy)

    def towards(self, other: "Position", fraction: float) -> "Position":
        """The point ``fraction`` of the way from self to ``other``."""
        return Position(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def quantized(self, step: float) -> "Position":
        """Snap to a grid of ``step`` metres (used for location cloaking tests)."""
        if step <= 0:
            raise ValueError("step must be positive")
        return Position(round(self.x / step) * step, round(self.y / step) * step)

    def __iter__(self):
        yield self.x
        yield self.y

    def __repr__(self) -> str:
        return f"({self.x:.1f}, {self.y:.1f})"


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions."""
    return a.distance_to(b)


def distance2(a: Position, b: Position) -> float:
    """Squared Euclidean distance between two positions."""
    return a.distance2_to(b)


def midpoint(a: Position, b: Position) -> Position:
    """Midpoint of the segment ab."""
    return Position((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def bearing(a: Position, b: Position) -> float:
    """Angle of the vector a→b in radians, in (-pi, pi]."""
    return math.atan2(b.y - a.y, b.x - a.x)


def centroid(points: Iterable[Position]) -> Position:
    """Arithmetic mean of a non-empty collection of positions."""
    xs, ys, n = 0.0, 0.0, 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of empty collection")
    return Position(xs / n, ys / n)
