"""Link-layer addresses and pseudonyms.

Plain 802.11 identifies stations by 6-byte MAC addresses.  AGFW never
puts a real MAC address on the air: every frame is sent to the broadcast
address, and the *network-layer* header names the next hop by a 6-byte
**pseudonym** instead (paper: "the size of pseudonym is equal to that of
a typical MAC address").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MacAddress",
    "BROADCAST",
    "mac_for_node",
    "ADDRESS_BYTES",
    "PSEUDONYM_BYTES",
    "LAST_ATTEMPT",
]

ADDRESS_BYTES = 6

PSEUDONYM_BYTES = 6
"""AGFW pseudonym width; matches a MAC address per the paper's evaluation."""

LAST_ATTEMPT = b"\x00" * PSEUDONYM_BYTES
"""The reserved pseudonym 0: 'try opening the trapdoor, no more forwarding'."""


@dataclass(frozen=True)
class MacAddress:
    """A 6-byte link-layer address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << (8 * ADDRESS_BYTES)):
            raise ValueError("MAC address outside 48-bit range")

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << (8 * ADDRESS_BYTES)) - 1

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(ADDRESS_BYTES, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress({self})"


BROADCAST = MacAddress((1 << (8 * ADDRESS_BYTES)) - 1)
"""The predefined all-ones broadcast address AGFW frames are sent to."""


def mac_for_node(node_id: int) -> MacAddress:
    """A deterministic unicast MAC address for a simulated node id."""
    if node_id < 0:
        raise ValueError("node_id must be non-negative")
    address = MacAddress(node_id + 1)
    assert not address.is_broadcast
    return address
