"""Network substrate: radio medium, PHY, 802.11 DCF MAC, mobility, nodes."""

from repro.net.addresses import ADDRESS_BYTES, BROADCAST, MacAddress, mac_for_node
from repro.net.medium import RadioMedium, Transmission
from repro.net.mobility import (
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
    WaypointLeg,
)
from repro.net.node import Node, RouterAgent
from repro.net.packet import Packet, next_packet_uid
from repro.net.phy import PhyRadio

__all__ = [
    "ADDRESS_BYTES",
    "BROADCAST",
    "MacAddress",
    "mac_for_node",
    "RadioMedium",
    "Transmission",
    "MobilityModel",
    "RandomWaypointMobility",
    "StaticMobility",
    "WaypointLeg",
    "Node",
    "RouterAgent",
    "Packet",
    "next_packet_uid",
    "PhyRadio",
]
