"""IEEE 802.11 DCF MAC model."""

from repro.net.mac.constants import DEFAULT_DOT11, Dot11Params
from repro.net.mac.dcf import DcfMac, MacState, TxOp
from repro.net.mac.frames import FrameKind, MacFrame

__all__ = [
    "DEFAULT_DOT11",
    "Dot11Params",
    "DcfMac",
    "MacState",
    "TxOp",
    "FrameKind",
    "MacFrame",
]
