"""IEEE 802.11 DCF (Distributed Coordination Function) model.

Models the parts of DCF the paper's evaluation hinges on:

* **Unicast** (GPSR data): DIFS + slotted binary-exponential backoff,
  RTS/CTS virtual carrier sensing, SIFS-separated DATA and MAC-level ACK,
  retry with contention-window doubling, retry-limit drops.  The RTS/CTS
  handshake and its retries are exactly what makes GPSR-Greedy's latency
  climb at high density in Figure 1(b).
* **Broadcast** (all hellos; *all* AGFW transmissions): CSMA/CA only —
  DIFS + backoff then fire-and-forget.  No RTS/CTS, no MAC ACK, no
  retries; hidden-terminal collisions are the dominant loss source,
  which drives AGFW-noACK's poor delivery in Figure 1(a).
* **NAV**: stations overhearing RTS/CTS defer for the advertised
  duration.
* **EIFS** after corrupted receptions.

The implementation is a freeze/resume backoff machine driven by channel
busy/idle callbacks from :class:`~repro.net.phy.PhyRadio`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.net.addresses import BROADCAST, MacAddress
from repro.net.mac.constants import DEFAULT_DOT11, Dot11Params
from repro.net.mac.frames import FrameKind, MacFrame
from repro.net.packet import Packet
from repro.sim.engine import Event, Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.phy import PhyRadio

__all__ = ["DcfMac", "MacState", "TxOp"]

ReceiveCallback = Callable[[Packet, MacFrame], None]
CompleteCallback = Callable[[bool], None]


class MacState(Enum):
    IDLE = "idle"
    CONTEND = "contend"
    WAIT_CTS = "wait_cts"
    WAIT_ACK = "wait_ack"


@dataclass
class TxOp:
    """One queued network-layer packet and its transmission bookkeeping."""

    packet: Packet
    dst: MacAddress
    on_complete: Optional[CompleteCallback]
    use_rts: bool
    attempts: int = 0
    backoff_slots: Optional[int] = None
    fresh: bool = True
    enqueue_time: float = 0.0

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast


@dataclass
class MacStats:
    """Counters the benchmarks read out after a run."""

    data_tx: int = 0
    rts_tx: int = 0
    cts_tx: int = 0
    ack_tx: int = 0
    retries: int = 0
    retry_drops: int = 0
    queue_drops: int = 0
    down_drops: int = 0
    delivered_up: int = 0
    bytes_tx: int = 0


class DcfMac:
    """The MAC entity of one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        address: MacAddress,
        phy: "PhyRadio",
        rng: random.Random,
        params: Dot11Params = DEFAULT_DOT11,
        tracer: Optional[Tracer] = None,
        queue_limit: int = 50,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.address = address
        self.phy = phy
        self.rng = rng
        self.params = params
        self.tracer = tracer
        self.queue_limit = queue_limit
        self.receive_callback: Optional[ReceiveCallback] = None
        self.stats = MacStats()
        #: Lifecycle fault flag — set via :meth:`on_node_down`.
        self.down = False

        self._queue: Deque[TxOp] = deque()
        self._op: Optional[TxOp] = None
        self._state = MacState.IDLE
        self._cw = params.cw_min
        self._nav_until = 0.0

        self._difs_timer: Optional[Event] = None
        self._slot_timer: Optional[Event] = None
        self._wait_timer: Optional[Event] = None
        self._nav_timer: Optional[Event] = None

        #: Shared frame pool (``None`` = pool_mode "off": construct frames
        #: directly, the exact pre-pool path).
        self._frame_pool = phy.medium.frame_pool

        phy.mac = self

    def _make_frame(
        self,
        kind: FrameKind,
        dst: MacAddress,
        packet: Optional[Packet] = None,
        nav: float = 0.0,
    ) -> MacFrame:
        """Construct or pool-acquire a frame; one uid is drawn either way.

        A frame built here is transmitted at most once and recycled by the
        medium when its airtime ends; SIFS responses that never fire
        (crash or half-duplex clash in :meth:`_respond`) are simply
        abandoned to the garbage collector — the pool is a free list, not
        a reference counter, so an unreleased frame is safe.
        """
        pool = self._frame_pool
        if pool is not None:
            return pool.acquire_frame(kind, self.address, dst, packet=packet, nav=nav)
        return MacFrame(kind, self.address, dst, packet=packet, nav=nav)

    # =============================================================== sending
    def send(
        self,
        packet: Packet,
        dst: MacAddress,
        on_complete: Optional[CompleteCallback] = None,
    ) -> None:
        """Queue ``packet`` for transmission to ``dst``.

        ``on_complete(True)`` fires when a unicast is MAC-acknowledged or a
        broadcast leaves the antenna; ``on_complete(False)`` on retry-limit
        or queue overflow.  While the node is *down* (lifecycle fault)
        the send vanishes silently — a crashed station invokes nobody's
        callbacks.
        """
        if self.down:
            self.stats.down_drops += 1
            return
        if len(self._queue) >= self.queue_limit:
            self.stats.queue_drops += 1
            self._trace("mac.ifq_drop", packet_uid=packet.uid, packet_kind=packet.kind)
            if on_complete is not None:
                on_complete(False)
            return
        use_rts = (not dst.is_broadcast) and packet.size_bytes() >= self.params.rts_threshold_bytes
        op = TxOp(
            packet=packet,
            dst=dst,
            on_complete=on_complete,
            use_rts=use_rts,
            enqueue_time=self.sim.now,
        )
        self._queue.append(op)
        if self._op is None and self._state is MacState.IDLE:
            self._start_next()

    def _start_next(self) -> None:
        if self.down:
            return
        if self._op is not None or self._state is not MacState.IDLE:
            return
        if not self._queue:
            return
        self._op = self._queue.popleft()
        self._state = MacState.CONTEND
        op = self._op
        if op.fresh and not self._medium_blocked():
            op.backoff_slots = 0  # idle medium: transmit right after DIFS
        else:
            op.backoff_slots = self.rng.randint(0, self._cw)
        self._try_contend()

    # ============================================================ contention
    def _medium_blocked(self) -> bool:
        return self.phy.carrier_busy or self.sim.now < self._nav_until

    def _try_contend(self) -> None:
        """(Re)enter the DIFS-then-backoff sequence if the channel allows."""
        self._cancel(("_difs_timer", "_slot_timer"))
        if self._state is not MacState.CONTEND or self._op is None:
            return
        if self.phy.carrier_busy:
            return  # on_channel_idle will call us again
        if self.sim.now < self._nav_until:
            if self._nav_timer is None or self._nav_timer.cancelled:
                self._nav_timer = self.sim.schedule(
                    self._nav_until - self.sim.now, self._on_nav_expired, name="mac.nav"
                )
            return
        gap = self.params.eifs if self.phy.last_reception_corrupted else self.params.difs
        self._difs_timer = self.sim.schedule(gap, self._on_difs_done, name="mac.difs")

    def _on_nav_expired(self) -> None:
        self._nav_timer = None
        self._try_contend()

    def _on_difs_done(self) -> None:
        self._difs_timer = None
        if self._op is None or self._state is not MacState.CONTEND:
            return
        if self._op.backoff_slots == 0:
            self._transmit_current()
        else:
            self._schedule_slot()

    def _schedule_slot(self) -> None:
        self._slot_timer = self.sim.schedule(
            self.params.slot_time, self._on_slot, name="mac.slot"
        )

    def _on_slot(self) -> None:
        self._slot_timer = None
        op = self._op
        if op is None or self._state is not MacState.CONTEND:
            return
        assert op.backoff_slots is not None and op.backoff_slots > 0
        op.backoff_slots -= 1
        if op.backoff_slots == 0:
            self._transmit_current()
        else:
            self._schedule_slot()

    def on_channel_busy(self) -> None:
        """PHY callback: freeze DIFS/backoff timers."""
        self._cancel(("_difs_timer", "_slot_timer"))

    def on_channel_idle(self) -> None:
        """PHY callback: resume contention (also fires after own TX ends)."""
        if self._state is MacState.CONTEND:
            self._try_contend()

    # ======================================================= lifecycle faults
    def on_node_down(self) -> None:
        """Node crashed: volatile MAC state is gone.

        The interface queue, the in-flight op, every timer, the
        contention window, and the NAV are wiped — none of it survives a
        power cycle.  Dropped ops do *not* get completion callbacks: the
        router that registered them is crashing too (its volatile state
        is cleared by ``on_fault_down``), so nobody is alive to react.
        """
        self.down = True
        self._cancel(("_difs_timer", "_slot_timer", "_wait_timer", "_nav_timer"))
        dropped = len(self._queue) + (1 if self._op is not None else 0)
        if dropped:
            self.stats.down_drops += dropped
        self._queue.clear()
        self._op = None
        self._state = MacState.IDLE
        self._cw = self.params.cw_min
        self._nav_until = 0.0

    def on_node_up(self) -> None:
        """Node rebooted: resume from pristine (empty) MAC state.

        :meth:`on_node_down` already reset everything; carrier state is
        re-learned from the PHY's live energy bookkeeping on the next
        busy/idle transition.
        """
        self.down = False

    # ========================================================== transmission
    def _transmit_current(self) -> None:
        op = self._op
        assert op is not None
        self._cancel(("_difs_timer", "_slot_timer"))
        if op.use_rts:
            self._send_rts(op)
        else:
            self._send_data(op)

    def _send_rts(self, op: TxOp) -> None:
        nav = self.params.nav_for_rts(op.packet.size_bytes())
        frame = self._make_frame(FrameKind.RTS, op.dst, nav=nav)
        duration = frame.duration(self.params)
        self.phy.transmit(frame, duration)
        self.stats.rts_tx += 1
        self.stats.bytes_tx += self.params.rts_bytes
        self._state = MacState.WAIT_CTS
        self._wait_timer = self.sim.schedule(
            duration + self.params.cts_timeout, self._on_cts_timeout, name="mac.cts_to"
        )

    def _send_data(self, op: TxOp) -> None:
        nav = 0.0
        if not op.is_broadcast:
            nav = self.params.sifs + self.params.control_duration(self.params.ack_bytes)
        frame = self._make_frame(FrameKind.DATA, op.dst, packet=op.packet, nav=nav)
        duration = frame.duration(self.params)
        self.phy.transmit(frame, duration)
        self.stats.data_tx += 1
        self.stats.bytes_tx += self.params.mac_header_bytes + op.packet.size_bytes()
        tracer = self.tracer
        if tracer is not None and tracer.enabled_for("mac.tx"):
            # Guarded: mac.tx fires once per data frame — skip building the
            # payload dict entirely when nobody is listening.
            tracer.emit(
                self.sim.now,
                "mac.tx",
                node=self.node_id,
                packet_uid=op.packet.uid,
                packet_kind=op.packet.kind,
                dst=op.dst.value,
                broadcast=op.is_broadcast,
            )
        if op.is_broadcast:
            # Fire-and-forget: done when the frame leaves the antenna.
            self._state = MacState.IDLE
            self.sim.schedule(duration, lambda: self._complete(op, True), name="mac.bcast_done")
            self._op = None
        else:
            self._state = MacState.WAIT_ACK
            self._wait_timer = self.sim.schedule(
                duration + self.params.ack_timeout, self._on_ack_timeout, name="mac.ack_to"
            )

    def _send_data_after_cts(self) -> None:
        op = self._op
        if op is None:
            return
        self._send_data(op)

    # ============================================================== timeouts
    def _on_cts_timeout(self) -> None:
        self._wait_timer = None
        self._retry(limit=self.params.short_retry_limit)

    def _on_ack_timeout(self) -> None:
        self._wait_timer = None
        self._retry(limit=self.params.long_retry_limit + self.params.short_retry_limit)

    def _retry(self, limit: int) -> None:
        op = self._op
        if op is None:
            return
        op.attempts += 1
        self.stats.retries += 1
        if op.attempts >= limit:
            self.stats.retry_drops += 1
            self._trace(
                "mac.retry_drop", packet_uid=op.packet.uid, packet_kind=op.packet.kind
            )
            self._finish_op(op, False)
            return
        self._cw = min((self._cw + 1) * 2 - 1, self.params.cw_max)
        op.fresh = False
        op.backoff_slots = self.rng.randint(0, self._cw)
        self._state = MacState.CONTEND
        self._try_contend()

    # ============================================================= reception
    def on_frame(self, frame: MacFrame, tx) -> None:
        """PHY delivered an uncorrupted frame that was in radio range."""
        kind = frame.kind
        if kind is FrameKind.RTS:
            if frame.dst == self.address:
                cts_nav = max(
                    0.0,
                    frame.nav
                    - self.params.sifs
                    - self.params.control_duration(self.params.cts_bytes),
                )
                self._respond(self._make_frame(FrameKind.CTS, frame.src, nav=cts_nav))
            else:
                self._set_nav(frame.nav)
        elif kind is FrameKind.CTS:
            if frame.dst == self.address and self._state is MacState.WAIT_CTS:
                self._cancel(("_wait_timer",))
                self.sim.schedule(self.params.sifs, self._send_data_after_cts, name="mac.sifs_data")
            elif frame.dst != self.address:
                self._set_nav(frame.nav)
        elif kind is FrameKind.DATA:
            if frame.dst == self.address:
                self._respond(self._make_frame(FrameKind.ACK, frame.src))
                self._deliver_up(frame)
            elif frame.dst.is_broadcast:
                self._deliver_up(frame)
            else:
                self._set_nav(frame.nav)
        elif kind is FrameKind.ACK:
            if frame.dst == self.address and self._state is MacState.WAIT_ACK:
                self._cancel(("_wait_timer",))
                op = self._op
                assert op is not None
                self._finish_op(op, True)

    def _deliver_up(self, frame: MacFrame) -> None:
        if frame.packet is None:
            return
        self.stats.delivered_up += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled_for("mac.rx"):
            tracer.emit(
                self.sim.now,
                "mac.rx",
                node=self.node_id,
                packet_uid=frame.packet.uid,
                packet_kind=frame.packet.kind,
                src=frame.src.value,
            )
        if self.receive_callback is not None:
            self.receive_callback(frame.packet, frame)

    def _respond(self, frame: MacFrame) -> None:
        """Send a SIFS-spaced response (CTS or ACK) without carrier sensing."""

        def _fire() -> None:
            if self.down:  # crashed between reception and the SIFS response
                return
            if self.phy._own_tx is not None:  # half-duplex clash; response lost
                return
            duration = frame.duration(self.params)
            self.phy.transmit(frame, duration)
            if frame.kind is FrameKind.CTS:
                self.stats.cts_tx += 1
                self.stats.bytes_tx += self.params.cts_bytes
            else:
                self.stats.ack_tx += 1
                self.stats.bytes_tx += self.params.ack_bytes

        self.sim.schedule(self.params.sifs, _fire, priority=-2, name="mac.sifs_resp")

    def _set_nav(self, nav: float) -> None:
        if nav <= 0:
            return
        until = self.sim.now + nav
        if until > self._nav_until:
            self._nav_until = until
        self._cancel(("_difs_timer", "_slot_timer"))

    # ============================================================ completion
    def _finish_op(self, op: TxOp, success: bool) -> None:
        self._op = None
        self._state = MacState.IDLE
        self._cw = self.params.cw_min
        self._complete(op, success)
        self._start_next()

    def _complete(self, op: TxOp, success: bool) -> None:
        if self.down:  # crashed mid-flight: nobody is alive to notify
            return
        if op.on_complete is not None:
            op.on_complete(success)
        if self._op is None and self._state is MacState.IDLE:
            self._start_next()

    # ================================================================= misc
    def _cancel(self, names: tuple[str, ...]) -> None:
        for name in names:
            timer: Optional[Event] = getattr(self, name)
            if timer is not None:
                timer.cancel()
                setattr(self, name, None)

    def _trace(self, category: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.sim.now, category, node=self.node_id, **data)

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._op is not None else 0)
