"""IEEE 802.11 (1999, DSSS PHY) timing and size constants.

Values follow the DSSS PHY used by NS-2's CMU wireless extensions at the
time of the paper: 2 Mbit/s data rate, 1 Mbit/s for control frames and
PLCP preamble/header, 20 us slots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Dot11Params", "DEFAULT_DOT11"]

MICRO = 1e-6


@dataclass(frozen=True)
class Dot11Params:
    """All MAC/PHY constants in one immutable bundle (times in seconds)."""

    slot_time: float = 20 * MICRO
    sifs: float = 10 * MICRO
    data_rate: float = 2e6  # bit/s for MAC payloads
    basic_rate: float = 1e6  # bit/s for control frames (RTS/CTS/ACK)
    plcp_overhead: float = 192 * MICRO  # preamble + PLCP header, at 1 Mbit/s

    cw_min: int = 31
    cw_max: int = 1023
    short_retry_limit: int = 7  # RTS attempts
    long_retry_limit: int = 4  # DATA attempts (post-RTS)

    mac_header_bytes: int = 28  # 24-byte header + 4-byte FCS
    rts_bytes: int = 20
    cts_bytes: int = 14
    ack_bytes: int = 14

    rts_threshold_bytes: int = 0  # 0 = RTS/CTS for every unicast (NS-2 default off=3000; GPSR studies enable it)

    broadcast_at_basic_rate: bool = False
    """When True, group-addressed frames use the basic rate (multirate
    802.11 practice).  Default False: the paper treats AGFW's local
    broadcast as "equivalent to a unicast" apart from addressing, and the
    1999-era single-rate configurations broadcast at the data rate."""

    @property
    def difs(self) -> float:
        """DIFS = SIFS + 2 slots."""
        return self.sifs + 2 * self.slot_time

    @property
    def eifs(self) -> float:
        """EIFS after a corrupted reception: DIFS + SIFS + ACK airtime."""
        return self.difs + self.sifs + self.control_duration(self.ack_bytes)

    # ------------------------------------------------------------ durations
    def control_duration(self, size_bytes: int) -> float:
        """Airtime of a control frame (basic rate + PLCP)."""
        return self.plcp_overhead + (size_bytes * 8) / self.basic_rate

    def data_duration(self, payload_bytes: int, broadcast: bool = False) -> float:
        """Airtime of a data frame: PLCP + MAC header + payload.

        Broadcast frames use the basic rate when
        :attr:`broadcast_at_basic_rate` is set.
        """
        bits = (self.mac_header_bytes + payload_bytes) * 8
        rate = (
            self.basic_rate
            if broadcast and self.broadcast_at_basic_rate
            else self.data_rate
        )
        return self.plcp_overhead + bits / rate

    @property
    def cts_timeout(self) -> float:
        """How long a sender waits for CTS before counting a retry."""
        return self.sifs + self.control_duration(self.cts_bytes) + 2 * self.slot_time

    @property
    def ack_timeout(self) -> float:
        """How long a sender waits for the MAC-level ACK."""
        return self.sifs + self.control_duration(self.ack_bytes) + 2 * self.slot_time

    def nav_for_rts(self, payload_bytes: int) -> float:
        """NAV advertised by an RTS: CTS + DATA + ACK plus three SIFS."""
        return (
            3 * self.sifs
            + self.control_duration(self.cts_bytes)
            + self.data_duration(payload_bytes)
            + self.control_duration(self.ack_bytes)
        )

    def nav_for_cts(self, payload_bytes: int) -> float:
        """NAV advertised by a CTS: DATA + ACK plus two SIFS."""
        return (
            2 * self.sifs
            + self.data_duration(payload_bytes)
            + self.control_duration(self.ack_bytes)
        )


DEFAULT_DOT11 = Dot11Params()
