"""MAC frames: the unit the radio medium actually carries.

A frame wraps at most one network-layer :class:`~repro.net.packet.Packet`
(control frames carry none).  ``nav`` is the duration field other
stations use for virtual carrier sensing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.mac.constants import Dot11Params
from repro.net.packet import Packet

__all__ = ["FrameKind", "MacFrame", "next_frame_uid"]

_frame_uid = itertools.count(1)


def next_frame_uid() -> int:
    """Draw the next frame uid.

    The same counter feeds both fresh constructions (via the dataclass
    factory below) and :class:`~repro.net.pool.FramePool` re-stamps, so
    the trace-visible uid sequence is identical with pooling on or off.
    """
    return next(_frame_uid)


class FrameKind(Enum):
    """802.11 frame types modeled by the DCF."""

    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"


@dataclass(slots=True)
class MacFrame:
    """One frame on the air (``slots=True``: hot-path allocation)."""

    kind: FrameKind
    src: MacAddress
    dst: MacAddress
    packet: Optional[Packet] = None
    nav: float = 0.0
    uid: int = field(default_factory=lambda: next(_frame_uid))
    #: Pool recycling stamp (:mod:`repro.net.pool`): 0 = never pooled,
    #: positive = live acquire stamp, negative = sitting in a free list.
    generation: int = 0

    def duration(self, params: Dot11Params) -> float:
        """Airtime of this frame under ``params``."""
        if self.kind is FrameKind.RTS:
            return params.control_duration(params.rts_bytes)
        if self.kind is FrameKind.CTS:
            return params.control_duration(params.cts_bytes)
        if self.kind is FrameKind.ACK:
            return params.control_duration(params.ack_bytes)
        payload = self.packet.size_bytes() if self.packet is not None else 0
        return params.data_duration(payload, broadcast=self.dst.is_broadcast)

    @property
    def is_control(self) -> bool:
        return self.kind is not FrameKind.DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = f", pkt={self.packet.kind}#{self.packet.uid}" if self.packet else ""
        return f"MacFrame({self.kind.value} {self.src}->{self.dst}{inner})"
