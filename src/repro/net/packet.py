"""Network-layer packet base class.

Concrete PDU types live with the protocol that owns them (GPSR beacons in
:mod:`repro.routing.gpsr`, AGFW data/ACK in :mod:`repro.core.agfw`, ALS
messages in :mod:`repro.core.als`).  All of them share:

* a process-unique ``uid`` used by tracing and the metric collectors,
* a byte-size contract (``header_bytes`` + ``payload_bytes``) so the MAC
  can compute airtime and the harness can account overhead,
* a ``clone_for_forwarding`` hook: forwarding mutates per-hop fields
  (e.g. the next-hop pseudonym) without aliasing the in-flight object.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, ClassVar

__all__ = ["Packet", "next_packet_uid"]

_uid_counter = itertools.count(1)


def next_packet_uid() -> int:
    """A process-unique, monotonically increasing packet id."""
    return next(_uid_counter)


@dataclass
class Packet:
    """Base network-layer PDU.

    Subclasses set ``KIND`` and implement :meth:`header_bytes`.
    ``payload_bytes`` is the application payload riding in the packet
    (zero for control messages).
    """

    KIND: ClassVar[str] = "packet"

    payload_bytes: int = 0
    uid: int = field(default_factory=next_packet_uid)

    def header_bytes(self) -> int:
        """Protocol header size in bytes (subclass responsibility)."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Total network-layer size: header plus payload."""
        return self.header_bytes() + self.payload_bytes

    @property
    def kind(self) -> str:
        return type(self).KIND

    def clone_for_forwarding(self, **changes: Any) -> "Packet":
        """A copy with per-hop fields replaced; the ``uid`` is preserved.

        Keeping the uid stable across hops is what lets the metric
        collectors recognize end-to-end delivery of "the same" packet.
        """
        return dataclasses.replace(self, **changes)
