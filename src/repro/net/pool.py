"""Frame / reception-record pooling for the PHY/MAC hot path.

Every transmission allocates a :class:`~repro.net.mac.frames.MacFrame`,
and every radio it impinges on allocates per-reception bookkeeping.  At
150 nodes a broadcast frame touches ~everyone, so the reception-side
churn dominates: ~150 receptions per frame, each previously spread over
*two* dicts plus a set in :class:`~repro.net.phy.PhyRadio`.  This module
provides:

* :class:`Reception` — one consolidated record (transmission, distance,
  corrupted flag) replacing the ``_impinging``/``_distances``/
  ``_corrupted`` triple, recycled through small per-radio free lists;
* :class:`FramePool` — a free list of ``MacFrame`` objects with
  generation-stamped recycling, so MAC frames stop being a per-attempt
  allocation.

Byte-identity contract
----------------------
Frame *uids* must not notice pooling: a fresh ``MacFrame`` draws its uid
from the module counter via the dataclass factory, so a recycled frame
is re-stamped from the **same** counter
(:func:`~repro.net.mac.frames.next_frame_uid`).  Either way each acquire
consumes exactly one uid, and the uid sequence — which appears in traces
— is identical with the pool on or off.

Generation stamps
-----------------
Every pooled object carries a ``generation``: positive while live
(stamped at acquire from a monotone counter), negated at release.  A
double release therefore raises :class:`PoolCoherenceError` in every
mode, and holders that cache a record across a release can detect the
recycling by comparing stamps.  ``mode="cross"`` additionally scrubs
payload fields at release and verifies the scrub at the next acquire —
catching writes to freed objects — while the end-to-end proof (traces
byte-identical with the pool on, off, and cross) lives in
``tests/test_frame_pool.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.net.addresses import MacAddress
from repro.net.mac.frames import FrameKind, MacFrame, next_frame_uid
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.medium import Transmission

__all__ = ["FramePool", "Reception", "PoolCoherenceError", "POOL_MODES", "validate_pool_mode"]

POOL_MODES = ("off", "on", "cross")


def validate_pool_mode(mode: str) -> str:
    """Validate a ``pool_mode`` value, returning it for chaining."""
    if mode not in POOL_MODES:
        raise ValueError(f"pool_mode must be one of {POOL_MODES}")
    return mode


class PoolCoherenceError(AssertionError):
    """A pooled object was released twice, or mutated while free."""


class Reception:
    """Per-(radio, transmission) reception bookkeeping, pool-recycled.

    Consolidates what the unpooled :class:`~repro.net.phy.PhyRadio` keeps
    in three containers: the impinging transmission, the
    receiver-to-sender distance, and the corrupted verdict.
    """

    __slots__ = ("tx", "distance", "corrupted", "generation")

    def __init__(
        self,
        tx: Optional["Transmission"] = None,
        distance: float = 0.0,
        corrupted: bool = False,
    ) -> None:
        self.tx = tx
        self.distance = distance
        self.corrupted = corrupted
        self.generation = 0


class FramePool:
    """Free lists with generation-stamped recycling (one per medium).

    ``mode`` is ``"on"`` (recycle) or ``"cross"`` (recycle + scrub/verify
    every object across the free boundary).  ``"off"`` never constructs a
    pool at all — the medium holds ``None`` and every consumer runs the
    exact pre-pool allocation path.
    """

    __slots__ = (
        "mode", "checked", "_frames", "_recs", "_generation",
        "frames_reused", "frames_created", "recs_reused", "recs_created",
    )

    def __init__(self, mode: str = "on") -> None:
        validate_pool_mode(mode)
        if mode == "off":
            raise ValueError("mode 'off' means no pool — pass pool_mode to the medium instead")
        self.mode = mode
        self.checked = mode == "cross"
        self._frames: List[MacFrame] = []
        self._recs: List[Reception] = []
        self._generation = 0
        self.frames_reused = 0
        self.frames_created = 0
        self.recs_reused = 0
        self.recs_created = 0

    # -------------------------------------------------------------- frames
    def acquire_frame(
        self,
        kind: FrameKind,
        src: MacAddress,
        dst: MacAddress,
        packet: Optional[Packet] = None,
        nav: float = 0.0,
    ) -> MacFrame:
        """A ready-to-send frame: recycled when possible, else constructed.

        Exactly one uid is drawn either way, keeping the trace-visible
        uid sequence identical to unpooled construction.
        """
        free = self._frames
        if free:
            frame = free.pop()
            if self.checked and (frame.packet is not None or frame.nav != 0.0):
                raise PoolCoherenceError(
                    f"freed frame uid={frame.uid} was mutated while in the pool"
                )
            frame.kind = kind
            frame.src = src
            frame.dst = dst
            frame.packet = packet
            frame.nav = nav
            frame.uid = next_frame_uid()
            self.frames_reused += 1
        else:
            frame = MacFrame(kind, src, dst, packet=packet, nav=nav)
            self.frames_created += 1
        self._generation += 1
        frame.generation = self._generation
        return frame

    def release_frame(self, frame: MacFrame) -> None:
        """Return ``frame`` to the free list (its airtime is over).

        Accepts donated frames that were constructed directly
        (``generation == 0``); raises on a second release of the same
        object.
        """
        if frame.generation < 0:
            raise PoolCoherenceError(f"frame uid={frame.uid} released twice")
        frame.generation = -(frame.generation or 1)
        if self.checked:
            frame.packet = None
            frame.nav = 0.0
        self._frames.append(frame)

    # ----------------------------------------------------------- receptions
    def acquire_reception(
        self, tx: "Transmission", distance: float, corrupted: bool
    ) -> Reception:
        """Checked-mode reception acquire (the ``"on"`` fast path inlines
        the free-list pop in :class:`~repro.net.phy.PhyRadio` instead)."""
        free = self._recs
        if free:
            rec = free.pop()
            if self.checked and (
                rec.generation >= 0 or rec.tx is not None or rec.corrupted
            ):
                raise PoolCoherenceError("freed reception record was mutated while in the pool")
            self.recs_reused += 1
        else:
            rec = Reception()
            self.recs_created += 1
        self._generation += 1
        rec.generation = self._generation
        rec.tx = tx
        rec.distance = distance
        rec.corrupted = corrupted
        return rec

    def release_reception(self, rec: Reception) -> None:
        """Checked-mode reception release (scrubs payload fields)."""
        if rec.generation < 0:
            raise PoolCoherenceError("reception record released twice")
        rec.generation = -(rec.generation or 1)
        rec.tx = None
        rec.distance = 0.0
        rec.corrupted = False
        self._recs.append(rec)

    # ------------------------------------------------------------ telemetry
    def stats(self) -> dict:
        """Reuse/creation counters (benchmarks and tests read these)."""
        return {
            "frames_reused": self.frames_reused,
            "frames_created": self.frames_created,
            "recs_reused": self.recs_reused,
            "recs_created": self.recs_created,
            "frames_free": len(self._frames),
            "recs_free": len(self._recs),
        }
