"""The shared wireless medium.

A binary-interference (unit-disk) channel model in the NS-2 tradition:

* a frame is *deliverable* to receivers within ``radio_range`` (250 m),
* it *occupies the channel* (carrier sense, interference) out to
  ``interference_range`` (550 m — NS-2's carrier-sense/interference
  default),
* a reception is corrupted when any other transmission impinges on the
  receiver during the reception window, or when the receiver itself
  transmits — this is what produces the hidden-terminal losses that drive
  the paper's Figure 1(a) for broadcast (no-RTS/CTS) traffic.

Node positions are sampled once per frame at transmission start; frames
last << 10 ms while nodes move <= 20 m/s, so intra-frame motion is
negligible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.geo.vec import Position
from repro.net.mac.frames import MacFrame
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.phy import PhyRadio

__all__ = ["Transmission", "RadioMedium"]

_tx_uid = itertools.count(1)


@dataclass
class Transmission:
    """One frame in flight."""

    uid: int
    sender_id: int
    sender_pos: Position
    frame: MacFrame
    start: float
    end: float
    corrupted_at: Dict[int, bool] = field(default_factory=dict)
    deliverable_to: Dict[int, bool] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class RadioMedium:
    """Connects all :class:`~repro.net.phy.PhyRadio` instances.

    The medium owns range semantics; radios own per-receiver reception
    state.  ``transmit`` is called by a radio that has already won its
    MAC-level contention.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        radio_range: float = 250.0,
        interference_range: float = 550.0,
    ) -> None:
        if interference_range < radio_range:
            raise ValueError("interference range must cover the radio range")
        self.sim = sim
        self.tracer = tracer
        self.radio_range = radio_range
        self.interference_range = interference_range
        self._radios: List["PhyRadio"] = []
        self._radio_range2 = radio_range * radio_range
        self._interference_range2 = interference_range * interference_range
        self.frames_sent = 0

    def register(self, radio: "PhyRadio") -> None:
        self._radios.append(radio)

    @property
    def radios(self) -> List["PhyRadio"]:
        return list(self._radios)

    # ------------------------------------------------------------- transmit
    def transmit(self, sender: "PhyRadio", frame: MacFrame, duration: float) -> Transmission:
        """Put ``frame`` on the air for ``duration`` seconds.

        Returns the transmission record (its ``end`` is when the sender's
        radio frees up).  Reception outcomes are decided when it ends.
        """
        now = self.sim.now
        sender_pos = sender.position
        tx = Transmission(
            uid=next(_tx_uid),
            sender_id=sender.node_id,
            sender_pos=sender_pos,
            frame=frame,
            start=now,
            end=now + duration,
        )
        self.frames_sent += 1
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "phy.tx",
                node=sender.node_id,
                frame_kind=frame.kind.value,
                frame_uid=frame.uid,
                dst=frame.dst.value,
                packet_uid=frame.packet.uid if frame.packet else None,
                packet_kind=frame.packet.kind if frame.packet else None,
                packet_obj=frame.packet,
                pos=sender_pos.as_tuple(),
                duration=duration,
            )

        sender.begin_transmit(tx)
        affected: List["PhyRadio"] = []
        for radio in self._radios:
            if radio is sender:
                continue
            d2 = radio.position.distance2_to(sender_pos)
            if d2 <= self._interference_range2:
                tx.deliverable_to[radio.node_id] = d2 <= self._radio_range2
                radio.on_tx_start(tx)
                affected.append(radio)

        def _finish() -> None:
            sender.end_transmit(tx)
            for radio in affected:
                radio.on_tx_end(tx)

        self.sim.schedule(duration, _finish, priority=-1, name="phy.tx_end")
        return tx

    # -------------------------------------------------------------- queries
    def neighbors_within(self, radio: "PhyRadio", rng: float) -> List["PhyRadio"]:
        """Radios within ``rng`` metres of ``radio`` (excluding itself)."""
        center = radio.position
        limit = rng * rng
        return [
            other
            for other in self._radios
            if other is not radio and other.position.distance2_to(center) <= limit
        ]
