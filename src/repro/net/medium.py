"""The shared wireless medium.

A binary-interference (unit-disk) channel model in the NS-2 tradition:

* a frame is *deliverable* to receivers within ``radio_range`` (250 m),
* it *occupies the channel* (carrier sense, interference) out to
  ``interference_range`` (550 m — NS-2's carrier-sense/interference
  default),
* a reception is corrupted when any other transmission impinges on the
  receiver during the reception window, or when the receiver itself
  transmits — this is what produces the hidden-terminal losses that drive
  the paper's Figure 1(a) for broadcast (no-RTS/CTS) traffic.

Node positions are sampled once per frame at transmission start; frames
last << 10 ms while nodes move <= 20 m/s, so intra-frame motion is
negligible.

Fan-out cost
------------
AGFW traffic is broadcast-only at the MAC (no RTS/CTS), so per-frame
fan-out is *the* hot path of every experiment.  By default the medium
resolves fan-out through a :class:`~repro.geo.spatial.SpatialIndex`
(uniform grid, cell = interference range, mobility-aware lazy
rebucketing) instead of scanning every registered radio — O(radios in
the neighbouring cells) instead of O(N), with **bit-identical**
delivery/corruption outcomes.  ``index_mode`` selects:

* ``"grid"``  — spatial index (default),
* ``"brute"`` — the original full scan,
* ``"cross"`` — run the index *and* verify it against the full scan on
  every query, raising on any divergence (the equivalence regression
  harness).

Two further orthogonal axes vectorize the hot path (PR 7), each behind
the same byte-identical discipline:

* ``spatial_mode`` — ``"obj"`` keeps the object-graph index above;
  ``"array"`` swaps in :class:`repro.geo.spatial_array.ArraySpatialIndex`
  (numpy batch kernels; the whole fan-out classified in a few ufunc
  sweeps) and feeds each receiver its precomputed sender distance;
  ``"cross"`` runs the array path and verifies the full classification —
  membership, order, deliverability, and bitwise distances — against the
  scalar object computation on every transmission.  Falls back to
  ``"obj"`` when numpy is unavailable or ``index_mode="brute"`` pins the
  reference scan.
* ``pool_mode`` — ``"off"`` allocates per transmission as always;
  ``"on"`` recycles MAC frames through a :class:`repro.net.pool.FramePool`
  and consolidates each radio's reception bookkeeping into pooled
  records; ``"cross"`` additionally scrub-verifies every object across
  the free boundary.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.geo import vecops
from repro.geo.spatial import SpatialIndex
from repro.geo.spatial_array import ArraySpatialIndex, FanOut
from repro.geo.vec import Position
from repro.net.mac.frames import MacFrame
from repro.net.pool import FramePool, validate_pool_mode
from repro.sim.engine import MEDIUM_ACTOR, Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.phy import PhyRadio
    from repro.sim.keyed import KeyedSimulator
    from repro.sim.shard.worker import ShardBridge

__all__ = [
    "Transmission",
    "RadioMedium",
    "INDEX_MODES",
    "SPATIAL_MODES",
    "SpatialCoherenceError",
    "validate_spatial_mode",
]

INDEX_MODES = ("grid", "brute", "cross")
SPATIAL_MODES = ("obj", "array", "cross")

#: Key-scope tag for the sender's transmission-completion work; sorts
#: before every receiver tag ``(node_id,)`` because node ids are >= 0.
_SENDER_SCOPE = (-1,)


def validate_spatial_mode(mode: str) -> str:
    """Validate a ``spatial_mode`` value, returning it for chaining."""
    if mode not in SPATIAL_MODES:
        raise ValueError(f"spatial_mode must be one of {SPATIAL_MODES}")
    return mode


class SpatialCoherenceError(AssertionError):
    """The vectorized fan-out diverged from the scalar object path."""


@dataclass(slots=True)
class Transmission:
    """One frame in flight.

    ``deliverable_to`` / ``corrupted_at`` are node-id *sets* — membership
    is the only question receivers ever ask.
    """

    uid: int
    sender_id: int
    sender_pos: Position
    frame: MacFrame
    start: float
    end: float
    corrupted_at: Set[int] = field(default_factory=set)
    deliverable_to: Set[int] = field(default_factory=set)

    @property
    def duration(self) -> float:
        return self.end - self.start


class RadioMedium:
    """Connects all :class:`~repro.net.phy.PhyRadio` instances.

    The medium owns range semantics; radios own per-receiver reception
    state.  ``transmit`` is called by a radio that has already won its
    MAC-level contention.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        radio_range: float = 250.0,
        interference_range: float = 550.0,
        index_mode: str = "grid",
        index_cell_size: Optional[float] = None,
        index_refresh_quantum: Optional[float] = None,
        spatial_mode: str = "obj",
        pool_mode: str = "off",
    ) -> None:
        if interference_range < radio_range:
            raise ValueError("interference range must cover the radio range")
        if index_mode not in INDEX_MODES:
            raise ValueError(f"index_mode must be one of {INDEX_MODES}")
        validate_spatial_mode(spatial_mode)
        validate_pool_mode(pool_mode)
        self.sim = sim
        self.tracer = tracer
        self.radio_range = radio_range
        self.interference_range = interference_range
        self.index_mode = index_mode
        self.spatial_mode = spatial_mode
        self.pool_mode = pool_mode
        self._radios: List["PhyRadio"] = []
        self._radio_range2 = radio_range * radio_range
        self._interference_range2 = interference_range * interference_range
        self.frames_sent = 0
        # Per-medium so a second simulation in the same process restarts at
        # uid 1 and trace output stays identical run-to-run (previously a
        # module-global leaked state across Simulator instances).
        self._tx_uid = itertools.count(1)
        #: Frame/reception pool; ``None`` (pool_mode="off") keeps every
        #: consumer on the exact pre-pool allocation path.
        self.frame_pool: Optional[FramePool] = (
            FramePool(pool_mode) if pool_mode != "off" else None
        )
        # Backend resolution: the array backend replaces the grid; the
        # brute reference scan and numpy-less installs keep the object
        # path (graceful fallback, surfaced via spatial_effective).
        use_array = (
            spatial_mode != "obj" and index_mode != "brute" and vecops.HAVE_NUMPY
        )
        self.spatial_effective = spatial_mode if use_array else "obj"
        cell = index_cell_size if index_cell_size is not None else interference_range
        self._aindex: Optional[ArraySpatialIndex] = (
            ArraySpatialIndex(cell_size=cell, refresh_quantum=index_refresh_quantum)
            if use_array
            else None
        )
        self._index: Optional[SpatialIndex] = None
        if not use_array and index_mode != "brute":
            self._index = SpatialIndex(cell_size=cell, refresh_quantum=index_refresh_quantum)
        #: Static fan-out memo: sender node id -> (index version, sender
        #: (x, y), affected radios in registration order, deliverable ids,
        #: per-receiver distances — ``None`` on the object path, which
        #: recomputes them in ``on_tx_start`` exactly as the seed did).
        #: Consulted only while the index proves every radio static; any
        #: membership change or teleport bumps the version and drops it.
        self._fanout_memo: Dict[
            int,
            Tuple[
                int,
                Tuple[float, float],
                List["PhyRadio"],
                FrozenSet[int],
                Optional[List[float]],
            ],
        ] = {}
        # Sharded execution (repro.sim.shard): when set, fan-out only
        # touches owned radios, transmission completion runs under
        # per-receiver key scopes, and every local transmission is
        # announced to the bridge for cross-border mirroring.
        self._shard_owned: Optional[FrozenSet[int]] = None
        self._shard_keyed: Optional["KeyedSimulator"] = None
        self._shard_bridge: Optional["ShardBridge"] = None

    def set_shard_context(
        self,
        keyed_sim: "KeyedSimulator",
        owned: FrozenSet[int],
        bridge: Optional["ShardBridge"],
    ) -> None:
        """Enter sharded operation (called once by the shard worker)."""
        self._shard_keyed = keyed_sim
        self._shard_owned = owned
        self._shard_bridge = bridge

    def register(self, radio: "PhyRadio") -> None:
        self._radios.append(radio)
        if self._aindex is not None:
            self._aindex.add(radio, self.sim.now)
        elif self._index is not None:
            self._index.add(radio, self.sim.now)

    @property
    def radios(self) -> Sequence["PhyRadio"]:
        """All registered radios, in registration order.

        A live read-only view (not a defensive copy — this sits on hot
        paths); callers must not mutate it.
        """
        return self._radios

    # ------------------------------------------------------------ candidates
    def _candidates(self, center: Position, rng: float) -> Sequence["PhyRadio"]:
        """Radios that may lie within ``rng`` of ``center`` (superset,
        registration order), per the configured index mode."""
        if self._aindex is not None:
            return self._aindex.candidates_within(center, rng, self.sim.now)
        if self._index is None:
            return self._radios
        return self._index.candidates_within(center, rng, self.sim.now)

    def _cross_check(
        self,
        center: Position,
        rng: float,
        selected: List["PhyRadio"],
        exclude: Optional["PhyRadio"],
    ) -> None:
        """Verify an index-derived result against the brute-force scan."""
        limit = rng * rng
        brute = [
            radio
            for radio in self._radios
            if radio is not exclude and radio.position.distance2_to(center) <= limit
        ]
        if brute != selected:  # object identity + order — the full contract
            expected = [r.node_id for r in brute]
            got = [r.node_id for r in selected]
            raise RuntimeError(
                "spatial index diverged from brute-force scan at "
                f"t={self.sim.now:.9f}: expected {expected}, got {got}"
            )

    # ------------------------------------------------------------- transmit
    def transmit(self, sender: "PhyRadio", frame: MacFrame, duration: float) -> Transmission:
        """Put ``frame`` on the air for ``duration`` seconds.

        Returns the transmission record (its ``end`` is when the sender's
        radio frees up).  Reception outcomes are decided when it ends.
        """
        now = self.sim.now
        aindex = self._aindex
        fan: Optional[FanOut] = None
        if aindex is not None:
            # One batched sweep classifies the whole fan-out; the sender's
            # own position comes from the same kernel (bitwise equal to
            # the scalar interpolation, see repro.geo.vecops).
            fan = aindex.classify_fanout(
                sender.node_id,
                now,
                self.interference_range,
                self._radio_range2,
                self._interference_range2,
            )
            sender_pos = Position(fan.sx, fan.sy)
        else:
            sender_pos = sender.position
        tx = Transmission(
            uid=next(self._tx_uid),
            sender_id=sender.node_id,
            sender_pos=sender_pos,
            frame=frame,
            start=now,
            end=now + duration,
        )
        self.frames_sent += 1
        tracer = self.tracer
        # enabled_for guard: the phy.tx payload below is the biggest dict
        # built anywhere on the hot path — skip it entirely when nobody
        # retains or subscribes to phy.tx records.
        if tracer is not None and tracer.enabled_for("phy.tx"):
            tracer.emit(
                now,
                "phy.tx",
                node=sender.node_id,
                frame_kind=frame.kind.value,
                frame_uid=frame.uid,
                dst=frame.dst.value,
                packet_uid=frame.packet.uid if frame.packet else None,
                packet_kind=frame.packet.kind if frame.packet else None,
                packet_obj=frame.packet,
                pos=sender_pos.as_tuple(),
                duration=duration,
            )

        sender.begin_transmit(tx)
        radio_range2 = self._radio_range2
        interference_range2 = self._interference_range2
        owned = self._shard_owned
        index = self._aindex if aindex is not None else self._index
        # -1 disables the memo (brute mode, or some radio can move); the
        # index version is read *before* the gather, so a concurrent
        # invalidation would make the stored stamp compare stale — never
        # the reverse.
        memo_version = index.version if index is not None and index.all_static else -1
        pos_key = (sender_pos.x, sender_pos.y)
        cached = None
        if memo_version >= 0:
            cached = self._fanout_memo.get(sender.node_id)
            if cached is not None and (cached[0] != memo_version or cached[1] != pos_key):
                cached = None
        if cached is not None:
            affected = cached[2]
            if cached[3]:
                tx.deliverable_to.update(cached[3])
            dists = cached[4]
            if dists is None:
                for radio in affected:
                    radio.on_tx_start(tx)
            else:
                for radio, dist in zip(affected, dists):
                    radio.on_tx_start(tx, dist)
        elif fan is not None:
            affected = []
            radios = self._radios
            deliverable = tx.deliverable_to
            hypot = math.hypot
            rows, fdx, fdy, fdel = fan.rows, fan.dx, fan.dy, fan.deliverable
            # The distances list is only consumed by the static-fan-out
            # memo and the cross check; mobile non-cross runs (the common
            # hot case) skip collecting it entirely.
            keep_dists = memo_version >= 0 or self.spatial_mode == "cross"
            dists: Optional[List[float]] = [] if keep_dists else None
            if keep_dists:
                for row, dxv, dyv, deliv in zip(rows, fdx, fdy, fdel):
                    radio = radios[row]
                    if owned is not None and radio.node_id not in owned:
                        continue
                    # Scalar hypot on the batch-derived deltas: bitwise
                    # what own_pos.distance_to(sender_pos) computes on the
                    # object path, so capture ratios and loss draws see
                    # identical floats.
                    dist = hypot(dxv, dyv)
                    if deliv:
                        deliverable.add(radio.node_id)
                    radio.on_tx_start(tx, dist)
                    affected.append(radio)
                    dists.append(dist)
            else:
                for row, dxv, dyv, deliv in zip(rows, fdx, fdy, fdel):
                    radio = radios[row]
                    if owned is not None and radio.node_id not in owned:
                        continue
                    dist = hypot(dxv, dyv)
                    if deliv:
                        deliverable.add(radio.node_id)
                    radio.on_tx_start(tx, dist)
                    affected.append(radio)
            if memo_version >= 0:
                self._fanout_memo[sender.node_id] = (
                    memo_version, pos_key, affected, frozenset(deliverable), dists
                )
            if self.spatial_mode == "cross":
                self._spatial_cross_check(sender, sender_pos, affected, dists, fan)
        else:
            affected = []
            for radio in self._candidates(sender_pos, self.interference_range):
                if radio is sender:
                    continue
                if owned is not None and radio.node_id not in owned:
                    continue
                d2 = radio.position.distance2_to(sender_pos)
                if d2 <= interference_range2:
                    if d2 <= radio_range2:
                        tx.deliverable_to.add(radio.node_id)
                    radio.on_tx_start(tx)
                    affected.append(radio)
            if memo_version >= 0:
                # affected is shared with the memo but never mutated in
                # place (recomputes build a fresh list), so in-flight
                # _finish closures stay correct across invalidation.
                self._fanout_memo[sender.node_id] = (
                    memo_version, pos_key, affected, frozenset(tx.deliverable_to), None
                )
        if self.index_mode == "cross":
            self._cross_check(sender_pos, self.interference_range, affected, sender)

        pool = self.frame_pool
        keyed = self._shard_keyed

        if keyed is None:

            def _finish() -> None:
                sender.end_transmit(tx)
                for radio in affected:
                    radio.on_tx_end(tx)
                if pool is not None:
                    # The frame's airtime is over and every receiver has
                    # consumed it synchronously above — recycle it.
                    pool.release_frame(frame)

        else:

            def _finish() -> None:
                # Per-participant key scopes: the sender's completion and
                # each receiver's reception draw causal keys independent
                # of which subset of receivers this shard owns.  The
                # sender tag (-1,) sorts before every node-id tag, and
                # ``affected`` is in registration (node-id) order, so the
                # scope order matches single-engine schedule order.
                with keyed.key_scope(_SENDER_SCOPE, actor=tx.sender_id):
                    sender.end_transmit(tx)
                for radio in affected:
                    with keyed.key_scope((radio.node_id,)):
                        radio.on_tx_end(tx)
                if pool is not None:
                    pool.release_frame(frame)

        finish_event = self.sim.schedule(
            duration, _finish, priority=-1, name="phy.tx_end", actor=MEDIUM_ACTOR
        )
        bridge = self._shard_bridge
        if bridge is not None:
            bridge.note_local_tx(tx, frame, affected, finish_event)
        return tx

    # --------------------------------------------------- ghost transmissions
    def apply_ghost_start(
        self,
        sender_id: int,
        sender_pos: Position,
        frame: MacFrame,
        start: float,
        end: float,
    ) -> Tuple[Transmission, List["PhyRadio"]]:
        """Mirror a remote shard's transmission onto our owned radios.

        Reconstructs a :class:`Transmission` (its uid is local — uids are
        deliberately outside the trace-equivalence contract, see DET-006)
        and applies ``on_tx_start`` to every owned radio in range, with
        the scalar distance recomputation that is bitwise-equal to the
        owner shard's batched path.  Emits nothing and bumps no counters:
        the owner already accounted for this frame.
        """
        tx = Transmission(
            uid=next(self._tx_uid),
            sender_id=sender_id,
            sender_pos=sender_pos,
            frame=frame,
            start=start,
            end=end,
        )
        owned = self._shard_owned
        affected: List["PhyRadio"] = []
        radio_range2 = self._radio_range2
        interference_range2 = self._interference_range2
        for radio in self._candidates(sender_pos, self.interference_range):
            # The sender's dormant replica sits in our index too.
            if radio.node_id == sender_id:
                continue
            if owned is not None and radio.node_id not in owned:
                continue
            d2 = radio.position.distance2_to(sender_pos)
            if d2 <= interference_range2:
                if d2 <= radio_range2:
                    tx.deliverable_to.add(radio.node_id)
                radio.on_tx_start(tx)
                affected.append(radio)
        return tx, affected

    def apply_ghost_finish(self, tx: Transmission, affected: List["PhyRadio"]) -> None:
        """Complete a mirrored transmission (receiver side only).

        Runs at the owner's ``phy.tx_end`` key, so each receiver scope
        draws exactly the keys the single engine would."""
        keyed = self._shard_keyed
        assert keyed is not None
        for radio in affected:
            with keyed.key_scope((radio.node_id,)):
                radio.on_tx_end(tx)

    def _spatial_cross_check(
        self,
        sender: "PhyRadio",
        sender_pos: Position,
        affected: List["PhyRadio"],
        dists: List[float],
        fan: FanOut,
    ) -> None:
        """spatial_mode="cross": verify the batched classification against
        the scalar object computation — membership, order, deliverability,
        and *bitwise* sender position and distances."""
        ref = sender.position
        if (ref.x, ref.y) != (sender_pos.x, sender_pos.y):
            raise SpatialCoherenceError(
                f"batched sender position {sender_pos.as_tuple()!r} != scalar "
                f"{ref.as_tuple()!r} at t={self.sim.now:.9f}"
            )
        expected: List[Tuple["PhyRadio", float, bool]] = []
        for radio in self._radios:
            if radio is sender:
                continue
            rpos = radio.position
            d2 = rpos.distance2_to(sender_pos)
            if d2 <= self._interference_range2:
                expected.append(
                    (radio, rpos.distance_to(sender_pos), d2 <= self._radio_range2)
                )
        got = list(zip(affected, dists, fan.deliverable))
        if len(expected) != len(got) or any(
            e[0] is not g[0] or e[1] != g[1] or e[2] != g[2]
            for e, g in zip(expected, got)
        ):
            raise SpatialCoherenceError(
                "vectorized fan-out diverged from the scalar path at "
                f"t={self.sim.now:.9f}: expected "
                f"{[(r.node_id, d, dl) for r, d, dl in expected]}, got "
                f"{[(r.node_id, d, dl) for r, d, dl in got]}"
            )

    # --------------------------------------------------------------- faults
    def invalidate_radio(self, radio: "PhyRadio") -> None:
        """A radio's liveness changed (crash/recover): drop derived caches.

        Geometry is untouched — a down node still occupies space and
        blocks/interferes as energy — but any cached fan-out the caller
        may layer on liveness must rebuild, so the static fan-out memo is
        dropped and the spatial index version is bumped (which also
        drops its gather cache).  Never called on the no-faults path, so
        the seed behaviour is byte-identical.
        """
        self._fanout_memo.clear()
        if self._aindex is not None:
            self._aindex.invalidate_all()
        elif self._index is not None:
            self._index.invalidate_all()

    # -------------------------------------------------------------- queries
    def neighbors_within(self, radio: "PhyRadio", rng: float) -> List["PhyRadio"]:
        """Radios within ``rng`` metres of ``radio`` (excluding itself)."""
        center = radio.position
        limit = rng * rng
        result = [
            other
            for other in self._candidates(center, rng)
            if other is not radio and other.position.distance2_to(center) <= limit
        ]
        if self.index_mode == "cross":
            self._cross_check(center, rng, result, radio)
        return result

    def index_stats(self) -> Optional[dict]:
        """Spatial-index telemetry (``None`` in brute-force mode)."""
        if self._aindex is not None:
            return self._aindex.stats()
        return self._index.stats() if self._index is not None else None
