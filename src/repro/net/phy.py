"""Per-node radio (PHY layer).

Tracks which transmissions currently impinge on this node, decides
reception outcomes (delivered / collided / out of range), and exposes
carrier-sense state to the MAC.

Half-duplex: a radio that transmits cannot receive, and starting a
transmission corrupts anything it was in the middle of receiving.

Fault hooks (both absent by default — the seed code path is unchanged):

* an optional per-receiver **channel loss process**
  (:mod:`repro.faults.loss`) judges every deliverable reception once,
  in event order, and can eat it — modelling fading/shadowing losses
  the unit-disk collision model cannot produce;
* a **down** flag (set by :meth:`repro.net.node.Node.fail`) makes the
  radio genuinely deaf and mute: nothing is delivered and the MAC gets
  no carrier callbacks, while impinging-energy bookkeeping still runs
  so carrier state is correct the instant the node recovers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.geo.vec import Position
from repro.net.mobility import MobilityModel
from repro.net.pool import Reception
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.loss import LossProcess
    from repro.net.mac.dcf import DcfMac
    from repro.net.medium import RadioMedium, Transmission

__all__ = ["PhyRadio"]


#: Signal-to-interference capture: a reception survives an overlapping
#: interferer when the desired signal is >= 10 dB stronger.  With the
#: two-ray path-loss exponent of 4 that means the interferer must be at
#: least 10**(1/4) ~ 1.778x farther away than the desired transmitter
#: (the classic NS-2 550 m / 250 m relationship).
CAPTURE_DISTANCE_RATIO = 10.0 ** 0.25


class PhyRadio:
    """The radio of one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        medium: "RadioMedium",
        mobility: MobilityModel,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.medium = medium
        self.mobility = mobility
        self.tracer = tracer
        self.mac: Optional["DcfMac"] = None

        # Reception bookkeeping comes in two shapes sharing one dict (so
        # ``carrier_busy`` is representation-agnostic): unpooled, the
        # seed triple — _impinging maps uid -> Transmission with the
        # distance and corrupted verdict in the side containers; pooled,
        # _impinging maps uid -> recycled Reception record that carries
        # all three fields, and the side containers stay empty.
        self._pool = medium.frame_pool
        self._pooled = self._pool is not None
        self._rec_checked = self._pooled and self._pool.checked
        #: Inline free list for pool_mode="on": at ~150 receptions per
        #: broadcast frame a method call per record is measurable, so the
        #: fast path pops/pushes locally; "cross" routes through the
        #: pool's checked acquire/release instead.
        self._rec_free: List[Reception] = []
        self._impinging: Dict[int, Union[Transmission, Reception]] = {}
        self._distances: Dict[int, float] = {}
        self._corrupted: set[int] = set()
        self._own_tx: Optional[Transmission] = None
        self._last_ended_corrupted = False
        #: Channel loss process (``None`` = the unimpaired seed channel).
        self._loss: Optional["LossProcess"] = None
        #: Lifecycle fault flag — managed by :meth:`repro.net.node.Node.fail`.
        self.down = False

        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_impaired = 0
        medium.register(self)

    # ---------------------------------------------------------------- faults
    def set_loss_process(self, process: Optional["LossProcess"]) -> None:
        """Install this receiver's channel-loss process (``None`` = none).

        With no process the reception path below runs exactly the
        pre-faults instructions — traces stay byte-identical to the
        unimpaired simulator.
        """
        self._loss = process

    # -------------------------------------------------------------- position
    @property
    def position(self) -> Position:
        return self.mobility.position_at(self.sim.now)

    # --------------------------------------------------------- carrier sense
    @property
    def carrier_busy(self) -> bool:
        """Physical carrier sense: any impinging energy or own transmission."""
        return bool(self._impinging) or self._own_tx is not None

    @property
    def last_reception_corrupted(self) -> bool:
        """True when the most recent channel-release followed a collision.

        The MAC uses EIFS instead of DIFS after corrupted receptions.
        """
        return self._last_ended_corrupted

    # ------------------------------------------------------------ transmit
    def transmit(self, frame, duration: float) -> "Transmission":
        """Send a frame; the MAC has already won contention."""
        return self.medium.transmit(self, frame, duration)

    def begin_transmit(self, tx: "Transmission") -> None:
        self._own_tx = tx
        # Half-duplex: anything being received right now is lost.
        if self._pooled:
            for rec in self._impinging.values():
                rec.corrupted = True
        else:
            for uid in self._impinging:
                self._corrupted.add(uid)

    def end_transmit(self, tx: "Transmission") -> None:
        self._own_tx = None
        if not self._impinging and self.mac is not None and not self.down:
            self.mac.on_channel_idle()

    # ------------------------------------------------------------ reception
    def on_tx_start(self, tx: "Transmission", distance: Optional[float] = None) -> None:
        """A transmission starts impinging on this radio.

        ``distance`` is the receiver-to-sender distance when the medium
        already classified the fan-out in batch
        (:class:`~repro.geo.spatial_array.ArraySpatialIndex` feeds the
        bitwise-identical value); ``None`` recomputes it here exactly as
        the seed did — the dominant cost of the object path at scale.
        """
        if distance is None:
            own_pos = self.position
            new_distance = own_pos.distance_to(tx.sender_pos)
        else:
            new_distance = distance
        if self._pooled:
            # carrier_busy inlined (this method runs once per radio per
            # transmission — the hottest call site in the simulator).
            impinging = self._impinging
            own_tx = self._own_tx
            was_idle = not impinging and own_tx is None
            # Half-duplex: nothing arriving during our own TX is decodable.
            new_corrupted = own_tx is not None
            if impinging:
                for rec in impinging.values():
                    other_distance = rec.distance
                    # Pairwise capture: a reception is ruined only by an
                    # interferer whose signal is within 10 dB of (or
                    # stronger than) it.
                    if new_distance < other_distance * CAPTURE_DISTANCE_RATIO:
                        rec.corrupted = True
                    if other_distance < new_distance * CAPTURE_DISTANCE_RATIO:
                        new_corrupted = True
            if self._rec_checked:
                rec = self._pool.acquire_reception(tx, new_distance, new_corrupted)
            else:
                free = self._rec_free
                if free:
                    rec = free.pop()
                    rec.tx = tx
                    rec.distance = new_distance
                    rec.corrupted = new_corrupted
                else:
                    rec = Reception(tx, new_distance, new_corrupted)
            impinging[tx.uid] = rec
        else:
            was_idle = not self.carrier_busy
            if self._own_tx is not None:
                # Half-duplex: nothing arriving during our own TX is decodable.
                self._corrupted.add(tx.uid)
            for uid, other in self._impinging.items():
                other_distance = self._distances[uid]
                # Pairwise capture: a reception is ruined only by an interferer
                # whose signal is within 10 dB of (or stronger than) it.
                if new_distance < other_distance * CAPTURE_DISTANCE_RATIO:
                    self._corrupted.add(uid)
                if other_distance < new_distance * CAPTURE_DISTANCE_RATIO:
                    self._corrupted.add(tx.uid)
            self._impinging[tx.uid] = tx
            self._distances[tx.uid] = new_distance
        if was_idle and self.mac is not None and not self.down:
            self.mac.on_channel_busy()

    def on_tx_end(self, tx: "Transmission") -> None:
        if self._pooled:
            rec = self._impinging.pop(tx.uid, None)
            if rec is None:
                distance, corrupted = 0.0, False
            else:
                distance = rec.distance
                corrupted = rec.corrupted
                if self._rec_checked:
                    self._pool.release_reception(rec)
                else:
                    rec.tx = None  # drop the Transmission ref while free
                    self._rec_free.append(rec)
        else:
            self._impinging.pop(tx.uid, None)
            distance = self._distances.pop(tx.uid, 0.0)
            corrupted = tx.uid in self._corrupted
            self._corrupted.discard(tx.uid)

        if self.down:
            # A dead radio decodes nothing and owes the MAC no carrier
            # callbacks.  The energy bookkeeping above still ran, so
            # carrier_busy is correct the instant the node recovers — and
            # the loss process is *not* consulted: its stream position is
            # a pure function of receptions judged while alive.
            return

        deliverable = self.node_id in tx.deliverable_to
        impaired = False
        if deliverable and self._loss is not None:
            # The channel-state draw happens for *every* deliverable
            # reception — independent of interference outcomes — so the
            # RNG stream position depends only on the traffic pattern.
            impaired = self._loss.should_drop(distance)
            if impaired and not corrupted:
                # The observable damage: a reception that would have been
                # delivered.  Collided receptions were already lost.
                self._loss.metrics.deliveries_suppressed += 1
                self.frames_impaired += 1
                if self.tracer is not None and self.tracer.enabled_for("phy.fault_drop"):
                    self.tracer.emit(
                        self.sim.now,
                        "phy.fault_drop",
                        node=self.node_id,
                        frame_uid=tx.frame.uid,
                        frame_kind=tx.frame.kind.value,
                        distance=distance,
                    )
        if deliverable and not corrupted and not impaired:
            self.frames_delivered += 1
            if self.mac is not None:
                self.mac.on_frame(tx.frame, tx)
        elif deliverable and corrupted:
            self.frames_collided += 1
            if self.tracer is not None and self.tracer.enabled_for("phy.collision"):
                self.tracer.emit(
                    self.sim.now,
                    "phy.collision",
                    node=self.node_id,
                    frame_uid=tx.frame.uid,
                    frame_kind=tx.frame.kind.value,
                )
        # deliverable and impaired but not corrupted: the frame faded
        # below sensitivity — neither delivered nor a CRC failure, so the
        # EIFS decision below treats it like plain channel noise.

        if not self._impinging and self._own_tx is None:  # carrier_busy inlined
            # EIFS applies only after a decodable frame failed its CRC; a
            # transmission that was merely sensed (out of radio range) is
            # plain channel noise and releases with a normal DIFS.
            self._last_ended_corrupted = deliverable and corrupted
            mac = self.mac
            if mac is not None:
                mac.on_channel_idle()
