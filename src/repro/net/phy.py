"""Per-node radio (PHY layer).

Tracks which transmissions currently impinge on this node, decides
reception outcomes (delivered / collided / out of range), and exposes
carrier-sense state to the MAC.

Half-duplex: a radio that transmits cannot receive, and starting a
transmission corrupts anything it was in the middle of receiving.

Fault hooks (both absent by default — the seed code path is unchanged):

* an optional per-receiver **channel loss process**
  (:mod:`repro.faults.loss`) judges every deliverable reception once,
  in event order, and can eat it — modelling fading/shadowing losses
  the unit-disk collision model cannot produce;
* a **down** flag (set by :meth:`repro.net.node.Node.fail`) makes the
  radio genuinely deaf and mute: nothing is delivered and the MAC gets
  no carrier callbacks, while impinging-energy bookkeeping still runs
  so carrier state is correct the instant the node recovers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.geo.vec import Position
from repro.net.mobility import MobilityModel
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.loss import LossProcess
    from repro.net.mac.dcf import DcfMac
    from repro.net.medium import RadioMedium, Transmission

__all__ = ["PhyRadio"]


#: Signal-to-interference capture: a reception survives an overlapping
#: interferer when the desired signal is >= 10 dB stronger.  With the
#: two-ray path-loss exponent of 4 that means the interferer must be at
#: least 10**(1/4) ~ 1.778x farther away than the desired transmitter
#: (the classic NS-2 550 m / 250 m relationship).
CAPTURE_DISTANCE_RATIO = 10.0 ** 0.25


class PhyRadio:
    """The radio of one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        medium: "RadioMedium",
        mobility: MobilityModel,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.medium = medium
        self.mobility = mobility
        self.tracer = tracer
        self.mac: Optional["DcfMac"] = None

        self._impinging: Dict[int, Transmission] = {}
        self._distances: Dict[int, float] = {}
        self._corrupted: set[int] = set()
        self._own_tx: Optional[Transmission] = None
        self._last_ended_corrupted = False
        #: Channel loss process (``None`` = the unimpaired seed channel).
        self._loss: Optional["LossProcess"] = None
        #: Lifecycle fault flag — managed by :meth:`repro.net.node.Node.fail`.
        self.down = False

        self.frames_delivered = 0
        self.frames_collided = 0
        self.frames_impaired = 0
        medium.register(self)

    # ---------------------------------------------------------------- faults
    def set_loss_process(self, process: Optional["LossProcess"]) -> None:
        """Install this receiver's channel-loss process (``None`` = none).

        With no process the reception path below runs exactly the
        pre-faults instructions — traces stay byte-identical to the
        unimpaired simulator.
        """
        self._loss = process

    # -------------------------------------------------------------- position
    @property
    def position(self) -> Position:
        return self.mobility.position_at(self.sim.now)

    # --------------------------------------------------------- carrier sense
    @property
    def carrier_busy(self) -> bool:
        """Physical carrier sense: any impinging energy or own transmission."""
        return bool(self._impinging) or self._own_tx is not None

    @property
    def last_reception_corrupted(self) -> bool:
        """True when the most recent channel-release followed a collision.

        The MAC uses EIFS instead of DIFS after corrupted receptions.
        """
        return self._last_ended_corrupted

    # ------------------------------------------------------------ transmit
    def transmit(self, frame, duration: float) -> "Transmission":
        """Send a frame; the MAC has already won contention."""
        return self.medium.transmit(self, frame, duration)

    def begin_transmit(self, tx: "Transmission") -> None:
        self._own_tx = tx
        # Half-duplex: anything being received right now is lost.
        for uid in self._impinging:
            self._corrupted.add(uid)

    def end_transmit(self, tx: "Transmission") -> None:
        self._own_tx = None
        if not self._impinging and self.mac is not None and not self.down:
            self.mac.on_channel_idle()

    # ------------------------------------------------------------ reception
    def on_tx_start(self, tx: "Transmission") -> None:
        was_idle = not self.carrier_busy
        own_pos = self.position
        new_distance = own_pos.distance_to(tx.sender_pos)
        if self._own_tx is not None:
            # Half-duplex: nothing arriving during our own TX is decodable.
            self._corrupted.add(tx.uid)
        for uid, other in self._impinging.items():
            other_distance = self._distances[uid]
            # Pairwise capture: a reception is ruined only by an interferer
            # whose signal is within 10 dB of (or stronger than) it.
            if new_distance < other_distance * CAPTURE_DISTANCE_RATIO:
                self._corrupted.add(uid)
            if other_distance < new_distance * CAPTURE_DISTANCE_RATIO:
                self._corrupted.add(tx.uid)
        self._impinging[tx.uid] = tx
        self._distances[tx.uid] = new_distance
        if was_idle and self.mac is not None and not self.down:
            self.mac.on_channel_busy()

    def on_tx_end(self, tx: "Transmission") -> None:
        self._impinging.pop(tx.uid, None)
        distance = self._distances.pop(tx.uid, 0.0)
        corrupted = tx.uid in self._corrupted
        self._corrupted.discard(tx.uid)

        if self.down:
            # A dead radio decodes nothing and owes the MAC no carrier
            # callbacks.  The energy bookkeeping above still ran, so
            # carrier_busy is correct the instant the node recovers — and
            # the loss process is *not* consulted: its stream position is
            # a pure function of receptions judged while alive.
            return

        deliverable = self.node_id in tx.deliverable_to
        impaired = False
        if deliverable and self._loss is not None:
            # The channel-state draw happens for *every* deliverable
            # reception — independent of interference outcomes — so the
            # RNG stream position depends only on the traffic pattern.
            impaired = self._loss.should_drop(distance)
            if impaired and not corrupted:
                # The observable damage: a reception that would have been
                # delivered.  Collided receptions were already lost.
                self._loss.metrics.deliveries_suppressed += 1
                self.frames_impaired += 1
                if self.tracer is not None and self.tracer.enabled_for("phy.fault_drop"):
                    self.tracer.emit(
                        self.sim.now,
                        "phy.fault_drop",
                        node=self.node_id,
                        frame_uid=tx.frame.uid,
                        frame_kind=tx.frame.kind.value,
                        distance=distance,
                    )
        if deliverable and not corrupted and not impaired:
            self.frames_delivered += 1
            if self.mac is not None:
                self.mac.on_frame(tx.frame, tx)
        elif deliverable and corrupted:
            self.frames_collided += 1
            if self.tracer is not None and self.tracer.enabled_for("phy.collision"):
                self.tracer.emit(
                    self.sim.now,
                    "phy.collision",
                    node=self.node_id,
                    frame_uid=tx.frame.uid,
                    frame_kind=tx.frame.kind.value,
                )
        # deliverable and impaired but not corrupted: the frame faded
        # below sensitivity — neither delivered nor a CRC failure, so the
        # EIFS decision below treats it like plain channel noise.

        if not self.carrier_busy:
            # EIFS applies only after a decodable frame failed its CRC; a
            # transmission that was merely sensed (out of radio range) is
            # plain channel noise and releases with a normal DIFS.
            self._last_ended_corrupted = deliverable and corrupted
            if self.mac is not None:
                self.mac.on_channel_idle()
