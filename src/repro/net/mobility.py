"""Mobility models.

The paper's scenario uses **random waypoint** (RWP): each node picks a
uniform destination in the field, moves toward it at a uniform random
speed up to 20 m/s, pauses 60 s, and repeats.

Positions are computed *analytically*: a model stores only the current
leg (origin, destination, speed, start time) and interpolates on demand,
so mobility costs zero simulation events between waypoint changes except
one event per leg to roll the next waypoint.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Protocol

from repro.geo.region import Region
from repro.geo.vec import Position
from repro.sim.engine import PURE_ACTOR, Simulator

__all__ = ["MobilityModel", "StaticMobility", "RandomWaypointMobility", "WaypointLeg"]


class MobilityModel(Protocol):
    """Anything that can report a node position at a simulated time.

    ``subscribe`` is part of the protocol (not duck-typed): consumers
    that cache positions — the spatial index backends — register a
    callback and are notified on every *discontinuity* (teleport).
    Models whose trajectories are continuous between queries
    (:class:`RandomWaypointMobility`) simply never call back; their
    ``subscribe`` is a no-op registration, not an absence.
    """

    def position_at(self, time: float) -> Position:
        """Position of the node at ``time`` (monotone queries expected)."""
        ...

    def velocity_at(self, time: float) -> tuple[float, float]:
        """Velocity vector (m/s) at ``time`` — used by freshness-aware forwarding."""
        ...

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run after every positional discontinuity."""
        ...


class StaticMobility:
    """A node that never moves (static topologies, unit tests).

    :meth:`move_to` teleports — a discontinuity no speed bound can cover —
    so consumers that cache positions (the medium's spatial index)
    register a callback via :meth:`subscribe` and are notified on every
    teleport.

    .. note::
       Teleporting a node far away is **not** failure injection: the
       node keeps beaconing and receiving from its new position, it
       merely leaves radio range.  Genuine crash/recover semantics (tx
       and rx stop, volatile state lost) live in
       :class:`repro.faults.FaultPlan` /
       :meth:`repro.net.node.Node.fail`.
    """

    #: Speed bound between notifications: a static node never drifts, so
    #: index consumers may bin it once and rely on :meth:`subscribe` for
    #: the (discontinuous) teleports.
    max_speed: float = 0.0

    def __init__(self, position: Position) -> None:
        self._position = position
        self._listeners: list[Callable[[], None]] = []

    def position_at(self, time: float) -> Position:
        return self._position

    def velocity_at(self, time: float) -> tuple[float, float]:
        return (0.0, 0.0)

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run after every :meth:`move_to`."""
        self._listeners.append(callback)

    def move_to(self, position: Position) -> None:
        """Teleport (topology manipulation in tests).

        A same-position "teleport" is a no-op and notifies nobody —
        listeners invalidate caches, and there is nothing to invalidate.
        """
        if position == self._position:
            return
        self._position = position
        for callback in self._listeners:
            callback()


class WaypointLeg:
    """One segment of random-waypoint motion: pause, then straight travel."""

    __slots__ = ("origin", "target", "speed", "depart_time", "arrive_time")

    def __init__(
        self,
        origin: Position,
        target: Position,
        speed: float,
        depart_time: float,
    ) -> None:
        self.origin = origin
        self.target = target
        self.speed = speed
        self.depart_time = depart_time
        travel = origin.distance_to(target) / speed if speed > 0 else 0.0
        self.arrive_time = depart_time + travel

    def position_at(self, time: float) -> Position:
        if time <= self.depart_time:
            return self.origin
        if time >= self.arrive_time:
            return self.target
        fraction = (time - self.depart_time) / (self.arrive_time - self.depart_time)
        return self.origin.towards(self.target, fraction)

    def velocity_at(self, time: float) -> tuple[float, float]:
        if time <= self.depart_time or time >= self.arrive_time:
            return (0.0, 0.0)
        d = self.origin.distance_to(self.target)
        if d == 0:
            return (0.0, 0.0)
        return (
            (self.target.x - self.origin.x) / d * self.speed,
            (self.target.y - self.origin.y) / d * self.speed,
        )


class RandomWaypointMobility:
    """Random waypoint over a rectangular region.

    Parameters follow the paper: ``max_speed`` 20 m/s, ``pause_time`` 60 s.
    ``min_speed`` defaults to 1 m/s to avoid the well-known RWP speed-decay
    pathology (nodes stuck at near-zero speed forever).
    """

    def __init__(
        self,
        sim: Simulator,
        region: Region,
        rng: random.Random,
        start: Optional[Position] = None,
        min_speed: float = 1.0,
        max_speed: float = 20.0,
        pause_time: float = 60.0,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.sim = sim
        self.region = region
        self.rng = rng
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        origin = start if start is not None else region.random_position(rng)
        self._leg = self._next_leg(origin, sim.now)
        self._schedule_roll()

    def _next_leg(self, origin: Position, now: float) -> WaypointLeg:
        target = self.region.random_position(self.rng)
        speed = self.rng.uniform(self.min_speed, self.max_speed)
        # "pause time 60s whenever it changes its direction": pause precedes travel
        return WaypointLeg(origin, target, speed, depart_time=now + self.pause_time)

    def _schedule_roll(self) -> None:
        delay = max(0.0, self._leg.arrive_time - self.sim.now)
        # PURE: waypoint rolls touch only mobility state and can never
        # lead to a transmission, so the sharded promise scan skips them.
        self.sim.schedule(delay, self._roll, name="rwp.roll", actor=PURE_ACTOR)

    def _roll(self) -> None:
        self._leg = self._next_leg(self._leg.target, self.sim.now)
        self._schedule_roll()

    # ------------------------------------------------------------- queries
    def position_at(self, time: float) -> Position:
        return self._leg.position_at(time)

    def velocity_at(self, time: float) -> tuple[float, float]:
        return self._leg.velocity_at(time)

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Protocol no-op: RWP trajectories are continuous (legs chain
        origin := previous target), so there is never a discontinuity to
        notify — the speed bound alone keeps cached bins sound."""

    @property
    def current_leg(self) -> WaypointLeg:
        return self._leg
