"""A simulated node: mobility + radio + MAC + (pluggable) routing agent.

The node is deliberately thin — it wires the layers together and gives
routing agents a stable surface: ``node.position``, ``node.mac.send``,
``node.identity``, ``node.keystore``.  Routing agents (GPSR or the
paper's AGFW) are attached after construction via :meth:`attach_router`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Protocol

from repro.geo.vec import Position
from repro.net.addresses import MacAddress, mac_for_node
from repro.net.mac.constants import DEFAULT_DOT11, Dot11Params
from repro.net.mac.dcf import DcfMac
from repro.net.mac.frames import MacFrame
from repro.net.medium import RadioMedium
from repro.net.mobility import MobilityModel
from repro.net.packet import Packet
from repro.net.phy import PhyRadio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.crypto.certificates import KeyStore

__all__ = ["Node", "RouterAgent"]


class RouterAgent(Protocol):
    """The contract a routing agent fulfils."""

    def start(self) -> None:
        """Begin periodic activity (beaconing etc.)."""
        ...

    def on_packet(self, packet: Packet, frame: MacFrame) -> None:
        """Handle a packet delivered by the MAC."""
        ...

    def send_data(self, dest_identity: str, payload_bytes: int) -> Optional[int]:
        """Originate application data; returns the packet uid (or None if refused)."""
        ...


class Node:
    """One mobile station."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        medium: RadioMedium,
        mobility: MobilityModel,
        rngs: RngRegistry,
        tracer: Optional[Tracer] = None,
        dot11: Dot11Params = DEFAULT_DOT11,
        identity: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.identity = identity if identity is not None else f"node-{node_id}"
        self.mobility = mobility
        self.tracer = tracer
        self.address: MacAddress = mac_for_node(node_id)
        self.rngs = rngs.fork(f"node:{node_id}")

        self.phy = PhyRadio(sim, node_id, medium, mobility, tracer)
        self.mac = DcfMac(
            sim,
            node_id,
            self.address,
            self.phy,
            rng=self.rngs.stream("mac"),
            params=dot11,
            tracer=tracer,
        )
        self.router: Optional[RouterAgent] = None
        self.keystore: Optional["KeyStore"] = None

    # ------------------------------------------------------------- plumbing
    def attach_router(self, router: RouterAgent) -> None:
        """Install the routing agent and route MAC upcalls into it."""
        self.router = router
        self.mac.receive_callback = router.on_packet

    def start(self) -> None:
        """Start the node's routing agent (call once, after attach)."""
        if self.router is None:
            raise RuntimeError(f"node {self.node_id} has no router attached")
        self.router.start()

    # ------------------------------------------------------ lifecycle faults
    @property
    def down(self) -> bool:
        """True while the node is crashed (see :meth:`fail`)."""
        return self.phy.down

    def fail(self) -> bool:
        """Take the node genuinely down (crash / power loss).

        No tx, no rx, beacons stop, volatile MAC and router state is
        lost, and the medium's liveness-derived caches are invalidated —
        in contrast to the legacy teleport hack, which kept the node
        transmitting from far away.  Idempotent; returns True when the
        node actually transitioned up -> down.
        """
        if self.phy.down:
            return False
        self.phy.down = True
        self.mac.on_node_down()
        router = self.router
        if router is not None:
            on_fault_down = getattr(router, "on_fault_down", None)
            if callable(on_fault_down):
                on_fault_down()
        self.phy.medium.invalidate_radio(self.phy)
        return True

    def recover(self) -> bool:
        """Bring a crashed node back up (reboot: empty volatile state).

        Beaconing restarts from a fresh offset, so neighbors relearn the
        node exactly as they would a newly joined station.  Idempotent;
        returns True when the node actually transitioned down -> up.
        """
        if not self.phy.down:
            return False
        self.phy.down = False
        self.mac.on_node_up()
        router = self.router
        if router is not None:
            on_fault_up = getattr(router, "on_fault_up", None)
            if callable(on_fault_up):
                on_fault_up()
        self.phy.medium.invalidate_radio(self.phy)
        return True

    # -------------------------------------------------------------- queries
    @property
    def position(self) -> Position:
        return self.mobility.position_at(self.sim.now)

    def rng(self, purpose: str) -> random.Random:
        """Per-node, per-purpose deterministic RNG stream."""
        return self.rngs.stream(purpose)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id} '{self.identity}' @ {self.position})"
