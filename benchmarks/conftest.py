"""Shared benchmark helpers.

Every table/figure benchmark writes its regenerated series into
``benchmarks/results/<name>.txt`` so the reproduction output survives
pytest's output capture; the same text is printed (visible with ``-s``)
and recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a regenerated table/figure series and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n[{name}]\n{text}")
    return path


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
