"""The byte price of anonymity at the routing layer.

The paper discusses overhead qualitatively ("with extra message bits and
limited cryptographic operations involved, one might also expect it to
elegantly degrade a bit").  This bench makes it exact: network-layer
bytes on the air per *delivered payload byte*, broken down by packet
kind, for all three schemes under the identical workload.

AGFW pays for its 64-byte trapdoors and NL-ACK packets; GPSR pays for
MAC control frames (accounted separately) and retransmitted data.  The
paper's claim that the anonymity overhead is tolerable corresponds to
the AGFW/GPSR ratio staying within a small factor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.scenario import ScenarioConfig, run_scenario

_results: dict[str, object] = {}


def _run(protocol: str):
    result = run_scenario(
        ScenarioConfig(
            protocol=protocol,
            num_nodes=75,
            sim_time=12.0,
            traffic_start=(1.0, 3.0),
            seed=29,
        )
    )
    _results[protocol] = result
    return result


@pytest.mark.benchmark(group="overhead")
@pytest.mark.parametrize("protocol", ["gpsr", "agfw", "agfw-noack"])
def test_byte_overhead(benchmark, protocol):
    result = benchmark.pedantic(_run, args=(protocol,), rounds=1, iterations=1)
    benchmark.extra_info["overhead_ratio"] = round(result.overhead_ratio, 2)
    assert result.delivered > 0

    if protocol == "agfw-noack" and len(_results) == 3:
        lines = ["Network-layer bytes per delivered payload byte (75 nodes)"]
        for name, res in _results.items():
            kinds = ", ".join(
                f"{kind.split('.')[-1]}={bytes_ // 1024}KiB"
                for kind, bytes_ in sorted(res.bytes_by_kind.items())
            )
            lines.append(
                f"{name:>12}: ratio={res.overhead_ratio:6.2f}  ({kinds})"
            )
        gpsr = _results["gpsr"]
        agfw = _results["agfw"]
        lines.append(
            f"\nanonymity byte premium (agfw/gpsr): "
            f"{agfw.overhead_ratio / gpsr.overhead_ratio:.2f}x"
        )
        write_result("byte_overhead", "\n".join(lines))
        # The premium exists (bigger headers + NL-ACKs) but stays tolerable.
        assert agfw.overhead_ratio > gpsr.overhead_ratio * 0.8
        assert agfw.overhead_ratio < gpsr.overhead_ratio * 6
