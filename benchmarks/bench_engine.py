"""Engine hot-path benchmarks: scheduler backends and the tracer fast path.

Not a paper table — these price the substrate the experiments run on:

* ``test_mac_timer_churn`` — **the acceptance pair** for the timer
  wheel.  The workload is the MAC's signature pattern: a large standing
  far-future population (hello beacons, mobility legs, traffic
  deadlines) while short near-horizon timers are set and mostly
  *cancelled* (every frozen backoff, every answered CTS/ACK wait).  The
  heap pays O(log total-backlog) to sift each corpse in and out; the
  wheel pays an O(1) bucket append and a flag check at drain time.
  Entries are pre-built in setup so the timed region is pure
  data-structure work.  ``bench_to_json.py --suite engine`` derives
  ``mac_timer_churn_wheel_speedup`` from this pair (floor: 2x).
* ``test_event_throughput`` — engine-level self-rescheduling tick chain
  under both backends (the PR 2 baseline workload, now parametrized).
* ``test_trace_emit_20k`` — Tracer.emit with retention on vs the
  zero-allocation drop path (keep=False, no matching subscriber).
* ``test_end_to_end_scenario`` — a paper-density (112-node) AGFW run
  under both backends: the whole-stack number, where the scheduler is
  one cost among many (expected: parity or a modest win, never a
  regression).
"""

from __future__ import annotations

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.sim.engine import Event, Simulator
from repro.sim.timerwheel import make_scheduler
from repro.sim.trace import Tracer

# Churn shape: standing far-future population, then rounds of
# (CANCELS set-and-cancelled short timers + 1 fired timer) each.
CHURN_STANDING = 200_000
CHURN_ROUNDS = 15_000
CHURN_CANCELS = 12


def _churn_setup(mode: str):
    """Fresh backend + standing population + pre-built entry batches."""
    sched = make_scheduler(mode)
    seq = 0
    for i in range(CHURN_STANDING):
        seq += 1
        t = 100.0 + (i % 60_000) * 1e-3
        sched.push((t, 0, seq, Event(t, 0, seq, None)))
    batches = []
    now = 0.0
    for r in range(CHURN_ROUNDS):
        batch = []
        for j in range(CHURN_CANCELS):
            seq += 1
            t = now + 20e-6 * (1 + (r + j) % 64)
            batch.append((t, 0, seq, Event(t, 0, seq, None)))
        seq += 1
        t = now + 50e-6
        batch.append((t, 0, seq, Event(t, 0, seq, None)))
        batches.append(batch)
        now += 50e-6
    return (sched, batches), {}


def _churn_run(sched, batches):
    popped = 0
    for batch in batches:
        for entry in batch[:-1]:
            sched.push(entry)
            entry[3].cancelled = True  # a MAC timer that never fires
        sched.push(batch[-1])
        head = sched.pop()
        head[3].cancelled = True  # consumed, as the engine marks it
        popped += 1
    return popped


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("mode", ["heap", "wheel"])
def test_mac_timer_churn(benchmark, mode):
    result = benchmark.pedantic(
        _churn_run, setup=lambda: _churn_setup(mode), rounds=5
    )
    assert result == CHURN_ROUNDS


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("mode", ["heap", "wheel"])
def test_event_throughput(benchmark, mode):
    def run():
        sim = Simulator(scheduler_mode=mode)
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 20_000


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("path", ["keep", "drop"])
def test_trace_emit_20k(benchmark, path):
    # One subscriber that never matches the emitted category: the drop
    # path must return before the TraceRecord is built, the keep path
    # retains every record.
    tracer = Tracer(keep=(path == "keep"))
    tracer.subscribe("app.", lambda record: None)

    def run():
        emit = tracer.emit
        for i in range(20_000):
            emit(
                0.001 * i,
                "mac.tx",
                node=1,
                packet_uid=i,
                packet_kind="data",
                dst=7,
                broadcast=True,
            )
        count = len(tracer)
        tracer.clear()
        return count

    assert benchmark(run) == (20_000 if path == "keep" else 0)


def _scenario(mode: str) -> float:
    config = ScenarioConfig(
        protocol="agfw",
        num_nodes=112,  # the paper's called-out density knee
        sim_time=4.0,
        traffic_start=(0.5, 1.5),
        num_flows=30,
        num_senders=20,
        seed=7,
        scheduler_mode=mode,
    )
    scenario = Scenario(config)
    result = scenario.run()
    return result.delivery_fraction


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("mode", ["heap", "wheel"])
def test_end_to_end_scenario(benchmark, mode):
    fraction = benchmark.pedantic(_scenario, args=(mode,), rounds=5)
    assert fraction > 0.0
