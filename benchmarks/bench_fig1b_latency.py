"""Figure 1(b): end-to-end data latency vs node density.

Regenerates the latency series for GPSR-Greedy and AGFW.  The paper's
claims under test: the two schemes are comparable at modest density,
and GPSR-Greedy's latency climbs at high density ("relatively more
failures of making handshakes and hence the time wasted on backing off
and retries") while AGFW stays flat (no RTS/CTS; trapdoor cost paid only
in the last-hop region).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.fig1 import Fig1Point, format_fig1b, run_fig1

NODE_COUNTS = (50, 112, 150)
SIM_TIME = 12.0
SEED = 9

_collected: dict[str, list[Fig1Point]] = {}


def _run_scheme(scheme: str) -> list[Fig1Point]:
    points = run_fig1(
        node_counts=NODE_COUNTS, schemes=(scheme,), sim_time=SIM_TIME, seed=SEED
    )
    _collected[scheme] = points
    return points


@pytest.mark.benchmark(group="fig1b")
def test_fig1b_gpsr_latency(benchmark):
    points = benchmark.pedantic(_run_scheme, args=("gpsr",), rounds=1, iterations=1)
    benchmark.extra_info["latency_ms_by_density"] = {
        p.num_nodes: round(p.mean_latency_ms, 2) for p in points
    }
    assert all(p.mean_latency_ms > 0 for p in points)


@pytest.mark.benchmark(group="fig1b")
def test_fig1b_agfw_latency(benchmark):
    points = benchmark.pedantic(_run_scheme, args=("agfw",), rounds=1, iterations=1)
    benchmark.extra_info["latency_ms_by_density"] = {
        p.num_nodes: round(p.mean_latency_ms, 2) for p in points
    }
    write_result(
        "fig1b", format_fig1b([p for pts in _collected.values() for p in pts])
    )
    if "gpsr" in _collected:
        gpsr = {p.num_nodes: p.mean_latency_ms for p in _collected["gpsr"]}
        agfw = {p.num_nodes: p.mean_latency_ms for p in points}
        # AGFW's latency stays bounded while GPSR's grows with density:
        # at the top of the sweep GPSR must be clearly slower.
        assert gpsr[max(NODE_COUNTS)] > agfw[max(NODE_COUNTS)]
        # AGFW never blows up: flat within a small factor across densities.
        assert max(agfw.values()) < 4 * min(agfw.values())
