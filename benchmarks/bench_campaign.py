"""Campaign-layer benchmarks: what the result cache is worth.

``test_campaign_cache`` runs one 8-point campaign matrix twice:

* ``[cold]`` — every round starts from an empty store, so all 8 points
  simulate (the price of a fresh sweep);
* ``[warm]`` — the store is pre-filled, so every point is a cache hit
  and ``run_campaign`` only diffs the matrix against the store (the
  price of a rerun / resume / report-regeneration cycle).

``bench_to_json.py --suite campaign`` derives
``campaign_warm_cache_speedup`` = cold mean / warm mean.  Acceptance
floor (pinned by ``tests/test_campaign.py`` against the committed
``BENCH_campaign.json``): **>= 10x** — a completed campaign must cost
next to nothing to rerun, because resumability is only useful when the
already-done part is effectively free.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import ResultStore, run_campaign, spec_from_mapping

#: The benchmark matrix: 2 protocols x 2 densities x 2 seeds = 8 points,
#: sized so a cold round stays sub-second while still dominating the
#: cache-diff overhead by orders of magnitude.
_SPEC = {
    "name": "bench",
    "seed": 3,
    "seeds": 2,
    "metrics": ["delivery_fraction", "mean_latency_ms"],
    "base": {
        "sim_time": 2.0,
        "num_flows": 3,
        "num_senders": 3,
        "traffic_start": [0.5, 1.0],
    },
    "axes": {"protocol": ["gpsr", "agfw"], "num_nodes": [12, 16]},
}


@pytest.mark.benchmark(group="campaign")
@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_campaign_cache(benchmark, mode, tmp_path):
    spec = spec_from_mapping(_SPEC)
    total = len(spec.points())
    warm_root = tmp_path / "warm"
    if mode == "warm":
        filled = run_campaign(spec, ResultStore(warm_root))
        assert filled.executed == total
    fresh = itertools.count()

    def setup():
        if mode == "warm":
            store = ResultStore(warm_root)
        else:
            store = ResultStore(tmp_path / f"cold{next(fresh)}")
        return (store,), {}

    def run(store):
        return run_campaign(spec, store)

    summary = benchmark.pedantic(run, setup=setup, rounds=3)
    if mode == "warm":
        assert (summary.cached, summary.executed) == (total, 0)
    else:
        assert (summary.cached, summary.executed) == (0, total)
