"""Fault-injection benchmarks: what impairment costs at runtime.

Not a paper table — these price the :mod:`repro.faults` machinery:

* ``test_loss_draw_1e5`` — raw per-reception judging throughput of each
  loss model (the only code that runs on the hot PHY path when a model
  is enabled).
* ``test_scenario_impairment`` — **the acceptance set**: one end-to-end
  AGFW scenario per impairment regime (``none``, ``bernoulli``,
  ``gilbert``, ``churn``).  ``bench_to_json.py --suite faults`` derives
  the ``*_scenario_overhead`` ratios against the ``none`` leg.  Two
  readings: the ratios price what a dose *provokes* (lost frames trigger
  NL-ACK retransmissions, so the Bernoulli leg runs ~1.5x the events —
  that is protocol work, not draw machinery; churn sits near 1.0), and
  the ``none`` leg prices the zero-cost-when-disabled guarantee — no
  loss process is even constructed, so any regression there is a
  fault-machinery leak into the default path.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults import FaultPlan, make_loss_process
from repro.metrics.faults import FaultMetrics
from repro.sim.rng import derive_seed

DRAWS = 100_000


@pytest.mark.benchmark(group="faults")
@pytest.mark.parametrize("model", ["bernoulli", "gilbert", "distance"])
def test_loss_draw_1e5(benchmark, model):
    def setup():
        process = make_loss_process(
            model, 0.2, {}, random.Random(11), FaultMetrics(), 250.0
        )
        return (process,), {}

    def run(process):
        should_drop = process.should_drop
        drops = 0
        for i in range(DRAWS):
            drops += should_drop(125.0)
        return drops

    drops = benchmark.pedantic(run, setup=setup, rounds=5)
    assert 0 < drops < DRAWS


def _impaired_scenario(regime: str) -> float:
    config = ScenarioConfig(
        protocol="agfw",
        num_nodes=60,
        sim_time=4.0,
        traffic_start=(0.5, 1.5),
        num_flows=20,
        num_senders=15,
        seed=7,
    )
    if regime in ("bernoulli", "gilbert"):
        config = replace(config, loss_model=regime, loss_rate=0.2)
    elif regime == "churn":
        plan = FaultPlan.churn(
            range(config.num_nodes),
            sim_time=config.sim_time,
            seed=derive_seed(config.seed, "bench:churn"),
            rate=1.0,
            mean_downtime=0.5,
        )
        config = replace(config, fault_plan=plan)
    scenario = Scenario(config)
    result = scenario.run()
    return result.delivery_fraction


@pytest.mark.benchmark(group="faults")
@pytest.mark.parametrize("regime", ["none", "bernoulli", "gilbert", "churn"])
def test_scenario_impairment(benchmark, regime):
    fraction = benchmark.pedantic(_impaired_scenario, args=(regime,), rounds=5)
    assert fraction > 0.0
