"""Substrate performance benchmarks: event engine, medium, MAC.

Not a paper table — these track the simulator's own throughput so
regressions in the substrate (which every experiment pays for) are
visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import pytest

from repro.geo.vec import Position
from repro.net.addresses import BROADCAST, MacAddress
from repro.net.mac.frames import FrameKind, MacFrame
from repro.net.medium import RadioMedium
from repro.net.mobility import StaticMobility
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.phy import PhyRadio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class _Payload(Packet):
    KIND = "payload"

    def header_bytes(self) -> int:
        return 20


@pytest.mark.benchmark(group="substrate")
def test_engine_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 20_000


@pytest.mark.benchmark(group="substrate")
def test_engine_heap_churn(benchmark):
    def run():
        sim = Simulator()
        handles = [sim.schedule(float(i % 100) + 1.0, lambda: None) for i in range(5_000)]
        for handle in handles[::2]:
            handle.cancel()
        sim.run()
        return sim.processed_events

    assert benchmark(run) == 2_500


def _mesh(num_nodes: int):
    sim = Simulator()
    medium = RadioMedium(sim)
    rngs = RngRegistry(1)
    nodes = [
        Node(
            sim, i, medium,
            StaticMobility(Position((i % 10) * 140.0, (i // 10) * 140.0)),
            rngs,
        )
        for i in range(num_nodes)
    ]
    return sim, nodes


@pytest.mark.benchmark(group="substrate")
def test_broadcast_fanout_50_nodes(benchmark):
    def run():
        sim, nodes = _mesh(50)
        for i, node in enumerate(nodes):
            sim.schedule(0.001 * i, lambda n=node: n.mac.send(_Payload(payload_bytes=64), BROADCAST))
        sim.run(until=1.0)
        return sum(n.mac.stats.delivered_up for n in nodes)

    assert benchmark(run) > 0


def _phy_mesh(num_nodes: int, index_mode: str):
    """A square static grid of bare radios, 250 m pitch (PHY only: no MAC,
    so the benchmark isolates the medium's per-frame fan-out cost)."""
    sim = Simulator()
    medium = RadioMedium(sim, index_mode=index_mode)
    side = math.ceil(math.sqrt(num_nodes))
    radios = [
        PhyRadio(
            sim, i, medium,
            StaticMobility(Position((i % side) * 250.0, (i // side) * 250.0)),
        )
        for i in range(num_nodes)
    ]
    return sim, medium, radios


# The acceptance benchmark for the spatial index: identical workload under
# both fan-out strategies.  bench_to_json.py derives the grid-vs-brute
# speedup from this pair and records it in BENCH_substrate.json.
@pytest.mark.benchmark(group="substrate")
@pytest.mark.parametrize("index_mode", ["grid", "brute"])
def test_medium_fanout_150_nodes(benchmark, index_mode):
    # Mesh built once outside the timed region: both modes pay identical
    # construction cost, so the measurement isolates per-frame fan-out.
    sim, medium, radios = _phy_mesh(150, index_mode)
    frame = MacFrame(FrameKind.DATA, MacAddress(1), BROADCAST)

    def run():
        already_sent = medium.frames_sent
        for i in range(1_000):
            medium.transmit(radios[i % 150], frame, 1e-4)
            sim.run(until=sim.now + 2e-4)
        return medium.frames_sent - already_sent

    assert benchmark(run) == 1_000


@pytest.mark.benchmark(group="substrate")
def test_unicast_chain_throughput(benchmark):
    def run():
        sim, nodes = _mesh(2)
        done = []
        for i in range(40):  # below the 50-packet interface queue limit
            sim.schedule(
                0.0, lambda: nodes[0].mac.send(_Payload(payload_bytes=256), nodes[1].address, done.append)
            )
        sim.run(until=5.0)
        return sum(done)

    assert benchmark(run) == 40
