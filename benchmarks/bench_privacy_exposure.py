"""Sections 2 & 4 quantified: adversary yield under GPSR vs AGFW.

A global passive sniffer coalition watches the identical workload under
both protocols.  The paper's claim — "no node exposes its identity and
location simultaneously" — becomes an exact, measurable assertion:
zero doublets under AGFW versus thousands under GPSR, and near-complete
tracking coverage of every victim under GPSR versus zero under AGFW.
The paper's conceded non-goal (route traceability) is reported too.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.security import format_exposure, run_exposure_experiment


@pytest.mark.benchmark(group="privacy")
def test_privacy_exposure_gpsr_vs_agfw(benchmark):
    reports = benchmark.pedantic(
        run_exposure_experiment,
        kwargs=dict(sim_time=30.0, num_nodes=50, seed=7),
        rounds=1,
        iterations=1,
    )
    write_result("privacy_exposure", format_exposure(reports))
    gpsr = next(r for r in reports if r.protocol == "gpsr")
    agfw = next(r for r in reports if r.protocol == "agfw")

    # GPSR: every node's doublet is on the air continuously.
    assert gpsr.doublets > 100
    assert gpsr.identities_exposed == 50
    assert gpsr.mean_tracking_coverage > 0.8

    # AGFW: the dissociation holds — zero doublets, zero identities.
    assert agfw.doublets == 0
    assert agfw.identities_exposed == 0
    assert agfw.mean_tracking_coverage == 0.0
    assert agfw.pseudonym_sightings > 0  # traffic was observed, just opaque

    # The honest concession: routes remain traceable, but carry no names.
    assert agfw.traceable_routes > 0
    assert agfw.identities_from_routes == 0

    benchmark.extra_info["gpsr_doublets"] = gpsr.doublets
    benchmark.extra_info["agfw_doublets"] = agfw.doublets


@pytest.mark.benchmark(group="privacy")
def test_aant_ring_anonymity(benchmark):
    """(k+1)-anonymity measured from an actual AANT hello capture."""
    from repro.adversary.anonymity import ring_anonymity
    from repro.experiments.scenario import Scenario, ScenarioConfig

    def run():
        scenario = Scenario(
            ScenarioConfig(
                protocol="agfw",
                num_nodes=30,
                sim_time=10.0,
                aant_ring_size=4,
                with_sniffer=True,
                num_flows=5,
                num_senders=5,
                seed=17,
            )
        )
        scenario.run()
        return ring_anonymity(scenario.sniffer.observations)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "aant_anonymity",
        "AANT (k+1)-anonymity from captured hellos\n"
        f"hellos observed: {report.hellos}\n"
        f"worst-case anonymity set: {report.min_set_size}\n"
        f"k-anonymity achieved: {report.k_anonymity}\n"
        f"mean entropy: {report.mean_entropy_bits:.2f} bits",
    )
    assert report.min_set_size == 5
    assert report.k_anonymity == 4
