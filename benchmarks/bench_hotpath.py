"""Vectorized hot-core benchmarks: spatial fan-out, mobility, pooling.

Not a paper table — these price the PR 7 tentpole.  The pure-Python
medium pays an interpreter round trip per radio per transmission; the
array backend batches exactly that work.  Three pairs:

* ``test_neighbor_gather_150_nodes`` — **acceptance micro #1**: classify
  one broadcast fan-out for every node at the paper's top density, the
  object path (grid gather + per-radio scalar interpolation/distance)
  vs ``ArraySpatialIndex.classify_fanout`` (one batched sweep).
  ``bench_to_json.py --suite hotpath`` derives
  ``neighbor_gather_speedup`` (floor: 5x).
* ``test_batch_mobility_150_legs`` — **acceptance micro #2**: every
  node's position at a sweep of instants, scalar
  ``WaypointLeg.position_at`` loop vs ``batch_position_at`` into
  preallocated buffers.  Derived ``batch_mobility_speedup`` (floor: 5x).
* ``test_end_to_end_scenario_150`` — the whole-stack number: a 150-node
  AGFW run with everything off (``obj``/``off`` — the exact pre-PR
  path) vs everything on (``array``/``on``).  Derived
  ``scenario_hotpath_speedup`` (floor: 1.3x).

All pairs run the *same* workload to bitwise-identical results (the
equivalence suites prove it); only wall-clock may differ.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.geo import vecops
from repro.geo.spatial import SpatialIndex
from repro.geo.spatial_array import ArraySpatialIndex
from repro.geo.vec import Position
from repro.net.mobility import StaticMobility, WaypointLeg

requires_numpy = pytest.mark.skipif(
    not vecops.HAVE_NUMPY, reason="numpy not available (repro[fast] extra)"
)

NUM_NODES = 150
RADIO_RANGE = 250.0
INTERFERENCE_RANGE = 550.0
ARENA = (1500.0, 300.0)


class _Stub:
    """Just enough radio for an index: a node id and a mobility model."""

    __slots__ = ("node_id", "mobility")

    def __init__(self, node_id: int, mobility) -> None:
        self.node_id = node_id
        self.mobility = mobility


class _LegMobility:
    """A frozen waypoint leg — the RWP shape without an engine attached,
    so the micro times interpolation, not leg re-rolls."""

    __slots__ = ("_leg", "max_speed")

    def __init__(self, leg: WaypointLeg, max_speed: float = 20.0) -> None:
        self._leg = leg
        self.max_speed = max_speed

    def position_at(self, time: float) -> Position:
        return self._leg.position_at(time)

    def subscribe(self, callback) -> None:
        """Continuous trajectory: no discontinuities to notify."""

    @property
    def current_leg(self) -> WaypointLeg:
        return self._leg


def _population(seed: int = 1):
    """150 nodes mid-flight on long legs (the mobile steady state)."""
    rng = random.Random(seed)
    radios = []
    for i in range(NUM_NODES):
        origin = Position(rng.uniform(0, ARENA[0]), rng.uniform(0, ARENA[1]))
        target = Position(rng.uniform(0, ARENA[0]), rng.uniform(0, ARENA[1]))
        leg = WaypointLeg(origin, target, rng.uniform(5.0, 20.0), 0.0)
        radios.append(_Stub(i, _LegMobility(leg)))
    return radios


#: One classification per instant, round-robin senders — the medium's
#: actual call pattern (every transmission lands at a fresh ``now``).
GATHER_STEPS = [(0.002 * k, k % NUM_NODES) for k in range(300)]


def _gather_obj(index: SpatialIndex, radios) -> int:
    """The medium's object-path fan-out classification, per transmission:
    interpolate the sender, gather candidates, interpolate and classify
    every candidate radio-by-radio."""
    r2 = RADIO_RANGE * RADIO_RANGE
    i2 = INTERFERENCE_RANGE * INTERFERENCE_RANGE
    hits = 0
    for now, sender_idx in GATHER_STEPS:
        sender = radios[sender_idx]
        sender_pos = sender.mobility.position_at(now)
        for radio in index.candidates_within(sender_pos, INTERFERENCE_RANGE, now):
            if radio is sender:
                continue
            rpos = radio.mobility.position_at(now)
            d2 = rpos.distance2_to(sender_pos)
            if d2 > i2:
                continue
            hits += 1
            if d2 <= r2:
                hits += 1
    return hits


def _gather_array(index: ArraySpatialIndex, radios) -> int:
    r2 = RADIO_RANGE * RADIO_RANGE
    i2 = INTERFERENCE_RANGE * INTERFERENCE_RANGE
    hits = 0
    for now, sender_idx in GATHER_STEPS:
        fan = index.classify_fanout(sender_idx, now, INTERFERENCE_RANGE, r2, i2)
        hits += len(fan.rows) + sum(fan.deliverable)
    return hits


@pytest.mark.benchmark(group="hotpath")
@pytest.mark.parametrize("backend", ["obj", "array"])
@requires_numpy
def test_neighbor_gather_150_nodes(benchmark, backend):
    radios = _population()
    if backend == "obj":
        index = SpatialIndex(cell_size=INTERFERENCE_RANGE)
        for radio in radios:
            index.add(radio, 0.0)
        result = benchmark(_gather_obj, index, radios)
    else:
        index = ArraySpatialIndex(cell_size=INTERFERENCE_RANGE)
        for radio in radios:
            index.add(radio, 0.0)
        result = benchmark(_gather_array, index, radios)
    assert result > 0


def _legs(seed: int = 2):
    rng = random.Random(seed)
    legs = []
    for _ in range(NUM_NODES):
        origin = Position(rng.uniform(0, ARENA[0]), rng.uniform(0, ARENA[1]))
        target = Position(rng.uniform(0, ARENA[0]), rng.uniform(0, ARENA[1]))
        legs.append(WaypointLeg(origin, target, rng.uniform(1.0, 20.0), 0.0))
    return legs


QUERY_TIMES = [0.05 * k for k in range(200)]


@pytest.mark.benchmark(group="hotpath")
@pytest.mark.parametrize("path", ["scalar", "batch"])
@requires_numpy
def test_batch_mobility_150_legs(benchmark, path):
    legs = _legs()
    if path == "scalar":

        def run():
            acc = 0.0
            for t in QUERY_TIMES:
                for leg in legs:
                    pos = leg.position_at(t)
                    acc += pos.x + pos.y
            return acc

    else:
        import numpy as np

        arrays = vecops.LegArrays(capacity=NUM_NODES)
        for leg in legs:
            arrays.set_leg(arrays.append_row(), leg)
        out_x = np.empty(NUM_NODES)
        out_y = np.empty(NUM_NODES)

        def run():
            acc = 0.0
            for t in QUERY_TIMES:
                x, y = vecops.batch_position_at(arrays, t, out_x, out_y)
                acc += float(x.sum()) + float(y.sum())
            return acc

    assert benchmark(run) != 0.0


def _scenario(spatial: str, pool: str) -> float:
    config = ScenarioConfig(
        protocol="agfw",
        num_nodes=NUM_NODES,  # the paper sweep's top density
        sim_time=2.0,
        traffic_start=(0.5, 1.5),
        num_flows=15,
        num_senders=10,
        seed=7,
        # Nodes must actually move inside the short horizon (the paper's
        # 60 s pause would freeze everyone for the whole 2 s window) —
        # same convention as the medium-equivalence suite.
        pause_time=0.0,
        min_speed=5.0,
        spatial_mode=spatial,
        pool_mode=pool,
    )
    result = Scenario(config).run()
    return result.delivery_fraction


@pytest.mark.benchmark(group="hotpath")
@pytest.mark.parametrize("stack", ["baseline", "fast"])
@requires_numpy
def test_end_to_end_scenario_150(benchmark, stack):
    spatial, pool = ("obj", "off") if stack == "baseline" else ("array", "on")
    fraction = benchmark.pedantic(_scenario, args=(spatial, pool), rounds=3)
    assert fraction > 0.0
